"""Benchmark-suite helpers.

Each ``test_figN_*`` benchmark regenerates one paper figure (quick sweep by
default; set ``REPRO_FULL=1`` for the paper's full ranges), prints the
ASCII rendition, saves raw JSON under ``benchmarks/results/``, and asserts
the paper's *qualitative* claims (who wins, where the crossover is) rather
than absolute numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(result, capsys=None) -> None:
    """Print a figure (works under pytest's capture)."""
    from repro.bench.reporting import format_figure, save_figure
    save_figure(result, RESULTS_DIR)
    text = format_figure(result)
    print("\n" + text)
