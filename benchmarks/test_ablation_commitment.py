"""Ablation: commitment-object implementations (§H.1).

The paper argues the commitment object can be implemented with little
communication when servers are replicated (decision-point/TRB), and with a
"Paxos-like consensus protocol" when servers themselves may fail.  This
benchmark quantifies that trade-off: messages per committed transaction and
throughput under the local (replicated decision state) backend vs. real
per-transaction Paxos over per-server acceptors.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.bench.reporting import FigurePoint, FigureResult
from repro.dist.cluster import ClusterConfig, run_cluster
from repro.sim.testbed import LOCAL_TESTBED
from repro.workload.generator import WorkloadConfig

BASE = ClusterConfig(
    protocol="mvtil-early", profile=LOCAL_TESTBED,
    workload=WorkloadConfig(num_keys=3_000, tx_size=10, write_fraction=0.5),
    num_clients=40, warmup=0.5, measure=1.5, seed=21)


def test_ablation_commitment_backend(benchmark):
    def run():
        points = []
        for backend in ("local", "paxos"):
            res = run_cluster(replace(BASE, commitment=backend))
            per_commit = (res.messages_sent / max(1, res.committed))
            points.append(FigurePoint(
                x=0, protocol=backend, throughput=res.throughput,
                commit_rate=res.commit_rate,
                extra={"messages_per_commit": round(per_commit, 1)}))
        return FigureResult("ablation-commitment",
                            "Commitment backend: local vs Paxos", "-",
                            points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    local = result.at(0, "local")
    paxos = result.at(0, "paxos")
    print(f"\nmessages/commit: local={local.extra['messages_per_commit']} "
          f"paxos={paxos.extra['messages_per_commit']}")
    # Consensus costs messages and some throughput, but must stay usable.
    assert (paxos.extra["messages_per_commit"]
            > local.extra["messages_per_commit"])
    assert paxos.throughput > 0.5 * local.throughput
    assert paxos.commit_rate > 0.8
