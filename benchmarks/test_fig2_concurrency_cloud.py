"""Figure 2: effect of concurrency level on performance, cloud test bed.

Paper claims: same ordering as Fig. 1, with a *larger* MVTIL advantage
("roughly 2x better throughput than the alternatives") because the cloud's
scarce resources make inefficiency (MVTO+ aborts, 2PL lock waits) costlier.
"""

from benchmarks.conftest import emit
from repro.bench.figures import figure2_concurrency_cloud


def test_fig2_concurrency_cloud(benchmark):
    result = benchmark.pedantic(
        lambda: figure2_concurrency_cloud(seeds=(1,)),
        rounds=1, iterations=1)
    emit(result)
    hi = result.xs()[-1]
    mvtil = result.at(hi, "mvtil-early")
    mvto = result.at(hi, "mvto")
    twopl = result.at(hi, "2pl")
    assert mvtil.throughput > mvto.throughput
    assert mvtil.throughput > twopl.throughput
    # The cloud advantage over 2PL (paper: ~2x overall; our simulation
    # reproduces the direction at ~1.1-1.2x — see EXPERIMENTS.md for the
    # calibration deviation).
    assert mvtil.throughput > 1.05 * twopl.throughput
