"""Figure 4: small (8-operation) transactions, 50% writes.

Paper claims: with little concurrency, short transactions and a
resource-rich local test bed, 2PL is about 5% *faster* than MVTIL — the
only setting in the evaluation where MVTIL loses; as concurrency grows,
MVTIL overtakes the alternatives again.
"""

from benchmarks.conftest import emit
from repro.bench.figures import figure4_small_transactions


def test_fig4_small_transactions(benchmark):
    result = benchmark.pedantic(
        lambda: figure4_small_transactions(seeds=(1,)),
        rounds=1, iterations=1)
    emit(result)
    xs = result.xs()
    lo, hi = xs[0], xs[-1]

    # Low concurrency: 2PL competitive with (or slightly ahead of) MVTIL.
    twopl_lo = result.at(lo, "2pl")
    mvtil_lo = result.at(lo, "mvtil-early")
    assert twopl_lo.throughput > 0.9 * mvtil_lo.throughput

    # High concurrency: MVTIL ahead again.
    assert (result.at(hi, "mvtil-early").throughput
            > result.at(hi, "2pl").throughput)
    assert (result.at(hi, "mvtil-early").throughput
            > result.at(hi, "mvto").throughput)
