"""Figure 3: effect of the fraction of writes.

Paper claims:
  (a) for read-only workloads the protocol choice has little impact;
  (b) MVTO+'s commit rate bottoms out at balanced read/write mixes
      (conflict chance is highest there) and recovers near 100% writes
      (blind writes don't conflict in multiversion protocols);
  (c) at balanced mixes MVTIL outperforms both baselines.
"""

from benchmarks.conftest import emit
from repro.bench.figures import figure3_write_fraction


def test_fig3_write_fraction(benchmark):
    result = benchmark.pedantic(
        lambda: figure3_write_fraction(seeds=(1,)),
        rounds=1, iterations=1)
    emit(result)

    # (a) read-only: protocols within ~25% of each other.
    ro = {p: result.at(0.0, p) for p in ("mvto", "2pl", "mvtil-early")}
    thrs = [pt.throughput for pt in ro.values()]
    assert max(thrs) < 1.35 * min(thrs)
    for pt in ro.values():
        assert pt.commit_rate > 0.95

    # (b) MVTO+ commit rate: balanced mix is worse than all-writes.
    mvto_mid = result.at(0.5, "mvto")
    mvto_blind = result.at(1.0, "mvto")
    assert mvto_mid.commit_rate < mvto_blind.commit_rate

    # (c) MVTIL wins at the balanced mix.
    mid_mvtil = result.at(0.5, "mvtil-early")
    assert mid_mvtil.throughput > result.at(0.5, "mvto").throughput
    assert mid_mvtil.throughput > result.at(0.5, "2pl").throughput
