"""Figure 7: performance as time passes with GC on and off.

Paper claims:
  (a) without GC, throughput degrades over time (state growth slows
      version/lock searches) for MVTIL and MVTO+;
  (b) with GC, throughput stays flat;
  (c) the overhead of GC is small (compare the *early* windows of the GC
      and no-GC runs).
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.figures import figure6_7_state_and_gc


@pytest.fixture(scope="module")
def fig67():
    return figure6_7_state_and_gc(seeds=(1,))


def test_fig7_gc_over_time(benchmark, fig67):
    _fig6, fig7 = benchmark.pedantic(lambda: fig67, rounds=1, iterations=1)
    emit(fig7)

    def thr_series(label):
        pts = sorted((p for p in fig7.points if p.protocol == label),
                     key=lambda p: p.x)
        return [p.throughput for p in pts]

    nogc = thr_series("mvtil-early")
    gc = thr_series("mvtil-gc")

    # (a) degradation without GC: last window clearly below the first.
    assert nogc[-1] < 0.8 * nogc[0]

    # (b) flat with GC.
    assert gc[-1] > 0.75 * gc[0]

    # (c) small GC overhead at the start (within 25%).
    assert gc[0] > 0.75 * nogc[0]

    # And by the end, the GC variant clearly wins.
    assert gc[-1] > nogc[-1]
