"""Figure 6: number of locks and versions as time passes, GC on and off.

Paper claims:
  (a) without purging, lock and version state grows (roughly linearly)
      with time for MVTIL and MVTO+;
  (b) with the purge service on (MVTIL-GC), both stay bounded.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.figures import figure6_7_state_and_gc


@pytest.fixture(scope="module")
def fig67():
    return figure6_7_state_and_gc(seeds=(1,))


def test_fig6_state_size(benchmark, fig67):
    fig6, _fig7 = benchmark.pedantic(lambda: fig67, rounds=1, iterations=1)
    emit(fig6)

    def series(label, metric):
        pts = sorted((p for p in fig6.points if p.protocol == label),
                     key=lambda p: p.x)
        return [p.extra[metric] for p in pts]

    # (a) growth without GC: final state >> early state.
    for label in ("mvto+", "mvtil-early"):
        versions = series(label, "versions")
        assert versions[-1] > 2.5 * versions[max(0, len(versions) // 4)]
    locks_nogc = series("mvtil-early", "locks")
    assert locks_nogc[-1] > 2.0 * locks_nogc[max(0, len(locks_nogc) // 4)]

    # (b) bounded with GC: the second half stays flat-ish.
    v_gc = series("mvtil-gc", "versions")
    l_gc = series("mvtil-gc", "locks")
    assert max(v_gc[len(v_gc) // 2:]) < 2.0 * max(1, min(v_gc[len(v_gc) // 2:]))
    assert max(v_gc) < 0.5 * max(series("mvtil-early", "versions"))
    assert max(l_gc) < 0.5 * max(locks_nogc)
