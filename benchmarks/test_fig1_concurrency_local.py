"""Figure 1: effect of concurrency level on performance, local test bed.

Paper claims reproduced here:
  (a) MVTIL (both variants) out-throughputs MVTO+ and 2PL at high
      concurrency;
  (b) MVTO+'s commit rate drops as concurrency increases, while MVTIL's
      stays high ("it can commit at many serialization points").
"""

from benchmarks.conftest import emit
from repro.bench.figures import figure1_concurrency_local


def test_fig1_concurrency_local(benchmark):
    result = benchmark.pedantic(
        lambda: figure1_concurrency_local(seeds=(1,)),
        rounds=1, iterations=1)
    emit(result)
    xs = result.xs()
    hi = xs[-1]

    mvtil = result.at(hi, "mvtil-early")
    mvto = result.at(hi, "mvto")
    twopl = result.at(hi, "2pl")
    # (a) MVTIL wins at high concurrency.
    assert mvtil.throughput > mvto.throughput
    assert mvtil.throughput > twopl.throughput
    # (b) commit-rate separation at high concurrency.
    assert mvtil.commit_rate > mvto.commit_rate
    # MVTIL's commit rate stays reasonably high even at the top of the sweep.
    assert mvtil.commit_rate > 0.7
