"""Ablations of MVTIL's design choices (beyond the paper's figures).

* **early vs late** commit-timestamp choice (§8 defines both; the figures
  show them nearly tied — we quantify it);
* **interval width delta**: too narrow starves the transaction of
  serialization points, too wide increases lock footprint and read/write
  interference; the paper fixes delta = 5 ms without a sweep;
* **restart budget** (§8.1 "option of aborting or restarting").
"""

from dataclasses import replace

import pytest

from repro.bench.reporting import FigurePoint, FigureResult
from repro.dist.cluster import ClusterConfig, run_cluster
from repro.sim.testbed import LOCAL_TESTBED
from repro.workload.generator import WorkloadConfig

from benchmarks.conftest import emit

BASE = ClusterConfig(
    profile=LOCAL_TESTBED,
    workload=WorkloadConfig(num_keys=3_000, tx_size=20, write_fraction=0.5),
    num_clients=90, warmup=0.5, measure=1.5, seed=7)


def test_ablation_early_vs_late(benchmark):
    def run():
        points = []
        for proto in ("mvtil-early", "mvtil-late"):
            res = run_cluster(replace(BASE, protocol=proto))
            points.append(FigurePoint(x=0, protocol=proto,
                                      throughput=res.throughput,
                                      commit_rate=res.commit_rate))
        return FigureResult("ablation-early-late",
                            "MVTIL-early vs MVTIL-late", "-", points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    early = result.at(0, "mvtil-early")
    late = result.at(0, "mvtil-late")
    # The two variants are close (the figures plot them nearly overlapping).
    assert early.throughput > 0.6 * late.throughput
    assert late.throughput > 0.6 * early.throughput


def test_ablation_delta_sweep(benchmark):
    def run():
        points = []
        for delta in (0.0005, 0.005, 0.05):
            res = run_cluster(replace(BASE, protocol="mvtil-early",
                                      delta=delta))
            points.append(FigurePoint(x=delta, protocol="mvtil-early",
                                      throughput=res.throughput,
                                      commit_rate=res.commit_rate))
        return FigureResult("ablation-delta", "MVTIL interval width",
                            "delta (s)", points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    # All widths must function; the paper's 5 ms default should not be
    # dramatically worse than the best of the sweep.
    best = max(p.throughput for p in result.points)
    assert result.at(0.005, "mvtil-early").throughput > 0.5 * best


def test_ablation_restart_budget(benchmark):
    def run():
        points = []
        for restarts in (0, 2, 5):
            res = run_cluster(replace(BASE, protocol="mvtil-early",
                                      max_restarts=restarts))
            points.append(FigurePoint(x=restarts, protocol="mvtil-early",
                                      throughput=res.throughput,
                                      commit_rate=res.commit_rate))
        return FigureResult("ablation-restarts", "Restart budget (§8.1)",
                            "max restarts", points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    for p in result.points:
        assert p.throughput > 0
