"""Figure 5: effect of the number of servers (cloud test bed).

Paper claims: the throughput of every protocol increases with more servers,
and MVTIL scales best — particularly visible with 50% writes.
"""

from benchmarks.conftest import emit
from repro.bench.figures import figure5_num_servers


def test_fig5_num_servers(benchmark):
    result = benchmark.pedantic(
        lambda: figure5_num_servers(seeds=(1,)),
        rounds=1, iterations=1)
    emit(result)
    xs = result.xs()
    lo, hi = xs[0], xs[-1]

    for wf in (25, 50):
        for proto in ("mvto", "2pl", "mvtil-early"):
            label = f"{proto}@w{wf}"
            # Scalability: more servers -> more throughput.
            assert (result.at(hi, label).throughput
                    > result.at(lo, label).throughput)
        # MVTIL on top at the full server count; clearest at 50% writes.
        mvtil = result.at(hi, f"mvtil-early@w{wf}")
        assert mvtil.throughput > result.at(hi, f"2pl@w{wf}").throughput
    assert (result.at(hi, "mvtil-early@w50").throughput
            > result.at(hi, "mvto@w50").throughput)
