"""Quantitative checks of the §5 theorem claims on adversarial workloads.

The proofs live in the paper (and the exact schedules in tests/policies/);
here we measure how often each pathology fires under randomized
closed-loop-style workloads on the centralized engines — turning each
theorem into a measurable gap between two policies:

* Thm. 2 — MVTL-Pref commits everything MVTO+ commits, and more (skewed
  clocks make MVTO+ abort writers that Pref saves with lower alternatives);
* Thm. 3 — MVTL-Prio: critical transactions are never aborted by normals;
* Thm. 4 — epsilon-clock: zero aborts in serial executions under skew,
  where MVTO+ serially aborts;
* Thm. 7 — Ghostbuster: zero ghost aborts where MVTL-TO exhibits them.
"""

import random

from repro.clocks import SkewedClock
from repro.core.engine import MVTLEngine
from repro.core.exceptions import TransactionAborted
from repro.policies import (MVTLEpsilonClock, MVTLGhostbuster,
                            MVTLPreferential, MVTLPrioritizer,
                            MVTLTimestampOrdering, offset_alternatives)
from repro.baselines import MVTOEngine


class _SimClock:
    """Deterministic fake time source advancing on every read."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _serial_skewed_run(engine_factory, n_txs=200, n_keys=10, seed=2):
    """Serial execution with per-process skewed clocks; returns abort count."""
    rnd = random.Random(seed)
    engine = engine_factory()
    aborts = 0
    for i in range(n_txs):
        pid = rnd.randrange(1, 4)
        tx = engine.begin(pid=pid)
        try:
            for _ in range(3):
                key = f"k{rnd.randrange(n_keys)}"
                if rnd.random() < 0.5:
                    engine.read(tx, key)
                else:
                    engine.write(tx, key, i)
            if not engine.commit(tx):
                aborts += 1
        except TransactionAborted:
            aborts += 1
    return aborts


def _skewed_clock_factory(source):
    skews = {1: 0.0, 2: -3.0, 3: +3.0}

    def for_pid(pid):
        return SkewedClock(source, skews.get(pid, 0.0))

    return for_pid


def test_thm4_serial_aborts(benchmark):
    """epsilon-clock has no serial aborts under skew; MVTO+ has many."""

    def run():
        src = _SimClock()
        mvto_aborts = _serial_skewed_run(
            lambda: MVTOEngine(clock_for_pid=_skewed_clock_factory(src)))
        src2 = _SimClock()
        eps_aborts = _serial_skewed_run(
            lambda: MVTLEngine(MVTLEpsilonClock(epsilon=3.5),
                               clock_for_pid=_skewed_clock_factory(src2)))
        return mvto_aborts, eps_aborts

    mvto_aborts, eps_aborts = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nserial aborts under skew: MVTO+={mvto_aborts} "
          f"eps-clock={eps_aborts}")
    assert mvto_aborts > 0
    assert eps_aborts == 0


def test_thm2_pref_commits_more(benchmark):
    """MVTL-Pref (alternatives below) aborts less than MVTO+ under skew."""

    def run():
        src = _SimClock()
        mvto_aborts = _serial_skewed_run(
            lambda: MVTOEngine(clock_for_pid=_skewed_clock_factory(src)),
            seed=5)
        src2 = _SimClock()
        pref_aborts = _serial_skewed_run(
            lambda: MVTLEngine(
                MVTLPreferential(offset_alternatives(-7.0, -3.5)),
                clock_for_pid=_skewed_clock_factory(src2)),
            seed=5)
        return mvto_aborts, pref_aborts

    mvto_aborts, pref_aborts = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\naborts under skew: MVTO+={mvto_aborts} Pref={pref_aborts}")
    assert pref_aborts < mvto_aborts


def test_thm3_priority_never_aborted_by_normals(benchmark):
    """Critical transactions always commit against normal traffic."""

    def run():
        engine = MVTLEngine(MVTLPrioritizer())
        rnd = random.Random(0)
        critical_aborts = 0
        for i in range(150):
            is_critical = i % 5 == 0
            tx = engine.begin(pid=1 + (i % 3), priority=is_critical)
            try:
                for _ in range(3):
                    key = f"k{rnd.randrange(6)}"
                    if rnd.random() < 0.5:
                        engine.read(tx, key)
                    else:
                        engine.write(tx, key, i)
                ok = engine.commit(tx)
                if is_critical and not ok:
                    critical_aborts += 1
            except TransactionAborted:
                if is_critical:
                    critical_aborts += 1
        return critical_aborts

    critical_aborts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert critical_aborts == 0


def test_thm7_ghost_aborts(benchmark):
    """Ghostbuster eliminates the ghost-abort schedule that kills MVTL-TO."""

    def ghost_schedule(policy):
        engine = MVTLEngine(policy)
        # Timestamps 1 < 2 < 3 via pids on a fixed clock value are emulated
        # with a logical clock: begin order fixes the timestamps.
        t1 = engine.begin(pid=1)   # ts 1
        t2 = engine.begin(pid=2)   # ts 2
        t3 = engine.begin(pid=3)   # ts 3
        engine.read(t3, "X")
        assert engine.commit(t3)
        engine.read(t2, "Y")
        engine.write(t2, "X", "x2")
        assert not engine.commit(t2)  # killed by T3's read of X
        engine.write(t1, "Y", "y1")
        return engine.commit(t1)  # ghost abort under TO; commits under GB

    def run():
        return (ghost_schedule(MVTLTimestampOrdering()),
                ghost_schedule(MVTLGhostbuster()))

    to_committed, gb_committed = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    assert not to_committed   # MVTL-TO suffers the ghost abort
    assert gb_committed       # Ghostbuster does not
