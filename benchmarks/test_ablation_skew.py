"""Ablation: key-popularity skew (beyond the paper's uniform workloads).

The paper's workloads draw keys uniformly; real workloads are skewed.
Hotspots concentrate timestamp-lock traffic on few keys, which stresses
MVTIL's serialization-point search (intervals over a hot key fragment
heavily) while also punishing 2PL (lock convoys on the hot head).  This
sweep quantifies how the protocols degrade as Zipf skew grows.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.bench.reporting import FigurePoint, FigureResult
from repro.dist.cluster import ClusterConfig, run_cluster
from repro.sim.testbed import LOCAL_TESTBED
from repro.workload.generator import WorkloadConfig

BASE = ClusterConfig(
    protocol="mvtil-early", profile=LOCAL_TESTBED,
    workload=WorkloadConfig(num_keys=5_000, tx_size=10, write_fraction=0.25),
    num_clients=60, warmup=0.5, measure=1.5, seed=33)


def test_ablation_zipf_skew(benchmark):
    def run():
        points = []
        for s in (0.0, 0.9, 1.3):
            for proto in ("mvtil-early", "mvto", "2pl"):
                cfg = replace(BASE, protocol=proto,
                              workload=replace(BASE.workload, zipf_s=s))
                res = run_cluster(cfg)
                points.append(FigurePoint(x=s, protocol=proto,
                                          throughput=res.throughput,
                                          commit_rate=res.commit_rate))
        return FigureResult("ablation-skew", "Zipf key-popularity skew",
                            "zipf s", points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    # Skew hurts everyone; MVTIL must remain functional and competitive at
    # heavy skew.
    for proto in ("mvtil-early", "mvto", "2pl"):
        assert result.at(1.3, proto).throughput > 0
    heavy = {p: result.at(1.3, p).throughput
             for p in ("mvtil-early", "mvto", "2pl")}
    assert heavy["mvtil-early"] >= 0.7 * max(heavy.values())