"""Micro-benchmarks of the core data structures.

These quantify the cost of the operations §6 worries about: interval-
compressed lock state (acquire/conflict-check/freeze/release) and version
floor lookups.  They are conventional pytest-benchmark timings (many
rounds), unlike the figure benchmarks which are one-shot simulations.
"""

import numpy as np

from repro.core.intervals import IntervalSet, TsInterval
from repro.core.locks import KeyLockState, LockMode, LockTable
from repro.core.timestamp import Timestamp
from repro.core.versions import VersionStore


def T(v, p=0):
    return Timestamp(v, p)


def test_bench_interval_set_ops(benchmark):
    rng = np.random.default_rng(0)
    sets = []
    for _ in range(100):
        pieces = [TsInterval.closed(T(a), T(a + w))
                  for a, w in zip(rng.uniform(0, 1000, 4),
                                  rng.uniform(0.1, 10, 4))]
        sets.append(IntervalSet(pieces))

    def work():
        acc = sets[0]
        for s in sets[1:]:
            acc = acc.union(s)
        for s in sets[:20]:
            acc = acc.subtract(s)
        return len(acc)

    benchmark(work)


def test_bench_lock_acquire_release(benchmark):
    def work():
        state = KeyLockState()
        for i in range(50):
            owner = f"t{i}"
            state.try_acquire(owner, LockMode.READ,
                              TsInterval.closed(T(i), T(i + 5)))
            state.try_acquire(owner, LockMode.WRITE,
                              TsInterval.point(T(i + 5, 1)))
        for i in range(0, 50, 2):
            state.release_unfrozen(f"t{i}")
        return state.record_count()

    benchmark(work)


def test_bench_lock_conflict_scan(benchmark):
    state = KeyLockState()
    for i in range(40):
        state.try_acquire(f"t{i}", LockMode.READ,
                          TsInterval.closed(T(2 * i), T(2 * i + 1)))

    want = TsInterval.closed(T(0), T(100))

    def work():
        return state.lockable("probe", LockMode.WRITE, want)

    result = benchmark(work)
    assert not result.fully_acquired


def test_bench_version_floor_lookup(benchmark):
    store = VersionStore()
    for i in range(1, 2000):
        store.install("k", T(float(i)), f"v{i}")

    def work():
        total = 0
        for q in range(1, 2000, 37):
            v = store.latest_before("k", T(q + 0.5))
            total += v is not None
        return total

    benchmark(work)


def test_bench_lock_table_many_keys(benchmark):
    def work():
        table = LockTable()
        for i in range(300):
            key = f"k{i % 50}"
            table.try_acquire(f"t{i % 10}", key, LockMode.READ,
                              TsInterval.closed(T(i), T(i + 2)))
        for i in range(10):
            table.release_all_unfrozen(f"t{i}")
        return table.total_record_count()

    result = benchmark(work)
    assert result == 0
