"""Baseline concurrency-control engines the paper compares against (§8)."""

from .bohm import BohmEngine
from .mvto import MVTOEngine
from .twopl import TwoPLEngine

__all__ = ["BohmEngine", "MVTOEngine", "TwoPLEngine"]
