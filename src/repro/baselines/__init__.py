"""Baseline concurrency-control engines the paper compares against (§8)."""

from .mvto import MVTOEngine
from .twopl import TwoPLEngine

__all__ = ["MVTOEngine", "TwoPLEngine"]
