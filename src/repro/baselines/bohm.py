"""Bohm-style deterministic batched-MVCC baseline.

Faleiro & Abadi's Bohm ("Rethinking serializable multiversion concurrency
control", VLDB 2015) separates concurrency control from execution: a single
sequencing point assigns every transaction a total-order timestamp, a CC
phase inserts *placeholder* versions for each transaction's pre-declared
write set, and an execution phase evaluates transactions with reads resolved
against the version chains — blocking (here: recursing) on a placeholder
until its writer has executed.  Because the timestamp order is fixed before
any data is touched, the committed history is serializable *by
construction* and identical on every run: determinism replaces locking.

This implementation keeps the repo's shapes: versions live in a real
:class:`~repro.core.versions.VersionStore`, transactions are
:class:`~repro.workload.generator.TxSpec`-like objects (ordered ops with
``compute`` RMW closures — exactly what the workload zoo generates), and
histories feed the MVSG checker.  The trade against MVTL is the one the
paper's genre comparison cares about: Bohm never aborts on conflicts (only
explicit dooms), but requires the full write set up front and cannot serve
interactive transactions.

Usage::

    engine = BohmEngine(history=h)
    engine.submit(spec, pid=1)          # enqueue, returns tx id
    engine.run_batch()                  # execute everything pending
"""

from __future__ import annotations

from itertools import count
from typing import Any, Hashable

from ..core.exceptions import AbortReason, TransactionStateError
from ..core.timestamp import Timestamp
from ..core.versions import VersionStore

__all__ = ["BohmEngine", "BohmTx"]


class BohmTx:
    """One submitted transaction: spec plus sequencing/outcome state."""

    __slots__ = ("id", "pid", "ts", "spec", "executed", "committed",
                 "aborted", "abort_reason", "reads", "writes", "doomed")

    def __init__(self, tx_id: int, pid: int, ts: Timestamp, spec: Any,
                 doomed: bool) -> None:
        self.id = tx_id
        self.pid = pid
        self.ts = ts
        self.spec = spec
        self.doomed = doomed
        self.executed = False
        self.committed = False
        self.aborted = False
        self.abort_reason: str | None = None
        self.reads: list[tuple[Hashable, Timestamp]] = []
        self.writes: dict[Hashable, Any] = {}


class BohmEngine:
    """Deterministic batched-MVCC engine over a :class:`VersionStore`.

    Parameters
    ----------
    history:
        Optional :class:`~repro.verify.history.HistoryRecorder`.
    batch_size:
        Submissions per batch when driven through :meth:`maybe_run_batch`
        (explicit :meth:`run_batch` ignores it).
    """

    name = "bohm"

    def __init__(self, *, history: Any | None = None,
                 batch_size: int = 16) -> None:
        self.history = history
        self.batch_size = batch_size
        self.store = VersionStore()
        self._tx_counter = count(1)
        self._seq = count(1)  # total order; also the timestamp value
        self._pending: list[BohmTx] = []
        #: key -> [(ts, BohmTx)] placeholders of the batch being executed.
        self._overlay: dict[Hashable, list[tuple[Timestamp, BohmTx]]] = {}
        self.stats = {"commits": 0, "aborts": 0, "deadlocks": 0,
                      "lock_timeouts": 0, "batches": 0}

    # -- submission (the sequencing layer) ----------------------------------

    def submit(self, spec: Any, pid: int = 0, *, doomed: bool = False) -> BohmTx:
        """Sequence ``spec``: assign the next total-order timestamp.

        ``doomed`` marks a transaction that must abort at execution time
        (the chaos/duel harnesses' stand-in for an application abort);
        its writes are skipped by every reader, exactly like Bohm's
        abort-handling rule (readers of an aborted placeholder fall
        through to the next older version).
        """
        ts = Timestamp(float(next(self._seq)), pid)
        tx = BohmTx(next(self._tx_counter), pid, ts, spec, doomed)
        self._pending.append(tx)
        if self.history is not None:
            self.history.record_begin(tx.id)
        return tx

    def maybe_run_batch(self) -> list[BohmTx] | None:
        """Run a batch if ``batch_size`` submissions have accumulated."""
        if len(self._pending) >= self.batch_size:
            return self.run_batch()
        return None

    # -- execution (CC phase + execution phase) -----------------------------

    def run_batch(self) -> list[BohmTx]:
        """Execute every pending transaction; returns them in order."""
        batch, self._pending = self._pending, []
        if not batch:
            return batch
        self.stats["batches"] += 1
        # CC phase: insert placeholders for every pre-declared write, in
        # timestamp order.  The write set of a TxSpec is statically known —
        # the Bohm precondition.
        overlay = self._overlay
        overlay.clear()
        for tx in batch:
            for op in tx.spec.ops:
                if op.is_write:
                    overlay.setdefault(op.key, []).append((tx.ts, tx))
        # Execution phase: evaluate in timestamp order.  Reads of an
        # unexecuted same-batch placeholder force its writer first
        # (dependency-driven execution); recursion depth is bounded by the
        # batch because forced writers always have *smaller* timestamps.
        for tx in batch:
            self._force(tx)
        # Install committed versions into the durable store, in order.
        for tx in batch:
            if tx.committed:
                for key, value in tx.writes.items():
                    self.store.install(key, tx.ts, value)
                if self.history is not None:
                    self.history.record_commit(tx.id, tx.ts,
                                               tuple(tx.writes))
            elif self.history is not None:
                self.history.record_abort(tx.id, tx.abort_reason)
        overlay.clear()
        return batch

    def _force(self, tx: BohmTx) -> None:
        """Execute ``tx`` now (idempotent)."""
        if tx.executed:
            return
        tx.executed = True  # set first: self-reads must not recurse
        if tx.doomed:
            tx.aborted = True
            tx.abort_reason = AbortReason.USER_ABORT
            self.stats["aborts"] += 1
            return
        reads: dict[Hashable, Any] = {}
        for op in tx.spec.ops:
            if op.is_write:
                value = (op.value if op.compute is None
                         else op.compute(reads))
                tx.writes[op.key] = value
            else:
                if op.key in tx.writes:  # read-your-writes
                    reads[op.key] = tx.writes[op.key]
                    continue
                version = self._resolve_read(tx, op.key)
                reads[op.key] = version[1]
                tx.reads.append((op.key, version[0]))
                if self.history is not None:
                    self.history.record_read(tx.id, op.key, version[0])
        tx.committed = True
        self.stats["commits"] += 1

    def _resolve_read(self, tx: BohmTx,
                      key: Hashable) -> tuple[Timestamp, Any]:
        """Latest visible version of ``key`` strictly below ``tx.ts``.

        Same-batch placeholders win over the store when newer; a
        placeholder's writer is forced before its value is read, and
        aborted writers are skipped to the next older version.
        """
        for writer_ts, writer in reversed(self._overlay.get(key, ())):
            if writer_ts >= tx.ts:
                continue
            self._force(writer)
            if writer.committed and key in writer.writes:
                return writer_ts, writer.writes[key]
            # aborted (or write never materialized): fall through older
        version = self.store.latest_before(key, tx.ts)
        if version is None:
            # Bohm chains always bottom out at the initial version; a None
            # would mean a purge raced the batch, which this engine never
            # does.
            raise TransactionStateError(
                f"Bohm read of {key!r} found no version below {tx.ts!r}")
        return version.ts, version.value

    # -- maintenance ---------------------------------------------------------

    def version_count(self) -> int:
        return self.store.version_count()

    def lock_record_count(self) -> int:
        return 0  # the whole point

    def purge_before(self, bound: Timestamp) -> int:
        return self.store.purge_before(bound)
