"""Standalone MVTO+ baseline.

MVTO+ (§3) is classic multiversion timestamp ordering [5] improved to avoid
cascading aborts by never exposing uncommitted data.  It is implemented here
*independently* of the MVTL machinery — with per-version read-timestamps, the
way real systems build it — so it can serve as an external baseline in the
benchmarks and as a cross-check for Theorem 5 (MVTL-TO behaves as MVTO+).

Protocol, for a transaction with begin timestamp ``ts``:

* **read k** — return the committed version of ``k`` with the largest
  timestamp below ``ts``; raise that version's read-timestamp to ``ts``.
  Reads never abort (unless the version was purged).
* **write k** — buffer locally.
* **commit** — for every written key, let ``v`` be the version that a read
  at ``ts`` would observe; if ``v.read_ts > ts``, some transaction already
  read past our write point: **abort**.  Otherwise install all writes at
  ``ts``.

Read-timestamps are never rolled back on abort — the conservative choice the
paper highlights (§3) as the root of MVTO+'s *ghost aborts*; with skewed
clocks it also exhibits *serial aborts* (§5.3).  Both pathologies are
demonstrated in the tests.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from itertools import count
from typing import Any, Hashable

from ..clocks.clock import Clock, LogicalClock
from ..core.exceptions import (AbortReason, TransactionAborted,
                               TransactionStateError)
from ..core.timestamp import BOTTOM, TS_ZERO, Timestamp
from ..core.transaction import Transaction, TxStatus

__all__ = ["MVTOEngine"]


class _MVTOVersion:
    __slots__ = ("ts", "value", "read_ts")

    def __init__(self, ts: Timestamp, value: Any) -> None:
        self.ts = ts
        self.value = value
        self.read_ts: Timestamp = ts  # largest timestamp that read us


class _MVTOKey:
    """Version chain with read-timestamps, ordered by version timestamp."""

    __slots__ = ("timestamps", "versions")

    def __init__(self) -> None:
        init = _MVTOVersion(TS_ZERO, BOTTOM)
        self.timestamps: list[Timestamp] = [TS_ZERO]
        self.versions: list[_MVTOVersion] = [init]

    def floor_before(self, ts: Timestamp) -> _MVTOVersion | None:
        idx = bisect_left(self.timestamps, ts)
        if idx == 0:
            return None
        return self.versions[idx - 1]

    def install(self, ts: Timestamp, value: Any) -> None:
        idx = bisect_left(self.timestamps, ts)
        self.timestamps.insert(idx, ts)
        self.versions.insert(idx, _MVTOVersion(ts, value))

    def purge_before(self, bound: Timestamp) -> int:
        idx = bisect_left(self.timestamps, bound)
        drop = max(0, idx - 1)
        if drop:
            del self.timestamps[:drop]
            del self.versions[:drop]
        return drop

    def __len__(self) -> int:
        return len(self.timestamps)


class MVTOEngine:
    """Thread-safe centralized MVTO+ engine (same interface as MVTLEngine)."""

    name = "mvto+"

    def __init__(self, clock: Clock | None = None, *,
                 clock_for_pid: Any | None = None,
                 history: Any | None = None) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self._clock_for_pid = clock_for_pid
        self.history = history
        self._lock = threading.Lock()
        self._keys: dict[Hashable, _MVTOKey] = {}
        self._purge_floor: dict[Hashable, Timestamp] = {}
        self._tx_counter = count(1)
        self.stats = {"commits": 0, "aborts": 0, "deadlocks": 0,
                      "lock_timeouts": 0}

    # -- transaction interface --------------------------------------------------

    def begin(self, pid: int = 0, priority: bool = False) -> Transaction:
        tx = Transaction(next(self._tx_counter), pid=pid, priority=priority)
        now = (self._clock_for_pid(pid).now() if self._clock_for_pid
               else self.clock.now())
        tx.state.ts = Timestamp(now, pid)
        if self.history is not None:
            self.history.record_begin(tx.id)
        return tx

    def read(self, tx: Transaction, key: Hashable) -> Any:
        self._check_active(tx)
        if key in tx.writeset:
            return tx.writeset[key]
        ts: Timestamp = tx.state.ts
        with self._lock:
            floor = self._purge_floor.get(key)
            if floor is not None and ts <= floor:
                self._abort_locked(tx, AbortReason.PURGED_VERSION)
                raise TransactionAborted(tx.id, AbortReason.PURGED_VERSION)
            version = self._chain(key).floor_before(ts)
            if version is None:
                self._abort_locked(tx, AbortReason.PURGED_VERSION)
                raise TransactionAborted(tx.id, AbortReason.PURGED_VERSION)
            if ts > version.read_ts:
                version.read_ts = ts
            tx.readset.append((key, version.ts))
            if self.history is not None:
                self.history.record_read(tx.id, key, version.ts)
            return version.value

    def write(self, tx: Transaction, key: Hashable, value: Any) -> None:
        self._check_active(tx)
        tx.writeset[key] = value

    def commit(self, tx: Transaction) -> bool:
        self._check_active(tx)
        ts: Timestamp = tx.state.ts
        with self._lock:
            for key in tx.writeset:
                version = self._chain(key).floor_before(ts)
                if version is None:
                    self._abort_locked(tx, AbortReason.PURGED_VERSION)
                    return False
                if version.read_ts > ts:
                    # Someone read the predecessor version at a timestamp
                    # above our write point: installing would invalidate
                    # that read.
                    self._abort_locked(tx, AbortReason.READ_TIMESTAMP_CONFLICT)
                    return False
            for key, value in tx.writeset.items():
                self._chain(key).install(ts, value)
            tx.commit_ts = ts
            tx.status = TxStatus.COMMITTED
            self.stats["commits"] += 1
            if self.history is not None:
                self.history.record_commit(tx.id, ts, tuple(tx.writeset))
        return True

    def abort(self, tx: Transaction,
              reason: str = AbortReason.USER_ABORT) -> None:
        self._check_active(tx)
        with self._lock:
            self._abort_locked(tx, reason)

    # -- maintenance --------------------------------------------------------------

    def purge_before(self, bound: Timestamp) -> int:
        """Purge versions older than ``bound`` (keeping the newest below)."""
        dropped = 0
        with self._lock:
            for key, chain in self._keys.items():
                n = chain.purge_before(bound)
                if n:
                    dropped += n
                    prev = self._purge_floor.get(key)
                    if prev is None or prev < bound:
                        self._purge_floor[key] = bound
        return dropped

    def version_count(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._keys.values())

    def lock_record_count(self) -> int:
        """Read-timestamps stand in for lock state; one per version."""
        return self.version_count()

    # -- internals -------------------------------------------------------------

    def _chain(self, key: Hashable) -> _MVTOKey:
        chain = self._keys.get(key)
        if chain is None:
            chain = self._keys[key] = _MVTOKey()
        return chain

    def _check_active(self, tx: Transaction) -> None:
        if not tx.is_active:
            raise TransactionStateError(
                f"operation on finished transaction {tx!r}")

    def _abort_locked(self, tx: Transaction, reason: str) -> None:
        tx.status = TxStatus.ABORTED
        tx.abort_reason = AbortReason.of(reason)
        self.stats["aborts"] += 1
        if self.history is not None:
            self.history.record_abort(tx.id, reason)
