"""Standalone strict two-phase locking (2PL) baseline.

The lock-based comparator of §8: one readers-writer lock per key, acquired at
access time and held until the end of the transaction (strict 2PL), with a
wait **timeout** standing in for deadlock handling, exactly as in the paper's
prototype ("The commit rate for 2PL is not optimal because we use timeouts:
if a transaction makes no progress after a given time, we abort it").

The store is single-version; each key remembers the commit timestamp of its
last writer so histories feed the same MVSG checker as everything else.
Commit timestamps come from a shared logical counter drawn while all locks
are held, which makes them consistent with the serialization order strict
2PL enforces.
"""

from __future__ import annotations

import threading
import time
from itertools import count
from typing import Any, Hashable

from ..core.exceptions import (AbortReason, TransactionAborted,
                               TransactionStateError)
from ..core.timestamp import BOTTOM, TS_ZERO, Timestamp
from ..core.transaction import Transaction, TxStatus

__all__ = ["TwoPLEngine"]


class _RWLock:
    """A readers-writer lock record (no fairness; waiters poll a condition)."""

    __slots__ = ("readers", "writer")

    def __init__(self) -> None:
        self.readers: set[Hashable] = set()
        self.writer: Hashable | None = None

    def can_read(self, tx_id: Hashable) -> bool:
        return self.writer is None or self.writer == tx_id

    def can_write(self, tx_id: Hashable) -> bool:
        writer_ok = self.writer is None or self.writer == tx_id
        readers_ok = not (self.readers - {tx_id})
        return writer_ok and readers_ok


class TwoPLEngine:
    """Thread-safe centralized strict-2PL engine (MVTLEngine interface)."""

    name = "2pl"

    def __init__(self, *, lock_timeout: float = 0.5,
                 history: Any | None = None) -> None:
        self.lock_timeout = lock_timeout
        self.history = history
        self._cond = threading.Condition()
        self._locks: dict[Hashable, _RWLock] = {}
        self._values: dict[Hashable, tuple[Any, Timestamp]] = {}
        self._tx_counter = count(1)
        self._commit_counter = count(1)
        self.stats = {"commits": 0, "aborts": 0, "deadlocks": 0,
                      "lock_timeouts": 0}

    # -- transaction interface --------------------------------------------------

    def begin(self, pid: int = 0, priority: bool = False) -> Transaction:
        tx = Transaction(next(self._tx_counter), pid=pid, priority=priority)
        tx.state.held_keys = set()
        if self.history is not None:
            self.history.record_begin(tx.id)
        return tx

    def read(self, tx: Transaction, key: Hashable) -> Any:
        self._check_active(tx)
        if key in tx.writeset:
            return tx.writeset[key]
        if not self._acquire(tx, key, write=False):
            self._do_abort(tx, AbortReason.LOCK_TIMEOUT)
            raise TransactionAborted(tx.id, AbortReason.LOCK_TIMEOUT)
        value, version_ts = self._values.get(key, (BOTTOM, TS_ZERO))
        tx.readset.append((key, version_ts))
        if self.history is not None:
            self.history.record_read(tx.id, key, version_ts)
        return value

    def write(self, tx: Transaction, key: Hashable, value: Any) -> None:
        self._check_active(tx)
        if not self._acquire(tx, key, write=True):
            self._do_abort(tx, AbortReason.LOCK_TIMEOUT)
            raise TransactionAborted(tx.id, AbortReason.LOCK_TIMEOUT)
        tx.writeset[key] = value

    def commit(self, tx: Transaction) -> bool:
        self._check_active(tx)
        with self._cond:
            commit_ts = Timestamp(float(next(self._commit_counter)), 0)
            for key, value in tx.writeset.items():
                self._values[key] = (value, commit_ts)
            tx.commit_ts = commit_ts
            tx.status = TxStatus.COMMITTED
            self.stats["commits"] += 1
            if self.history is not None:
                self.history.record_commit(tx.id, commit_ts,
                                           tuple(tx.writeset))
            self._release_all(tx)
            self._cond.notify_all()
        return True

    def abort(self, tx: Transaction,
              reason: str = AbortReason.USER_ABORT) -> None:
        self._check_active(tx)
        self._do_abort(tx, reason)

    # -- internals -------------------------------------------------------------

    def _acquire(self, tx: Transaction, key: Hashable, write: bool) -> bool:
        deadline = time.monotonic() + self.lock_timeout
        with self._cond:
            lock = self._locks.setdefault(key, _RWLock())
            while True:
                if write:
                    if lock.can_write(tx.id):
                        lock.readers.discard(tx.id)
                        lock.writer = tx.id
                        tx.state.held_keys.add(key)
                        return True
                else:
                    if lock.can_read(tx.id):
                        if lock.writer != tx.id:
                            lock.readers.add(tx.id)
                        tx.state.held_keys.add(key)
                        return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats["lock_timeouts"] += 1
                    return False
                self._cond.wait(timeout=min(remaining, 0.05))

    def _release_all(self, tx: Transaction) -> None:
        for key in tx.state.held_keys:
            lock = self._locks.get(key)
            if lock is None:
                continue
            lock.readers.discard(tx.id)
            if lock.writer == tx.id:
                lock.writer = None
        tx.state.held_keys.clear()

    def _do_abort(self, tx: Transaction, reason: str) -> None:
        with self._cond:
            tx.status = TxStatus.ABORTED
            tx.abort_reason = AbortReason.of(reason)
            self.stats["aborts"] += 1
            if self.history is not None:
                self.history.record_abort(tx.id, reason)
            self._release_all(tx)
            self._cond.notify_all()

    def _check_active(self, tx: Transaction) -> None:
        if not tx.is_active:
            raise TransactionStateError(
                f"operation on finished transaction {tx!r}")

    # -- metrics -----------------------------------------------------------------

    def version_count(self) -> int:
        with self._cond:
            return len(self._values)

    def lock_record_count(self) -> int:
        with self._cond:
            return sum(len(l.readers) + (1 if l.writer else 0)
                       for l in self._locks.values())
