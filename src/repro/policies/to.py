"""MVTL-TO: multiversion timestamp ordering as an MVTL policy (Alg. 8, §5.4).

Each transaction takes one timestamp ``ts`` from its clock at begin and tries
to serialize everything there: reads lock ``(tr, ts]`` (waiting on unfrozen
write locks), writes lock nothing until commit, and commit write-locks the
single point ``ts`` for every written key *without waiting* — any read lock
held there by another transaction (frozen or not, including locks left
behind by ended transactions) fails the commit.

With ``commit-gc = false`` the locks of finished transactions persist, which
is exactly MVTO+'s persistent read-timestamps: Theorem 5 says this policy
*behaves as* MVTO+, inheriting both its guarantees (reads never abort) and
its pathologies (serial aborts with bad clocks, ghost aborts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLTimestampOrdering"]


class MVTLTimestampOrdering(MVTLPolicy):
    """The MVTL-TO policy (emulates MVTO+; Theorem 5)."""

    name = "mvtl-to"

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        tx.state.ts = engine.make_ts(tx)
        tx.state.commit_failed = False
        tx.state.conflict_holders = ()

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        return  # writes lock only at commit time

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        got = self.read_lock_interval(engine, tx, key, tx.state.ts)
        if got is None:
            return None
        version, _locked = got
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        ts: Timestamp = tx.state.ts
        point = TsInterval.point(ts)
        for key in tx.writeset:
            result = engine.acquire(tx, key, LockMode.WRITE, point,
                                    wait=False)
            if not result.ok:
                # Record who killed the commit: the ghost-abort taxonomy
                # (Thm. 7 duel) classifies the abort by whether every
                # holder was already dead.
                tx.state.conflict_holders = tuple(
                    c.holder for c in result.conflicts)
                engine.release_all_write_locks(tx)
                tx.state.commit_failed = True
                return

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        if tx.state.commit_failed:
            return None
        ts: Timestamp = tx.state.ts
        return ts if candidates.contains(ts) else None

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return False  # locks persist, like MVTO+ read-timestamps
