"""The MVTL policies of §5 and §8.

Every class here specializes the generic Algorithm 2 policy; by Theorem 1
each yields a serializable engine.  They differ in which workloads commit:

============================  ==========================================
:class:`MVTLTimestampOrdering`  emulates MVTO+ (Thm. 5)
:class:`MVTLPessimistic`        emulates pessimistic locking (Thm. 6)
:class:`MVTLPreferential`       commits strictly more than MVTO+ (Thm. 2)
:class:`MVTLPrioritizer`        critical txs never aborted by normal (Thm. 3)
:class:`MVTLEpsilonClock`       no serial aborts with eps-clocks (Thm. 4)
:class:`MVTLGhostbuster`        no ghost aborts (Thm. 7)
:class:`MVTIL`                  the §8 prototype (early/late variants)
:class:`MVTLAdaptive`           per-stripe runtime selector over the above
============================  ==========================================

Policies register declaratively in :mod:`repro.policies.registry`; harness
and cluster code enumerates :func:`registered_policies` and instantiates via
:func:`make_policy` instead of naming classes.
"""

from .adaptive import MODES, MVTLAdaptive
from .epsilon_clock import MVTLEpsilonClock
from .ghostbuster import MVTLGhostbuster
from .mvtil import MVTIL
from .pessimistic import MVTLPessimistic
from .pref import MVTLPreferential, offset_alternatives
from .prio import MVTLPrioritizer
from .registry import (PolicySpec, make_policy, policy_spec, policy_specs,
                       register_policy, registered_policies)
from .to import MVTLTimestampOrdering

__all__ = [
    "MVTLTimestampOrdering",
    "MVTLGhostbuster",
    "MVTLPessimistic",
    "MVTLPreferential",
    "offset_alternatives",
    "MVTLPrioritizer",
    "MVTLEpsilonClock",
    "MVTIL",
    "MVTLAdaptive",
    "MODES",
    "PolicySpec",
    "register_policy",
    "policy_spec",
    "policy_specs",
    "make_policy",
    "registered_policies",
]
