"""MVTIL: the interval-locking variant evaluated in §8.

MVTIL is the epsilon-clock algorithm adapted to clients *without*
synchronized clocks: a transaction takes ``t`` from its local clock and works
with the interval ``I = [t, t + delta]`` (the paper uses delta = 5 ms).  When
accessing a key it tries to lock the timestamps in ``I``; if only a
sub-interval can be locked, ``I`` shrinks to that sub-interval — instead of
waiting — reducing locking work on subsequent keys.  A transaction that
observes ``I`` becoming empty knows it cannot commit and aborts immediately
(the closed-loop runner may then restart it with an adjusted interval,
§8.1).

Two variants differ only in the commit timestamp picked from the common
locked set (§8): **MVTIL-early** takes the smallest, **MVTIL-late** the
largest.  Early frees the higher timestamps for successors (serial-friendly,
like epsilon-clock); late maximizes room below for stragglers' reads.

This module is the centralized policy; :mod:`repro.dist` implements the same
protocol client/server over the simulated network for the benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTIL"]


class MVTIL(MVTLPolicy):
    """The MVTIL policy (§8): interval locking with shrink-don't-wait.

    Parameters
    ----------
    delta:
        Width of the per-transaction timestamp interval (paper: 5 ms).
    late:
        Pick the largest common timestamp at commit (MVTIL-late) instead of
        the smallest (MVTIL-early).
    gc_on_commit:
        Whether to garbage-collect locks when a transaction commits
        (freeze the read prefix up to the commit timestamp, release every
        other unfrozen lock).  Default True — without it a committed
        transaction's residual write locks across its interval would block
        every successor.  The *frozen* state left behind still grows
        without bound; purging that is the job of the periodic timestamp
        service (Fig. 6's MVTIL vs MVTIL-GC).  Aborted transactions always
        release their locks.
    """

    def __init__(self, delta: float = 0.005, late: bool = False,
                 gc_on_commit: bool = True) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.late = late
        self.gc_on_commit = gc_on_commit
        self.name = "mvtil-late" if late else "mvtil-early"

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        now = engine.now(tx)
        interval = TsInterval.closed(Timestamp(now, tx.pid),
                                     Timestamp(now + self.delta, tx.pid))
        tx.state.interval = IntervalSet.from_interval(interval)

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        interval: IntervalSet = tx.state.interval
        if interval.is_empty:
            return  # doomed; commit aborts, runner may restart
        engine.acquire(tx, key, LockMode.WRITE, interval, wait=False)
        # I <- the sub-interval actually write-locked for this key.
        tx.state.interval = interval.intersect(
            engine.locks.held(tx.id, key, LockMode.WRITE))

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        interval: IntervalSet = tx.state.interval
        if interval.is_empty:
            return None
        m = interval.pick_high()
        got = self.read_lock_interval(engine, tx, key, m, wait=False)
        if got is None:
            return None
        version, locked = got
        # Non-waiting acquisition can fragment around other transactions'
        # unfrozen write locks; only the contiguous piece adjacent to the
        # version protects the read.  Drop (and release) the rest.
        prefix = None
        for piece in locked:
            if piece.contains_just_after(version.ts):
                prefix = piece
                break
        if prefix is None:
            engine.release(tx, key, LockMode.READ, locked)
            tx.state.interval = IntervalSet.empty()
            return None  # cannot protect the read: I becomes empty
        leftovers = locked.subtract(IntervalSet.from_interval(prefix))
        if not leftovers.is_empty:
            engine.release(tx, key, LockMode.READ, leftovers)
        new_interval = interval.intersect(prefix)
        tx.state.interval = new_interval
        if new_interval.is_empty:
            return None  # I is empty: the transaction cannot commit
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        return

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        viable = candidates.intersect(tx.state.interval)
        if viable.is_empty:
            return None
        return viable.pick_high() if self.late else viable.pick_low()

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True if tx.aborted else self.gc_on_commit
