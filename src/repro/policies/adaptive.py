"""MVTL-Adaptive: per-stripe runtime policy selection.

Theorem 1 holds for *every* MVTL policy, so a policy is free to change its
locking behaviour per key — even mid-run — as long as each individual
transaction's locks satisfy the engine's commit check (which the engine
enforces regardless).  This policy exploits exactly that freedom: every lock
stripe (the engine's unit of contention accounting) carries a *mode* chosen
at runtime from the observed contention profile:

``to``
    MVTO+-style optimism (one timestamp, deferred point write locks) — the
    cheap default for uncontended stripes.
``pref``
    TO plus alternative commit timestamps slightly below the preferred one
    (Theorem 2's regime): a cure for moderate commit-point collisions.
``eps``
    epsilon-clock hedging (range write locks over ``[t-eps, t+eps]``,
    commit low, collect eagerly): the cure when commit-point conflicts
    dominate, e.g. under clock skew (Theorem 4's regime).
``prio``
    pessimistic treatment of ``priority=True`` transactions (Theorem 3's
    regime): engaged when critical transactions are seen aborting.

The selector feeds :class:`repro.obs.StripeSignals` — abort-reason mix,
wait depth and hotness per stripe, combining the policy's own outcome
observations (via the :meth:`~repro.core.policy.MVTLPolicy.on_finish`
surface) with the engine's stripe contention counters — and re-evaluates at
seeded, jittered decision points with hysteresis (a mode must win
``patience`` consecutive decisions before a switch).  All decisions are
pure functions of counters plus a seeded RNG: same seed, same schedule,
same switches.

Cross-mode coherence: a transaction touching stripes in different modes
still needs one commit timestamp locked everywhere.  All modes anchor on
the same base timestamp drawn at begin — TO/pref reads lock up to ``base``,
eps carries ``[base-eps, base+eps]`` (which contains ``base``), pref
alternatives sit just below ``base`` — so the mode mix narrows the
candidate set but never voids it structurally.  ``commit_ts`` prefers the
locked target but falls back to *any* engine-certified candidate
(``pick_low``), making the adaptive policy at least as willing to commit
as MVTL-TO on every schedule.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable

from ..core.exceptions import AbortReason
from ..core.intervals import EMPTY_SET, FULL_INTERVAL, IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import TS_INF, Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version
from ..obs.profile import StripeSignals

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLAdaptive", "MODES"]

#: The selectable per-stripe modes.
MODES = ("to", "pref", "eps", "prio")


class MVTLAdaptive(MVTLPolicy):
    """Per-stripe adaptive policy selector (TO / Pref / eps-clock / Prio).

    Parameters
    ----------
    epsilon:
        Half-width of the hedging interval used by ``eps``-mode stripes and
        the scale of ``pref`` alternatives (placed at ``-eps/2`` and
        ``-eps/4`` below the base timestamp).
    seed:
        Seed for the decision-point RNG (jitters the re-evaluation cadence;
        decisions themselves are counter-driven and deterministic).
    decision_interval:
        Re-evaluate stripe modes every ~this many ``begin``s (jittered by
        up to 25% from the seeded RNG).
    patience:
        Hysteresis: a stripe switches only after the same recommendation
        wins this many consecutive decision points.
    min_samples:
        Minimum transactions observed on a stripe within the current window
        before its mode may change.
    default_mode:
        Initial mode of every stripe.
    """

    name = "mvtl-adaptive"

    def __init__(self, epsilon: float = 0.05, seed: int = 0,
                 decision_interval: int = 32, patience: int = 2,
                 min_samples: int = 8,
                 default_mode: str = "to") -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if decision_interval < 1:
            raise ValueError("decision_interval must be >= 1")
        if default_mode not in MODES:
            raise ValueError(f"default_mode must be one of {MODES}")
        self.epsilon = epsilon
        self.decision_interval = decision_interval
        self.patience = patience
        self.min_samples = min_samples
        self.default_mode = default_mode
        self._rng = random.Random(seed)
        self._modes: dict[int, str] = {}
        self._signals: dict[int, StripeSignals] = {}
        self._pending: dict[int, tuple[str, int]] = {}  # stripe -> (want, n)
        self._begins = 0
        self._next_decision = self._jittered_interval()
        # Engine stripe-counter snapshot at the last decision point.
        self._counter_base: dict[str, tuple[int, ...]] | None = None
        #: Switch log for tests/benchmarks: (begin_count, stripe, old, new).
        self.switches: list[tuple[int, int, str, str]] = []

    # -- mode bookkeeping -----------------------------------------------------

    def mode_of(self, engine: "MVTLEngine", key: Hashable) -> str:
        """Current mode of ``key``'s stripe."""
        return self._modes.get(engine.stripe_of(key), self.default_mode)

    def set_mode(self, stripe: int, mode: str) -> None:
        """Force a stripe's mode (harness/test entry point)."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        old = self._modes.get(stripe, self.default_mode)
        if mode != old:
            self.switches.append((self._begins, stripe, old, mode))
        self._modes[stripe] = mode
        self._pending.pop(stripe, None)

    def _signal(self, stripe: int) -> StripeSignals:
        sig = self._signals.get(stripe)
        if sig is None:
            sig = self._signals[stripe] = StripeSignals(stripe)
        return sig

    def _jittered_interval(self) -> int:
        jitter = max(1, self.decision_interval // 4)
        return self.decision_interval + self._rng.randrange(jitter)

    # -- hooks ----------------------------------------------------------------

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        self._begins += 1
        if self._begins >= self._next_decision:
            self._decide(engine)
            self._next_decision = self._begins + self._jittered_interval()
        base = engine.make_ts(tx)
        tx.state.ts = base
        eps = self.epsilon
        alts = []
        if eps > 0:
            alts = sorted({Timestamp(base.value - eps / 2, base.pid),
                           Timestamp(base.value - eps / 4, base.pid)}
                          - {base})
        tx.state.poss = [base] + alts
        tx.state.ts_set = IntervalSet.from_interval(TsInterval.closed(
            Timestamp(base.value - eps, base.pid),
            Timestamp(base.value + eps, base.pid)))
        tx.state.chosen = None
        tx.state.conflict_holders = ()
        #: key -> mode snapshot taken at write() time, so commit_locks
        #: treats each key the way its write was locked even if the stripe
        #: switched modes mid-transaction.
        tx.state.write_modes = {}

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        mode = self.mode_of(engine, key)
        tx.state.write_modes[key] = mode
        if mode == "prio" and tx.priority:
            engine.acquire(tx, key, LockMode.WRITE, FULL_INTERVAL,
                           wait=True, stop_on_frozen=False)
            return
        if mode == "eps":
            ts_set: IntervalSet = tx.state.ts_set
            if ts_set.is_empty:
                return  # doomed on this axis; commit falls back or aborts
            result = engine.acquire(tx, key, LockMode.WRITE, ts_set,
                                    wait=True, stop_on_frozen=False)
            tx.state.ts_set = result.acquired.union(
                engine.locks.held(tx.id, key, LockMode.WRITE)
                .intersect(ts_set))
            return
        # to / pref / non-priority prio: defer to commit time.

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        mode = self.mode_of(engine, key)
        base: Timestamp = tx.state.ts
        if mode == "prio" and tx.priority:
            got = self.read_lock_interval(engine, tx, key, TS_INF)
            return got[0] if got is not None else None
        if mode == "eps":
            ts_set: IntervalSet = tx.state.ts_set
            upper = ts_set.pick_high() if not ts_set.is_empty else base
            if upper < base:
                upper = base  # keep the shared anchor readable
            got = self.read_lock_interval(engine, tx, key, upper)
            if got is None:
                return None
            version, locked = got
            if not ts_set.is_empty:
                own = engine.locks.held(tx.id, key, LockMode.WRITE)
                cover = locked.union(own)
                tx.state.ts_set = ts_set.intersect(
                    cover if not cover.is_empty else EMPTY_SET)
            return version
        # to / pref: read below base, lock (tr, base].  (pref alternatives
        # sit *below* base, so base is the top either way — Thm. 2 regime.)
        got = self.read_lock_interval(engine, tx, key, base,
                                      version_below=base)
        if got is None:
            return None
        version, locked = got
        if mode == "pref":
            tx.state.poss = [t for t in tx.state.poss
                             if t == version.ts or t == base
                             or locked.contains(t)]
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        base: Timestamp = tx.state.ts
        modes: dict = tx.state.write_modes
        deferred = [k for k in tx.writeset
                    if modes.get(k, "to") in ("to", "pref")
                    or (modes.get(k) == "prio" and not tx.priority)]
        if not deferred:
            return
        # Try one shared commit point across every deferred key: base
        # first, then the pref alternatives if any deferred key was written
        # under pref mode.
        targets = [base]
        if any(modes.get(k) == "pref" for k in deferred):
            targets += [t for t in tx.state.poss if t != base]
        last_conflicts: tuple = ()
        for t in targets:
            point = TsInterval.point(t)
            taken: list[Hashable] = []
            ok = True
            for key in deferred:
                result = engine.acquire(tx, key, LockMode.WRITE, point,
                                        wait=False)
                if not result.ok:
                    last_conflicts = result.conflicts
                    ok = False
                    break
                taken.append(key)
            if ok:
                tx.state.chosen = t
                return
            # Back out only the freshly-taken points: eps-range and
            # prio-full write locks on other keys must survive for the
            # commit_ts fallback (release_all_write_locks would destroy
            # them).
            for key in taken:
                engine.release(tx, key, LockMode.WRITE, point)
        tx.state.conflict_holders = tuple(
            c.holder for c in last_conflicts)

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        if candidates.is_empty:
            return None
        chosen: Timestamp | None = tx.state.chosen
        if chosen is not None and candidates.contains(chosen):
            return chosen
        for t in tx.state.poss:
            if candidates.contains(t):
                return t
        # Any engine-certified timestamp commits (Thm. 1); committing low
        # and collecting eagerly is the eps-clock discipline.
        return candidates.pick_low()

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True  # collect eagerly: no persistent dead read locks

    def on_finish(self, engine: "MVTLEngine", tx: Transaction) -> None:
        aborted = tx.aborted
        reason = tx.abort_reason if aborted else None
        stripes = {engine.stripe_of(k) for k, _ in tx.readset}
        stripes.update(engine.stripe_of(k) for k in tx.writeset)
        for stripe in stripes:
            self._signal(stripe).record_outcome(aborted, reason,
                                                critical=tx.priority)

    # -- the selector ---------------------------------------------------------

    def _decide(self, engine: "MVTLEngine") -> None:
        """Re-evaluate every observed stripe's mode from its signals."""
        counters = engine.stripe_contention()
        base = self._counter_base
        for stripe, sig in sorted(self._signals.items()):
            waits = counters["waits"][stripe]
            conflicts = counters["conflicts"][stripe]
            if base is not None:
                waits -= base["waits"][stripe]
                conflicts -= base["conflicts"][stripe]
            sig.waits = waits
            sig.conflicts = conflicts
            if sig.txs < self.min_samples:
                continue
            want = self._recommend(sig,
                                   self._modes.get(stripe,
                                                   self.default_mode))
            current = self._modes.get(stripe, self.default_mode)
            if want == current:
                self._pending.pop(stripe, None)
            else:
                prev_want, n = self._pending.get(stripe, (None, 0))
                n = n + 1 if prev_want == want else 1
                if n >= self.patience:
                    self.set_mode(stripe, want)
                else:
                    self._pending[stripe] = (want, n)
            sig.reset_window()
        self._counter_base = counters

    def _recommend(self, sig: StripeSignals, current: str) -> str:
        """Map a stripe's signal window to the mode that cures it.

        The ladder mirrors the theorems: critical transactions failing
        *disproportionately* (their abort rate exceeding the stripe's
        overall rate) call for Prio (Thm. 3) — a lone critical abort in a
        generally-contended window does not, because whatever cures the
        general contention cures the criticals too; commit-point collisions
        (no-common-timestamp dominating the abort mix) call for the
        eps-clock hedge (Thm. 4) or, in moderation, Pref alternatives
        (Thm. 2); heavy blocking with few aborts calls for plain
        optimistic TO.
        """
        rate = sig.abort_rate
        crit_rate = (sig.critical_aborts / sig.critical_txs
                     if sig.critical_txs else 0.0)
        if sig.critical_aborts >= 2 and crit_rate > rate:
            return "prio"
        ncts = sig.abort_share(AbortReason.NO_COMMON_TIMESTAMP)
        if rate >= 0.25 and ncts >= 0.5:
            return "eps"
        if rate >= 0.10 and ncts >= 0.5:
            return "pref"
        if rate < 0.05 and sig.wait_depth > 0.5:
            return "to"
        return current
