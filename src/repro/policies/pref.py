"""MVTL-Pref: the preferential algorithm (Alg. 3/5, §5.1).

Each transaction has a *preferential* timestamp from its clock plus a set of
*alternative* timestamps given by a user function ``A(t)``.  The transaction
tries to commit at the preferential timestamp; if commit-time write-locking
fails there, it tries the alternatives.  Reads lock a contiguous range that
covers as many of the possible timestamps as the lock/frozen state allows,
keeping the alternatives viable.

Theorem 2: with alternatives chosen *below* the preferential timestamp
(``A(t) < t``), MVTL-Pref commits strictly more workloads than MVTO+ — every
MVTO+-abort-free workload stays abort-free, and infinitely many workloads
that MVTO+ aborts (e.g. ``W1(Y) C1  R2(X) R3(Y) C3  W2(Y) C2``) commit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Iterable

from ..core.intervals import IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLPreferential", "offset_alternatives"]

AlternativesFn = Callable[[Timestamp], Iterable[Timestamp]]


def offset_alternatives(*offsets: float) -> AlternativesFn:
    """An ``A(t)`` producing ``t + offset`` for each offset.

    ``offset_alternatives(-10, +10)`` is the paper's example
    ``A(t) = {t-10, t+10}``.  The process id of ``t`` is preserved, keeping
    alternative timestamps unique per process (§5.1).
    """

    def alternatives(t: Timestamp) -> list[Timestamp]:
        return [Timestamp(t.value + off, t.pid) for off in offsets if off != 0]

    return alternatives


class MVTLPreferential(MVTLPolicy):
    """The MVTL-Pref policy (Algorithm 5).

    Parameters
    ----------
    alternatives:
        The function ``A(t)`` mapping the preferential timestamp to the
        alternative timestamps.  Defaults to two alternatives slightly below
        the preferential one (the Theorem 2 regime).
    """

    name = "mvtl-pref"

    def __init__(self, alternatives: AlternativesFn | None = None) -> None:
        self._alternatives = (alternatives if alternatives is not None
                              else offset_alternatives(-0.5, -0.25))

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        pref = engine.make_ts(tx)
        tx.state.pref_ts = pref
        # Possible timestamps, preferential first (commit-locks loop order:
        # "first tx.PrefTS then arbitrary", Alg. 5 line 16).
        others = sorted(set(self._alternatives(pref)) - {pref})
        tx.state.poss = [pref] + others
        tx.state.chosen = None

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        return  # lock write-set only on commit (Alg. 5 line 4)

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        """Alg. 5 lines 5-14: read below PrefTS, lock up to tmax.

        ``tmax`` is the largest possible timestamp reachable from the read
        version without crossing a frozen write lock; the shared helper's
        frozen-truncation implements exactly that cap, so we ask it for the
        largest possible timestamp and intersect ``PossTS`` with what was
        actually locked.
        """
        pref: Timestamp = tx.state.pref_ts
        poss: list[Timestamp] = tx.state.poss
        upper = max(poss) if poss else pref
        got = self.read_lock_interval(engine, tx, key, upper,
                                      version_below=pref)
        if got is None:
            return None
        version, locked = got
        # PossTS <- PossTS  intersect  [tr, tmax] (Alg. 5 line 13); tr itself
        # survives only vacuously (it is another transaction's timestamp).
        tx.state.poss = [t for t in poss
                         if t == version.ts or locked.contains(t)]
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        """Alg. 5 lines 15-26: find one timestamp write-lockable everywhere."""
        if not tx.writeset:
            tx.state.chosen = next(iter(tx.state.poss), None)
            return
        for t in tx.state.poss:
            got_all = True
            for key in tx.writeset:
                result = engine.acquire(tx, key, LockMode.WRITE,
                                        TsInterval.point(t), wait=False)
                if not result.ok:
                    got_all = False
                    engine.release_all_write_locks(tx)
                    break
            if got_all:
                tx.state.chosen = t
                return
        tx.state.chosen = None

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        chosen: Timestamp | None = tx.state.chosen
        if chosen is not None and candidates.contains(chosen):
            return chosen
        # The write-lockable timestamp may still fail read coverage; fall
        # back to any possible timestamp the engine certifies.
        for t in tx.state.poss:
            if candidates.contains(t):
                return t
        return None

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return False  # Alg. 5 line 28
