"""MVTL-epsilon-clock: no serial aborts with epsilon-synchronized clocks
(Alg. 4/7, §5.3).

MVTO+ aborts even in *serial* executions when clocks are skewed: a later
transaction can draw a smaller timestamp and collide with an earlier
transaction's read-timestamps.  The epsilon-clock policy hedges against skew:
a transaction reads its clock ``t`` and works with the whole interval
``[t - eps, t + eps]`` — guaranteed to contain the true real time when clocks
are epsilon-synchronized.  Writes lock as much of the interval as possible
(waiting on unfrozen locks), reads lock up to the interval's top, the
interval shrinks to what was actually locked, and commit takes the *lowest*
common locked timestamp, then garbage-collects.

Committing low and collecting eagerly is the point (Theorem 4): in a serial
execution each transaction commits at or below its start's real time and
frees every higher timestamp, so the next transaction's interval — which
contains *its* real time — is unobstructed.  The trade-off is pessimistic
behaviour between transactions that start within ``2*eps`` of each other:
they may wait for one another, and deadlocks are possible (handled by the
engine's wait-for-graph detection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import EMPTY_SET, IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLEpsilonClock"]


class MVTLEpsilonClock(MVTLPolicy):
    """The MVTL-epsilon-clock policy (Theorem 4: no serial aborts)."""

    name = "mvtl-epsilon-clock"

    def __init__(self, epsilon: float) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        now = engine.now(tx)
        interval = TsInterval.closed(
            Timestamp(now - self.epsilon, tx.pid),
            Timestamp(now + self.epsilon, tx.pid))
        tx.state.ts_set = IntervalSet.from_interval(interval)

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        ts_set: IntervalSet = tx.state.ts_set
        if ts_set.is_empty:
            return  # doomed; commit will abort
        result = engine.acquire(tx, key, LockMode.WRITE, ts_set,
                                wait=True, stop_on_frozen=False)
        # tx.TS <- the write-locks tx could acquire (Alg. 7 line 6).
        tx.state.ts_set = result.acquired.union(
            engine.locks.held(tx.id, key, LockMode.WRITE).intersect(ts_set))

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        ts_set: IntervalSet = tx.state.ts_set
        if ts_set.is_empty:
            return None  # Alg. 7 line 8
        m = ts_set.pick_high()
        got = self.read_lock_interval(engine, tx, key, m)
        if got is None:
            return None
        version, locked = got
        # tx.TS <- tx.TS  intersect  (tr, m] (Alg. 7 line 16).  Intersect
        # with what was actually locked (equal to (tr, m] unless a frozen
        # write truncated it).
        own_write = engine.locks.held(tx.id, key, LockMode.WRITE)
        cover = locked.union(own_write)
        tx.state.ts_set = ts_set.intersect(
            cover if not cover.is_empty else EMPTY_SET)
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        return  # Alg. 7 line 18

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        if candidates.is_empty:
            return None
        return candidates.pick_low()  # Alg. 7 line 19: min T

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True  # Alg. 7 line 20: release higher timestamps promptly
