"""MVTL-Ghostbuster: timestamp ordering without ghost aborts (Alg. 10, §5.5).

A *ghost abort* is an abort caused by a conflict with a transaction that had
already aborted — under MVTO+ an aborted transaction's read-timestamps linger
and can kill later writers.  MVTL-Ghostbuster is MVTL-TO with one change:
garbage collection always runs when a transaction ends, so an aborted
transaction's locks vanish with it and only *active* conflicts can abort
anyone (Theorem 7).

A second difference from Algorithm 8: commit-time write-locking *waits* on
unfrozen locks instead of failing immediately (Algorithm 10 line 15), since
with prompt GC a conflicting read lock belongs to a live transaction that
will soon release or freeze it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.timestamp import Timestamp
from ..core.transaction import Transaction
from .to import MVTLTimestampOrdering

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLGhostbuster"]


class MVTLGhostbuster(MVTLTimestampOrdering):
    """The MVTL-Ghostbuster policy (Theorem 7: no ghost aborts)."""

    name = "mvtl-ghostbuster"

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        ts: Timestamp = tx.state.ts
        point = TsInterval.point(ts)
        for key in tx.writeset:
            result = engine.acquire(tx, key, LockMode.WRITE, point,
                                    wait=True, stop_on_frozen=True)
            if not result.ok:
                tx.state.conflict_holders = tuple(
                    c.holder for c in result.conflicts)
                engine.release_all_write_locks(tx)
                tx.state.commit_failed = True
                return

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True  # always collect: aborted transactions leave no locks
