"""MVTL-Prio: the prioritizer algorithm (Alg. 6, §5.2).

Multiversion timestamp ordering has no way to shield critical transactions
from aborts.  MVTL can, simply by giving critical transactions more locks:

* **normal** transactions behave as in MVTO+ (one clock timestamp, read
  locks up to it, commit-time point write locks, no waiting at commit);
* **critical** transactions behave like pessimistic concurrency control —
  writes lock everything, reads lock ``(tr, +inf]`` — waiting on unfrozen
  locks, and commit at the lowest common locked timestamp.

Theorem 3: a critical transaction is never aborted by normal transactions
(normals only ever lock up to their own clock timestamps, so the interval
``(max normal ts, +inf]`` is always available to a critical transaction).
Critical transactions can still deadlock *with each other*; the engine's
wait-for-graph detection picks a victim.

Note on GC: the pseudo-code (Alg. 6) garbage-collects only critical
transactions, but §5.2's prose says "Both types of transactions garbage
collect on commit".  We follow the prose — without it, ended normal
transactions would leave unfrozen read locks that block critical writers
forever, contradicting the intended liveness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import FULL_INTERVAL, IntervalSet, TsInterval
from ..core.locks import LockMode
from ..core.timestamp import TS_INF, Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version
from .to import MVTLTimestampOrdering

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLPrioritizer", "CRITICAL_DELTA_FACTOR"]

#: How much wider the distributed layer makes a critical MVTIL
#: transaction's interval relative to a normal one's ``delta``.  In-process,
#: MVTL-Prio gives criticals *all* the locks (writes lock everything, reads
#: lock ``(tr, +inf]``); over the wire that would serialize every critical
#: behind every lock on every key it touches.  A widened-but-finite interval
#: is the practical middle ground: more timestamps to survive shrinking
#: (fewer interval-empty aborts, the Theorem 3 direction) without the
#: unbounded blocking of true pessimism.  The distributed critical class
#: additionally bypasses admission control and is never shed or displaced in
#: server queues — which is where Theorem 3's "never aborted by normals"
#: actually bites under overload.
CRITICAL_DELTA_FACTOR = 4.0


class MVTLPrioritizer(MVTLTimestampOrdering):
    """The MVTL-Prio policy (Theorem 3).

    Transactions started with ``engine.begin(priority=True)`` are critical.
    """

    name = "mvtl-prio"

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        if not tx.priority:
            super().on_begin(engine, tx)

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        if not tx.priority:
            return
        engine.acquire(tx, key, LockMode.WRITE, FULL_INTERVAL,
                       wait=True, stop_on_frozen=False)

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        upper = TS_INF if tx.priority else tx.state.ts
        got = self.read_lock_interval(engine, tx, key, upper)
        if got is None:
            return None
        version, _locked = got
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        if tx.priority:
            return  # critical transactions locked everything up front
        super().commit_locks(engine, tx)

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        if tx.priority:
            return candidates.pick_low() if candidates else None
        return super().commit_ts(engine, tx, candidates)

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True  # both kinds collect on completion (see module note)
