"""MVTL-Pessimistic: pessimistic concurrency control as MVTL (Alg. 9, §5.4).

Writes lock *all* timestamps ``[0, +inf]`` of a key (waiting on anything
unfrozen, skipping frozen history) and reads lock ``(tr, +inf]`` above the
latest version.  Holding up to +inf is what object-granularity locking looks
like on the timestamp line: nobody else can touch the key's future until the
transaction ends.  Commit picks the lowest commonly locked timestamp and
always garbage-collects, releasing the future for the next transaction.

Theorem 6: this behaves as classic pessimistic (2PL-style) concurrency
control; the only aborts are deadlock victims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..core.intervals import FULL_INTERVAL, IntervalSet
from ..core.locks import LockMode
from ..core.policy import MVTLPolicy
from ..core.timestamp import TS_INF, Timestamp
from ..core.transaction import Transaction
from ..core.versions import Version

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import MVTLEngine

__all__ = ["MVTLPessimistic"]


class MVTLPessimistic(MVTLPolicy):
    """The MVTL-Pessimistic policy (Theorem 6)."""

    name = "mvtl-pessimistic"

    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        # Lock every timestamp, waiting for unfrozen holders ("for t = +inf
        # downto 0 ... waiting if read- or write-locked but not frozen");
        # frozen history is skipped — committed versions below are immutable
        # anyway and the commit timestamp lands above them.
        engine.acquire(tx, key, LockMode.WRITE, FULL_INTERVAL,
                       wait=True, stop_on_frozen=False)

    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        got = self.read_lock_interval(engine, tx, key, TS_INF)
        if got is None:
            return None
        version, _locked = got
        return version

    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        return

    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        if candidates.is_empty:
            return None
        return candidates.pick_low()

    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        return True  # release the future for the next transaction
