"""Declarative policy registry — the narrow policy decision surface.

Theorem 1 makes the locking policy a pure performance knob: *any*
:class:`~repro.core.policy.MVTLPolicy` yields a serializable engine.  The
code should reflect that — engine, server, cluster and harness code must be
policy-agnostic, and a new policy should drop in by registering here rather
than by teaching call sites about its private state.

Each :class:`PolicySpec` couples a constructor with the **capability flags**
the rest of the system is allowed to ask about:

``defers_writes``
    Write locks are taken at commit time, not at ``write()`` — the
    distributed layer batches such policies' commit-time lock pass.
``waits``
    The policy parks on unfrozen conflicting locks (pessimistic idiom)
    instead of failing/shrinking; harnesses use this to budget timeouts.
``critical_bypass``
    The policy gives ``priority=True`` transactions extra locks (Theorem 3);
    the distributed layer maps this onto queue priority + admission bypass.
``critical_delta_factor``
    How much wider the distributed layer makes a critical transaction's
    interval relative to ``delta`` (1.0 = no widening).  This replaces the
    old reach-in where the MVTIL client imported MVTL-Prio's module
    constant directly.

Anything a harness needs beyond these flags goes through the policy-surface
accessors on :class:`~repro.core.policy.MVTLPolicy` itself
(``conflict_holders``, ``on_finish``) — never through ``tx.state``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..core.policy import MVTLPolicy

__all__ = ["PolicySpec", "register_policy", "policy_spec", "make_policy",
           "registered_policies", "policy_specs"]


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: constructor plus declared capabilities."""

    name: str
    factory: Callable[..., MVTLPolicy]
    description: str = ""
    #: Constructor defaults applied by :meth:`make` (overridable per call).
    defaults: Mapping[str, Any] = field(default_factory=dict)
    defers_writes: bool = False
    waits: bool = False
    critical_bypass: bool = False
    critical_delta_factor: float = 1.0

    def make(self, **overrides: Any) -> MVTLPolicy:
        """Instantiate the policy with ``defaults`` merged under overrides.

        Unknown override keys are dropped rather than passed through, so a
        harness can say "epsilon=0.05 for whoever takes one" when sweeping
        every registered policy with one parameter dict.
        """
        params = dict(self.defaults)
        for key, value in overrides.items():
            if key in params:
                params[key] = value
        return self.factory(**params)


_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"policy {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def policy_spec(name: str) -> PolicySpec:
    """Look up one registered policy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; registered: "
                       f"{sorted(_REGISTRY)}") from None


def make_policy(name: str, **overrides: Any) -> MVTLPolicy:
    """Instantiate a registered policy by name."""
    return policy_spec(name).make(**overrides)


def registered_policies() -> tuple[str, ...]:
    """Registered policy names, in registration order (deterministic)."""
    return tuple(_REGISTRY)


def policy_specs() -> Iterator[PolicySpec]:
    """Iterate the registered specs in registration order."""
    return iter(tuple(_REGISTRY.values()))


def _register_builtin() -> None:
    # Local imports: the registry is imported by repro.policies.__init__,
    # which also imports the policy modules — keep construction lazy enough
    # that import order cannot cycle.
    from .adaptive import MVTLAdaptive
    from .epsilon_clock import MVTLEpsilonClock
    from .ghostbuster import MVTLGhostbuster
    from .mvtil import MVTIL
    from .pessimistic import MVTLPessimistic
    from .pref import MVTLPreferential
    from .prio import CRITICAL_DELTA_FACTOR, MVTLPrioritizer
    from .to import MVTLTimestampOrdering

    register_policy(PolicySpec(
        name="mvtl-to", factory=MVTLTimestampOrdering,
        description="MVTO+ emulation: clock timestamp, commit-time point "
                    "write locks, keeps read locks on abort (Thm. 5)",
        defers_writes=True))
    register_policy(PolicySpec(
        name="mvtl-ghostbuster", factory=MVTLGhostbuster,
        description="TO that waits at commit and always collects — zero "
                    "ghost aborts (Thm. 7)",
        defers_writes=True, waits=True))
    register_policy(PolicySpec(
        name="mvtl-pessimistic", factory=MVTLPessimistic,
        description="pessimistic emulation: writes lock everything, reads "
                    "lock (tr, +inf] (Thm. 6)",
        waits=True))
    register_policy(PolicySpec(
        name="mvtl-pref", factory=MVTLPreferential,
        description="preferred + alternative timestamps; commits strictly "
                    "more than MVTO+ (Thm. 2)",
        defaults={"alternatives": None}, defers_writes=True))
    register_policy(PolicySpec(
        name="mvtl-prio", factory=MVTLPrioritizer,
        description="critical transactions never aborted by normals "
                    "(Thm. 3)",
        defers_writes=True, waits=True, critical_bypass=True,
        critical_delta_factor=CRITICAL_DELTA_FACTOR))
    register_policy(PolicySpec(
        name="mvtl-epsilon-clock", factory=MVTLEpsilonClock,
        description="interval [now-eps, now+eps]: zero serial aborts under "
                    "eps-synchronized clocks (Thm. 4)",
        defaults={"epsilon": 0.05}, waits=True))
    register_policy(PolicySpec(
        name="mvtil-early", factory=MVTIL,
        description="the §8 prototype interval policy, earliest viable "
                    "commit timestamp",
        defaults={"delta": 0.005, "late": False},
        critical_bypass=True,
        critical_delta_factor=CRITICAL_DELTA_FACTOR))
    register_policy(PolicySpec(
        name="mvtil-late", factory=MVTIL,
        description="MVTIL picking the latest viable commit timestamp",
        defaults={"delta": 0.005, "late": True},
        critical_bypass=True,
        critical_delta_factor=CRITICAL_DELTA_FACTOR))
    register_policy(PolicySpec(
        name="mvtl-adaptive", factory=MVTLAdaptive,
        description="per-stripe selector switching between TO, Pref, Prio "
                    "and eps-clock from observed contention",
        defaults={"epsilon": 0.05, "seed": 0, "decision_interval": 32},
        defers_writes=True, waits=True, critical_bypass=True,
        critical_delta_factor=CRITICAL_DELTA_FACTOR))


_register_builtin()
