"""Clock models (§2, §5.3, §8.1).

The paper's algorithms read timestamps from local clocks with varying quality
guarantees: perfectly synchronized, epsilon-synchronized, or arbitrarily
skewed.  Serial aborts (§5.3) arise precisely when clocks are *not*
monotonic/synchronized, so tests and benchmarks need to dial clock quality
explicitly.  All clocks read an underlying *time source* — ``time.monotonic``
for threaded use, the simulator's clock in the DES — so the same models work
on both substrates.

Every clock supports ``advance_floor(t)``: the timestamp service of §8.1
broadcasts an old time T and "clients advance their local clocks to T if they
are behind", preventing slow clocks from starting transactions that need
purged versions.
"""

from __future__ import annotations

import itertools
import threading
import time
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

__all__ = [
    "Clock",
    "PerfectClock",
    "LogicalClock",
    "SkewedClock",
    "EpsilonSyncClock",
    "DriftingClock",
]

TimeSource = Callable[[], float]


class Clock(ABC):
    """A local clock producing float timestamp values."""

    def __init__(self) -> None:
        self._floor = float("-inf")

    @abstractmethod
    def _raw(self) -> float:
        """The clock's own reading, before the advance floor is applied."""

    def now(self) -> float:
        """Current clock value, at least the advance floor."""
        return max(self._raw(), self._floor)

    def advance_floor(self, t: float) -> None:
        """Never again return a value below ``t`` (§8.1 broadcast effect)."""
        if t > self._floor:
            self._floor = t


class PerfectClock(Clock):
    """A clock exactly equal to the global time source."""

    def __init__(self, source: TimeSource | None = None) -> None:
        super().__init__()
        self._source = source if source is not None else time.monotonic

    def _raw(self) -> float:
        return self._source()


class LogicalClock(Clock):
    """A strictly monotonic counter, shared by all users of the instance.

    Models "synchronized clocks" in single-process tests: successive reads
    from *any* thread are strictly increasing, so timestamp order matches
    real-time order.  Thread-safe.
    """

    def __init__(self, start: float = 1.0, step: float = 1.0) -> None:
        super().__init__()
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._start = start
        self._step = step

    def _raw(self) -> float:
        with self._lock:
            return self._start + self._step * next(self._counter)


class SkewedClock(Clock):
    """A clock with a constant offset from the global source.

    A negative offset on one process while another has zero offset is the
    minimal setup that triggers serial aborts under MVTO+ (§5.3's T1/T2
    example).
    """

    def __init__(self, source: TimeSource, offset: float) -> None:
        super().__init__()
        self._source = source
        self.offset = offset

    def _raw(self) -> float:
        return self._source() + self.offset


class EpsilonSyncClock(Clock):
    """An epsilon-synchronized clock: within ``epsilon`` of the source.

    Each reading is ``source() + e`` with ``e`` drawn uniformly from
    ``[-epsilon, +epsilon]`` (optionally held fixed per clock with
    ``fixed=True``, modelling per-core offset rather than jitter).
    """

    def __init__(self, source: TimeSource, epsilon: float,
                 rng: np.random.Generator | None = None,
                 fixed: bool = False) -> None:
        super().__init__()
        self._source = source
        self.epsilon = epsilon
        self._rng = rng if rng is not None else np.random.default_rng()
        self._fixed_offset = (
            float(self._rng.uniform(-epsilon, epsilon)) if fixed else None)

    def _raw(self) -> float:
        if self._fixed_offset is not None:
            return self._source() + self._fixed_offset
        return self._source() + float(
            self._rng.uniform(-self.epsilon, self.epsilon))


class DriftingClock(Clock):
    """A clock whose error grows linearly with time (rate ppm-style).

    ``now() = offset + (1 + drift) * source()``.  Used to study how MVTIL's
    interval shrinking and the timestamp-service floor cope with progressively
    bad clocks.
    """

    def __init__(self, source: TimeSource, drift: float,
                 offset: float = 0.0) -> None:
        super().__init__()
        self._source = source
        self.drift = drift
        self.offset = offset

    def _raw(self) -> float:
        return self.offset + (1.0 + self.drift) * self._source()
