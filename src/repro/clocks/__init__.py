"""Clock models for timestamp generation (§2, §5.3)."""

from .clock import (Clock, DriftingClock, EpsilonSyncClock, LogicalClock,
                    PerfectClock, SkewedClock)

__all__ = ["Clock", "PerfectClock", "LogicalClock", "SkewedClock",
           "EpsilonSyncClock", "DriftingClock"]
