"""repro — Multiversion Timestamp Locking (MVTL).

A faithful, full-scope Python reproduction of *"Locking Timestamps versus
Locking Objects"* (Aguilera, David, Guerraoui, Wang — PODC 2018): the generic
MVTL algorithm, the §5 policy family, the MVTO+ and 2PL baselines, the
distributed MVTL protocol with commitment objects, a deterministic
discrete-event substrate standing in for the paper's testbeds, and a
benchmark harness regenerating Figures 1-7.

Quickstart
----------
>>> from repro import MVTLEngine
>>> from repro.policies import MVTIL
>>> engine = MVTLEngine(MVTIL(delta=0.005))
>>> tx = engine.begin()
>>> engine.write(tx, "x", 1)
>>> engine.commit(tx)
True
"""

from .core import (BOTTOM, TS_INF, TS_ZERO, AbortReason, DeadlockError,
                   IntervalSet, LockMode, MVTLEngine, MVTLError, MVTLPolicy,
                   Timestamp, Transaction, TransactionAborted, TsInterval,
                   TxStatus)

__version__ = "1.0.0"

__all__ = [
    "MVTLEngine", "MVTLPolicy", "Transaction", "TxStatus",
    "Timestamp", "TS_ZERO", "TS_INF", "BOTTOM",
    "TsInterval", "IntervalSet", "LockMode",
    "AbortReason", "MVTLError", "TransactionAborted", "DeadlockError",
    "__version__",
]
