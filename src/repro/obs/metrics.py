"""Counters, gauges and histograms for the observability layer.

Zero-dependency metric primitives plus :func:`fold_trace`, which turns a
recorded event stream into the metrics the paper's evaluation reasons
about: the abort-reason taxonomy, lock-wait time, MVTIL interval-shrink
magnitude, per-key conflict hotness, and (when the cluster samples them)
server queue depths.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping, Sequence

from .trace import EventKind, TraceEvent

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "fold_trace",
           "merge_conflict_counts", "merge_overload_counters",
           "merge_replication_counters", "merge_scenario_counters",
           "merge_stripe_counts"]


class Counter:
    """A labelled monotonic counter (label ``None`` = the default series)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[Hashable, float] = {}

    def inc(self, label: Hashable = None, n: float = 1) -> None:
        self._counts[label] = self._counts.get(label, 0) + n

    def get(self, label: Hashable = None) -> float:
        return self._counts.get(label, 0)

    @property
    def total(self) -> float:
        return sum(self._counts.values())

    def as_dict(self) -> dict:
        return {str(k): v for k, v in sorted(
            self._counts.items(), key=lambda kv: (-kv[1], str(kv[0])))}

    def top(self, n: int) -> list[tuple[Hashable, float]]:
        """The ``n`` largest labels, descending (ties broken by label)."""
        return sorted(self._counts.items(),
                      key=lambda kv: (-kv[1], str(kv[0])))[:n]

    def __len__(self) -> int:
        return len(self._counts)


class Gauge:
    """A last-value metric with min/max tracking."""

    __slots__ = ("value", "min", "max", "samples")

    def __init__(self) -> None:
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> dict:
        return {"value": self.value, "min": self.min, "max": self.max,
                "samples": self.samples}


class Histogram:
    """An exact-sample histogram with percentile queries.

    Keeps raw observations (runs here are bounded, exactness beats bucket
    tuning); summaries report count/sum/mean/min/max and any percentiles.
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) by nearest-rank on the raw samples."""
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        idx = min(len(self._values) - 1,
                  int(round(q / 100.0 * (len(self._values) - 1))))
        return self._values[idx]

    def as_dict(self, percentiles: Iterable[float] = (50, 95, 99)) -> dict:
        if not self._values:
            return {"count": 0}
        out: dict[str, Any] = {
            "count": self.count, "sum": self.sum, "mean": self.mean,
            "min": min(self._values), "max": max(self._values),
        }
        for q in percentiles:
            out[f"p{q:g}"] = self.percentile(q)
        return out


class MetricsRegistry:
    """A named collection of metrics, created on first use.

    One registry per run; ``as_dict()`` is the JSON sidecar payload.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def as_dict(self) -> dict:
        return {
            "counters": {k: v.as_dict()
                         for k, v in sorted(self._counters.items())},
            "gauges": {k: v.as_dict()
                       for k, v in sorted(self._gauges.items())},
            "histograms": {k: v.as_dict()
                           for k, v in sorted(self._histograms.items())},
        }


def fold_trace(events: Iterable[TraceEvent],
               registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fold a trace into the standard metric set.

    Populates (creating ``registry`` if needed):

    * ``tx.commits`` / ``tx.aborts`` counters, aborts labelled by reason;
    * ``abort.reasons`` — the taxonomy breakdown;
    * ``lock.wait_time`` histogram — seconds spent waiting for locks;
    * ``interval.shrink`` histogram — per-acquisition interval loss
      (MVTIL's requested-minus-granted width, §8's shrink-don't-wait);
    * ``key.conflicts`` counter — per-key count of contended accesses
      (acquisitions that lost width, waits, and conflicts reported by the
      lock table);
    * ``key.wait_time`` counter — per-key seconds of lock waiting.
    """
    reg = registry if registry is not None else MetricsRegistry()
    commits = reg.counter("tx.commits")
    aborts = reg.counter("tx.aborts")
    reasons = reg.counter("abort.reasons")
    wait_hist = reg.histogram("lock.wait_time")
    shrink_hist = reg.histogram("interval.shrink")
    key_conflicts = reg.counter("key.conflicts")
    key_wait = reg.counter("key.wait_time")
    for event in events:
        kind = event.kind
        if kind == EventKind.COMMIT:
            commits.inc()
        elif kind == EventKind.ABORT:
            aborts.inc()
            reasons.inc(event.reason if event.reason is not None
                        else "unknown")
        elif kind == EventKind.WAIT:
            if event.dur is not None:
                wait_hist.observe(event.dur)
                if event.key is not None:
                    key_wait.inc(event.key, event.dur)
            if event.key is not None:
                key_conflicts.inc(event.key)
        elif kind == EventKind.LOCK_ACQUIRE:
            shrink = event.data.get("shrink")
            if shrink is not None:
                shrink_hist.observe(shrink)
            contended = ((shrink is not None and shrink > 0)
                         or event.data.get("conflicts"))
            if contended and event.key is not None:
                key_conflicts.inc(event.key)
    return reg


def merge_conflict_counts(registry: MetricsRegistry,
                          counts: Mapping[Hashable, int]) -> None:
    """Merge a lock table's per-key conflict counters into the registry."""
    key_conflicts = registry.counter("key.conflicts")
    for key, n in counts.items():
        key_conflicts.inc(key, n)


def merge_overload_counters(registry: MetricsRegistry,
                            servers: Iterable[Any]) -> None:
    """Merge the servers' overload counters into the registry.

    Folds each server's shed (bounded-queue rejections) and expired
    (deadline-passed drops) counts into ``server.shed`` / ``server.expired``
    counters labelled by server id — per-server attribution shows whether
    overload is cluster-wide or a hot partition.  Zero counts are skipped
    (absent labels read back as 0).
    """
    shed = registry.counter("server.shed")
    expired = registry.counter("server.expired")
    for server in servers:
        n = server.stats.get("shed", 0)
        if n:
            shed.inc(server.server_id, n)
        n = server.stats.get("expired", 0)
        if n:
            expired.inc(server.server_id, n)


def merge_stripe_counts(registry: MetricsRegistry,
                        contention: Mapping[str, Sequence[int]]) -> None:
    """Merge an engine's per-stripe contention counters into the registry.

    ``contention`` is :meth:`repro.core.engine.MVTLEngine.stripe_contention`'s
    payload: ``{"waits": (...), "conflicts": (...)}``, one entry per stripe.
    Folds into ``stripe.waits`` / ``stripe.conflicts`` counters labelled by
    stripe index (zero stripes are skipped — an absent label reads back as
    0, and hot-stripe reports stay uncluttered).
    """
    waits = registry.counter("stripe.waits")
    conflicts = registry.counter("stripe.conflicts")
    for idx, n in enumerate(contention.get("waits", ())):
        if n:
            waits.inc(idx, n)
    for idx, n in enumerate(contention.get("conflicts", ())):
        if n:
            conflicts.inc(idx, n)


def merge_replication_counters(registry: MetricsRegistry,
                               servers: Iterable[Any],
                               clients: Iterable[Any]) -> None:
    """Merge replication/durability counters into the registry.

    Server side: mirrored write-lock holds and snapshot reads served /
    refused (labelled by server id) — refusals also broken down by reason
    (dirty / floor / unfrozen / missing) — plus the anti-entropy sync
    counters (requests, deltas, installs, batches served, aborted runs,
    completed resyncs, reads served post-resync) and WAL records and
    checkpoints for durable servers.  Client side: follower reads, snapshot fallbacks
    (refusals that fell through to another replica) and snapshot commits
    (labelled by client id), and every follower-read staleness sample into
    the ``replication.read_staleness`` histogram.  Zero counts are skipped
    (absent labels read back as 0).
    """
    per_server = (("holds_mirrored", registry.counter("server.holds_mirrored")),
                  ("snapshot_reads", registry.counter("server.snapshot_reads")),
                  ("snapshot_refused",
                   registry.counter("server.snapshot_refused")),
                  ("snapshot_refused_dirty",
                   registry.counter("server.snapshot_refused_dirty")),
                  ("snapshot_refused_floor",
                   registry.counter("server.snapshot_refused_floor")),
                  ("snapshot_refused_unfrozen",
                   registry.counter("server.snapshot_refused_unfrozen")),
                  ("snapshot_refused_missing",
                   registry.counter("server.snapshot_refused_missing")),
                  ("sync_reqs", registry.counter("server.sync_reqs")),
                  ("sync_deltas", registry.counter("server.sync_deltas")),
                  ("sync_installs", registry.counter("server.sync_installs")),
                  ("sync_batches_served",
                   registry.counter("server.sync_batches_served")),
                  ("sync_aborted", registry.counter("server.sync_aborted")),
                  ("resyncs", registry.counter("server.resyncs")),
                  ("snapshot_served_resynced",
                   registry.counter("server.snapshot_served_resynced")))
    wal_records = registry.counter("server.wal_records")
    checkpoints = registry.counter("server.checkpoints")
    for server in servers:
        for stat, counter in per_server:
            n = server.stats.get(stat, 0)
            if n:
                counter.inc(server.server_id, n)
        durable = getattr(server, "durable", None)
        if durable is not None:
            if durable.wal.records_appended:
                wal_records.inc(server.server_id,
                                durable.wal.records_appended)
            if durable.checkpoints:
                checkpoints.inc(server.server_id, durable.checkpoints)
    per_client = (("follower_reads",
                   registry.counter("client.follower_reads")),
                  ("snapshot_fallbacks",
                   registry.counter("client.snapshot_fallbacks")),
                  ("snapshot_commits",
                   registry.counter("client.snapshot_commits")),
                  ("fanout_acked", registry.counter("client.fanout_acked")),
                  ("fanout_unacked",
                   registry.counter("client.fanout_unacked")))
    staleness = registry.histogram("replication.read_staleness")
    for client in clients:
        for stat, counter in per_client:
            n = client.stats.get(stat, 0)
            if n:
                counter.inc(client.client_id, n)
        for sample in getattr(client, "read_staleness", ()):
            staleness.observe(sample)


def merge_scenario_counters(registry: MetricsRegistry,
                            scenario_report: Mapping[str, Any]) -> None:
    """Merge a scenario run's generator counters into the registry.

    One counter per scenario, named ``scenario.<name>`` and labelled by
    event kind (transfers / audits / scans / burst_txs / ...), so a
    metrics dump pins the generated mix alongside the protocol metrics.
    Zero counts are skipped (absent labels read back as 0).
    """
    name = scenario_report.get("scenario", "unknown")
    counter = registry.counter(f"scenario.{name}")
    for kind, n in scenario_report.get("counters", {}).items():
        if n:
            counter.inc(kind, n)
