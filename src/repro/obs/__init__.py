"""repro.obs — structured tracing, metrics and contention profiling.

A zero-dependency observability layer shared by the threaded engine and
the discrete-event distributed substrate:

* :mod:`repro.obs.trace` — :class:`Tracer` / :data:`NULL_TRACER`
  structured per-transaction span events;
* :mod:`repro.obs.metrics` — counters / gauges / histograms and
  :func:`fold_trace`;
* :mod:`repro.obs.profile` — :class:`ContentionProfile`, per-key and
  per-phase attribution with a human-readable report;
* :mod:`repro.obs.export` — JSONL traces and JSON metric sidecars;
* ``python -m repro.obs report <trace.jsonl>`` — the contention report
  CLI.

Attach a tracer with ``ClusterConfig(trace=True)`` (DES) or
``MVTLEngine(policy, tracer=Tracer())`` (threaded); with no tracer
attached every hook is a single attribute check on :data:`NULL_TRACER`.
"""

from .export import (metrics_sidecar_path, read_metrics_json,
                     read_trace_jsonl, trace_sidecar_path,
                     write_metrics_json, write_trace_jsonl)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, fold_trace,
                      merge_conflict_counts, merge_overload_counters,
                      merge_replication_counters, merge_stripe_counts)
from .profile import (ContentionProfile, KeyStats, StripeSignals,
                      profile_report)
from .trace import (NULL_TRACER, EventKind, NullTracer, TraceEvent, Tracer,
                    span_width)

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "TraceEvent", "EventKind",
    "span_width",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "fold_trace",
    "merge_conflict_counts", "merge_overload_counters",
    "merge_replication_counters", "merge_stripe_counts",
    "ContentionProfile", "KeyStats", "StripeSignals", "profile_report",
    "write_trace_jsonl", "read_trace_jsonl", "write_metrics_json",
    "read_metrics_json", "metrics_sidecar_path", "trace_sidecar_path",
]
