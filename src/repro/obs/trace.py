"""Structured per-transaction tracing shared by both substrates.

A :class:`Tracer` records :class:`TraceEvent` objects for every interesting
moment of a transaction's life — begin, read, write, lock acquisition with
the requested-versus-granted interval, lock waits, freezes, commit, abort
with its :class:`~repro.core.exceptions.AbortReason` — stamped by a caller-
supplied clock: ``Simulator.now`` in the discrete-event substrate,
``time.perf_counter`` in the threaded engine.

Overhead discipline: instrumented hot paths guard every emission with a
single attribute check (``if tracer.enabled:``), and the disabled path is
the :data:`NULL_TRACER` singleton whose ``enabled`` is ``False`` — so a
run without tracing pays one attribute load and a falsy branch per hook,
nothing else.  The tracer itself never touches RNG streams and never
schedules simulation events, which keeps traced and untraced DES runs
bit-identical (asserted by the test suite).

This module is deliberately dependency-free: interval arguments are
duck-typed (anything exposing ``pieces`` or ``lo/hi`` endpoints with
``.value`` floats), so :mod:`repro.core` can import it without cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

__all__ = [
    "EventKind", "TraceEvent", "Tracer", "NullTracer", "NULL_TRACER",
    "span_width", "TERMINAL_KINDS",
]


class EventKind:
    """Trace event names (plain strings, JSONL-friendly)."""

    BEGIN = "begin"
    READ = "read"
    WRITE = "write"
    LOCK_ACQUIRE = "lock-acquire"
    WAIT = "wait"
    FREEZE = "freeze"
    COMMIT = "commit"
    ABORT = "abort"

    ALL = (BEGIN, READ, WRITE, LOCK_ACQUIRE, WAIT, FREEZE, COMMIT, ABORT)


#: Kinds that end a transaction; every traced transaction has at most one.
TERMINAL_KINDS = frozenset({EventKind.COMMIT, EventKind.ABORT})


def span_width(span: Any) -> float | None:
    """Total width (in timestamp-value units) of an interval-ish object.

    Accepts ``None``, a single interval (``.lo``/``.hi`` endpoints with
    ``.value``), or an interval set (iterable ``.pieces``).  Duck-typed so
    the obs layer needs no import of :mod:`repro.core.intervals`.
    """
    if span is None:
        return None
    pieces: Iterable[Any]
    if hasattr(span, "pieces"):
        pieces = span.pieces
    elif hasattr(span, "lo"):
        pieces = (span,)
    else:
        return None
    total = 0.0
    for piece in pieces:
        total += piece.hi.value - piece.lo.value
    return total


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``t`` is substrate time (simulated seconds or ``perf_counter`` seconds);
    ``seq`` is a per-tracer monotone sequence number that orders events
    emitted at identical times.  Optional fields are ``None`` when they do
    not apply to the event kind; ``data`` carries kind-specific extras
    (e.g. ``requested``/``granted`` widths for lock acquisitions).
    """

    t: float
    seq: int
    kind: str
    tx: Hashable
    key: Hashable | None = None
    mode: str | None = None
    ts: Any = None
    reason: str | None = None
    dur: float | None = None
    data: dict = field(default_factory=dict)


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    ``enabled`` is a class attribute so the hot-path guard
    ``if tracer.enabled:`` is one dictionary-free attribute load.
    """

    enabled = False

    def begin(self, tx: Hashable, **data: Any) -> None:
        pass

    def read(self, tx: Hashable, key: Hashable, ts: Any = None,
             **data: Any) -> None:
        pass

    def write(self, tx: Hashable, key: Hashable, **data: Any) -> None:
        pass

    def lock_acquire(self, tx: Hashable, key: Hashable, mode: str,
                     requested: Any = None, granted: Any = None,
                     **data: Any) -> None:
        pass

    def wait(self, tx: Hashable, key: Hashable | None = None,
             dur: float | None = None, **data: Any) -> None:
        pass

    def freeze(self, tx: Hashable, key: Hashable, mode: str,
               span: Any = None, **data: Any) -> None:
        pass

    def commit(self, tx: Hashable, ts: Any = None, **data: Any) -> None:
        pass

    def abort(self, tx: Hashable, reason: Any = None, **data: Any) -> None:
        pass


#: Shared no-op tracer; attach-points default to this.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """A recording tracer: appends :class:`TraceEvent`\\ s to ``events``.

    Parameters
    ----------
    now_fn:
        Zero-argument clock used to stamp events.  Pass ``lambda: sim.now``
        in the DES; defaults to ``time.perf_counter`` for the threaded
        engine.
    sink:
        Optional callable receiving each event as it is emitted (streaming
        export); events are still appended to ``events`` unless ``keep``
        is False.
    keep:
        Whether to retain events in memory (default True).
    """

    enabled = True

    def __init__(self, now_fn: Callable[[], float] | None = None, *,
                 sink: Callable[[TraceEvent], None] | None = None,
                 keep: bool = True) -> None:
        self.now = now_fn if now_fn is not None else time.perf_counter
        self.sink = sink
        self.keep = keep
        self.events: list[TraceEvent] = []
        self._seq = 0
        # Threaded engines emit from many threads at once (one per client
        # thread, any stripe); the mutex keeps sequence numbers unique and
        # the sink callback serialized.  DES runs are single-threaded, so
        # an uncontended lock costs one atomic op per event.
        self._emit_lock = threading.Lock()

    def emit(self, kind: str, tx: Hashable, *, key: Hashable | None = None,
             mode: str | None = None, ts: Any = None,
             reason: str | None = None, dur: float | None = None,
             **data: Any) -> TraceEvent:
        with self._emit_lock:
            self._seq += 1
            event = TraceEvent(self.now(), self._seq, kind, tx, key=key,
                               mode=mode, ts=ts, reason=reason, dur=dur,
                               data=data)
            if self.keep:
                self.events.append(event)
            if self.sink is not None:
                self.sink(event)
        return event

    # -- per-kind conveniences (the wiring points call these) ---------------

    def begin(self, tx: Hashable, **data: Any) -> None:
        self.emit(EventKind.BEGIN, tx, **data)

    def read(self, tx: Hashable, key: Hashable, ts: Any = None,
             **data: Any) -> None:
        self.emit(EventKind.READ, tx, key=key, ts=ts, **data)

    def write(self, tx: Hashable, key: Hashable, **data: Any) -> None:
        self.emit(EventKind.WRITE, tx, key=key, **data)

    def lock_acquire(self, tx: Hashable, key: Hashable, mode: str,
                     requested: Any = None, granted: Any = None,
                     **data: Any) -> None:
        """Record an acquisition with requested-vs-granted interval widths.

        ``shrink`` — how much of the requested width was *not* granted —
        is the per-access magnitude MVTIL's interval loses to conflicts;
        its distribution is one of the headline metrics.
        """
        req_w = span_width(requested)
        got_w = span_width(granted)
        if req_w is not None and got_w is not None:
            data.setdefault("shrink", max(0.0, req_w - got_w))
        self.emit(EventKind.LOCK_ACQUIRE, tx, key=key, mode=mode,
                  requested=req_w, granted=got_w, **data)

    def wait(self, tx: Hashable, key: Hashable | None = None,
             dur: float | None = None, **data: Any) -> None:
        self.emit(EventKind.WAIT, tx, key=key, dur=dur, **data)

    def freeze(self, tx: Hashable, key: Hashable, mode: str,
               span: Any = None, **data: Any) -> None:
        self.emit(EventKind.FREEZE, tx, key=key, mode=mode,
                  span=span_width(span), **data)

    def commit(self, tx: Hashable, ts: Any = None, **data: Any) -> None:
        self.emit(EventKind.COMMIT, tx, ts=ts, **data)

    def abort(self, tx: Hashable, reason: Any = None, **data: Any) -> None:
        self.emit(EventKind.ABORT, tx,
                  reason=str(reason) if reason is not None else None, **data)
