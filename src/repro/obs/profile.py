"""Lock-contention profiling: fold traces into attribution tables.

The paper's evaluation attributes MVTIL's wins to *where* time and aborts
go — which keys are hot, which protocol phases dominate, which abort
reasons fire (§8.4; Faleiro & Abadi make the same point for MVCC at
large).  :class:`ContentionProfile` computes exactly those tables from a
trace:

* **per-key attribution** — contended accesses, lock-wait seconds and
  interval shrink per key, ranked into a top-N hot-key table;
* **per-phase attribution** — wall/sim time between consecutive events of
  a transaction is charged to the later event's kind, yielding a
  time-in-phase breakdown (read / write / lock-acquire / wait / commit /
  abort) per policy run;
* **abort-reason breakdown** — the taxonomy histogram with shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from .trace import TERMINAL_KINDS, EventKind, TraceEvent

__all__ = ["KeyStats", "StripeSignals", "ContentionProfile",
           "profile_report"]


@dataclass
class KeyStats:
    """Aggregated contention evidence for one key."""

    key: Hashable
    accesses: int = 0
    contended: int = 0
    wait_time: float = 0.0
    shrink: float = 0.0

    @property
    def hotness(self) -> float:
        """Ranking score: contended accesses, wait seconds weighted in.

        Waiting is charged at 1 contended-access-equivalent per
        millisecond so that a key that parks transactions for long beats
        one that merely shaves interval width.
        """
        return self.contended + 1000.0 * self.wait_time


@dataclass
class StripeSignals:
    """Contention evidence for one lock stripe, folded online.

    The adaptive policy selector (:mod:`repro.policies.adaptive`) feeds one
    of these per stripe from transaction outcomes plus the engine's stripe
    counters, then reads the derived signals — abort-reason mix, wait depth
    and a hotness rank comparable to :attr:`KeyStats.hotness` — at its
    decision points.  Pure counters, deterministic, cheap to update.
    """

    stripe: int
    txs: int = 0
    aborts: int = 0
    critical_txs: int = 0
    critical_aborts: int = 0
    #: AbortReason value -> count (same taxonomy as :attr:`abort_reasons`).
    reasons: dict = field(default_factory=dict)
    #: Engine counters (deltas since the last decision point).
    waits: int = 0
    conflicts: int = 0

    def record_outcome(self, aborted: bool, reason: str | None,
                       critical: bool = False) -> None:
        self.txs += 1
        if critical:
            self.critical_txs += 1
        if aborted:
            self.aborts += 1
            if critical:
                self.critical_aborts += 1
            key = str(reason) if reason is not None else "unknown"
            self.reasons[key] = self.reasons.get(key, 0) + 1

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.txs if self.txs else 0.0

    @property
    def wait_depth(self) -> float:
        """Parked waits per transaction — the blocking-pressure signal."""
        return self.waits / self.txs if self.txs else 0.0

    def abort_share(self, reason: str) -> float:
        """Share of this stripe's aborts attributed to ``reason``."""
        return (self.reasons.get(str(reason), 0) / self.aborts
                if self.aborts else 0.0)

    @property
    def hotness(self) -> float:
        """Ranking score, same weighting idea as :attr:`KeyStats.hotness`:
        conflicts count once, parked waits are weighted heavily."""
        return self.conflicts + 10.0 * self.waits

    def reset_window(self) -> None:
        """Start a fresh observation window (keep nothing)."""
        self.txs = self.aborts = 0
        self.critical_txs = self.critical_aborts = 0
        self.waits = self.conflicts = 0
        self.reasons.clear()


@dataclass
class _TxAccumulator:
    begins: int = 0
    terminals: int = 0
    last_t: float | None = None


class ContentionProfile:
    """Per-key and per-phase attribution tables folded from a trace."""

    def __init__(self) -> None:
        self.keys: dict[Hashable, KeyStats] = {}
        self.phase_time: dict[str, float] = {}
        self.abort_reasons: dict[str, int] = {}
        self.commits = 0
        self.aborts = 0
        self.tx_seen = 0
        self.span: tuple[float, float] | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "ContentionProfile":
        profile = cls()
        txs: dict[Hashable, _TxAccumulator] = {}
        t_min = t_max = None
        for event in events:
            t_min = event.t if t_min is None else min(t_min, event.t)
            t_max = event.t if t_max is None else max(t_max, event.t)
            acc = txs.get(event.tx)
            if acc is None:
                acc = txs[event.tx] = _TxAccumulator()
            # Phase attribution: the gap since the transaction's previous
            # event is time spent *producing* this event.
            if acc.last_t is not None and event.t >= acc.last_t:
                profile.phase_time[event.kind] = (
                    profile.phase_time.get(event.kind, 0.0)
                    + (event.t - acc.last_t))
            acc.last_t = event.t
            kind = event.kind
            if kind == EventKind.BEGIN:
                acc.begins += 1
            elif kind in TERMINAL_KINDS:
                acc.terminals += 1
                if kind == EventKind.COMMIT:
                    profile.commits += 1
                else:
                    profile.aborts += 1
                    reason = event.reason or "unknown"
                    profile.abort_reasons[reason] = (
                        profile.abort_reasons.get(reason, 0) + 1)
            if event.key is not None:
                stats = profile.keys.get(event.key)
                if stats is None:
                    stats = profile.keys[event.key] = KeyStats(event.key)
                if kind in (EventKind.READ, EventKind.WRITE,
                            EventKind.LOCK_ACQUIRE):
                    stats.accesses += 1
                if kind == EventKind.WAIT:
                    stats.contended += 1
                    if event.dur is not None:
                        stats.wait_time += event.dur
                elif kind == EventKind.LOCK_ACQUIRE:
                    shrink = event.data.get("shrink")
                    if shrink:
                        stats.contended += 1
                        stats.shrink += shrink
                    elif event.data.get("conflicts"):
                        stats.contended += 1
        profile.tx_seen = len(txs)
        if t_min is not None:
            profile.span = (t_min, t_max)
        return profile

    # -- tables --------------------------------------------------------------

    def top_hot_keys(self, n: int = 10) -> list[KeyStats]:
        """The ``n`` hottest keys by :attr:`KeyStats.hotness` (desc)."""
        ranked = sorted((s for s in self.keys.values() if s.contended > 0),
                        key=lambda s: (-s.hotness, str(s.key)))
        return ranked[:n]

    def phase_breakdown(self) -> list[tuple[str, float, float]]:
        """``(phase, seconds, share)`` rows, descending by time."""
        total = sum(self.phase_time.values())
        rows = sorted(self.phase_time.items(), key=lambda kv: -kv[1])
        return [(phase, t, (t / total if total else 0.0))
                for phase, t in rows]

    def abort_breakdown(self) -> list[tuple[str, int, float]]:
        """``(reason, count, share-of-aborts)`` rows, descending."""
        total = sum(self.abort_reasons.values())
        rows = sorted(self.abort_reasons.items(),
                      key=lambda kv: (-kv[1], kv[0]))
        return [(reason, n, (n / total if total else 0.0))
                for reason, n in rows]

    # -- rendering -----------------------------------------------------------

    def format_report(self, top: int = 10) -> str:
        """Human-readable contention report (the ``repro.obs`` CLI output)."""
        lines = ["== contention report =="]
        if self.span is not None:
            lines.append(f"   trace span: t={self.span[0]:.6g} .. "
                         f"{self.span[1]:.6g}")
        total = self.commits + self.aborts
        rate = self.commits / total if total else 1.0
        lines.append(f"   transactions: {self.tx_seen} traced, "
                     f"{self.commits} commits, {self.aborts} aborts "
                     f"(commit rate {rate:.3f})")
        lines.append("")
        lines.append("-- abort reasons --")
        if self.abort_reasons:
            for reason, n, share in self.abort_breakdown():
                lines.append(f"   {reason:<28s} {n:>8d}  {share:>6.1%}")
        else:
            lines.append("   (no aborts)")
        lines.append("")
        lines.append(f"-- top {top} hot keys --")
        hot = self.top_hot_keys(top)
        if hot:
            lines.append(f"   {'key':<16s} {'accesses':>9s} "
                         f"{'contended':>10s} {'wait(s)':>10s} "
                         f"{'shrink':>10s}")
            for stats in hot:
                lines.append(
                    f"   {str(stats.key):<16s} {stats.accesses:>9d} "
                    f"{stats.contended:>10d} {stats.wait_time:>10.4f} "
                    f"{stats.shrink:>10.4g}")
        else:
            lines.append("   (no contended keys)")
        lines.append("")
        lines.append("-- time in phase --")
        phases = self.phase_breakdown()
        if phases:
            for phase, t, share in phases:
                lines.append(f"   {phase:<16s} {t:>10.4f}s  {share:>6.1%}")
        else:
            lines.append("   (no timed phases)")
        return "\n".join(lines)


def profile_report(events: Sequence[TraceEvent], top: int = 10) -> str:
    """One-call helper: fold ``events`` and render the report."""
    return ContentionProfile.from_events(events).format_report(top=top)
