"""Trace and metrics persistence: JSONL traces, JSON metric sidecars.

The on-disk trace format is one JSON object per line, in emission order,
with ``None`` fields omitted.  Values that JSON cannot represent natively
are converted:

* tuples (transaction ids like ``("client-3", 7)``) become lists on write
  and are restored to tuples on read, recursively;
* :class:`~repro.core.timestamp.Timestamp`-like objects (``.value`` +
  ``.pid``) become ``{"ts": [value, pid]}`` markers and are restored to
  plain ``(value, pid)`` tuples — enough for grouping and display without
  importing the core types here;
* anything else non-serializable falls back to ``repr``.

Metric sidecars are plain JSON dumps of
:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .trace import TraceEvent

__all__ = [
    "event_to_dict", "event_from_dict",
    "write_trace_jsonl", "read_trace_jsonl",
    "write_metrics_json", "read_metrics_json",
    "metrics_sidecar_path", "trace_sidecar_path",
]


def _jsonify(value: Any) -> Any:
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if hasattr(value, "value") and hasattr(value, "pid"):
        return {"ts": [_jsonify(value.value), value.pid]}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return repr(value)


def _dejsonify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_dejsonify(v) for v in value)
    if isinstance(value, dict):
        if set(value) == {"ts"} and isinstance(value["ts"], list):
            return tuple(_dejsonify(v) for v in value["ts"])
        return {k: _dejsonify(v) for k, v in value.items()}
    if value in ("inf", "-inf"):
        return float(value)
    return value


def event_to_dict(event: TraceEvent, **extra: Any) -> dict:
    """Serialize one event, dropping ``None`` fields; ``extra`` keys (e.g.
    a run label when several runs share one file) are merged in."""
    out: dict[str, Any] = {"t": event.t, "seq": event.seq,
                           "kind": event.kind, "tx": _jsonify(event.tx)}
    if event.key is not None:
        out["key"] = _jsonify(event.key)
    if event.mode is not None:
        out["mode"] = event.mode
    if event.ts is not None:
        out["ts"] = _jsonify(event.ts)
    if event.reason is not None:
        out["reason"] = event.reason
    if event.dur is not None:
        out["dur"] = event.dur
    if event.data:
        out["data"] = _jsonify(event.data)
    for k, v in extra.items():
        if v is not None:
            out[k] = _jsonify(v)
    return out


def event_from_dict(payload: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its JSONL line (extra keys are
    folded into ``data``)."""
    data = dict(_dejsonify(payload.get("data", {})) or {})
    for k, v in payload.items():
        if k not in ("t", "seq", "kind", "tx", "key", "mode", "ts",
                     "reason", "dur", "data"):
            data[k] = _dejsonify(v)
    return TraceEvent(
        t=payload["t"], seq=payload.get("seq", 0), kind=payload["kind"],
        tx=_dejsonify(payload["tx"]), key=_dejsonify(payload.get("key")),
        mode=payload.get("mode"), ts=_dejsonify(payload.get("ts")),
        reason=payload.get("reason"), dur=payload.get("dur"), data=data)


def write_trace_jsonl(events: Iterable[TraceEvent], path: str | Path, *,
                      append: bool = False, **extra: Any) -> Path:
    """Write ``events`` as JSONL; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a" if append else "w") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event, **extra),
                                separators=(",", ":")))
            fh.write("\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    events = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def write_metrics_json(metrics: "MetricsRegistry | dict",
                       path: str | Path) -> Path:
    """Persist a metrics registry (or a pre-built dict) as a JSON sidecar."""
    payload = (metrics.as_dict() if isinstance(metrics, MetricsRegistry)
               else metrics)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonify(payload), indent=2))
    return path


def read_metrics_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def metrics_sidecar_path(results_json: str | Path) -> Path:
    """``fig1.json -> fig1.metrics.json`` (next to the results file)."""
    results_json = Path(results_json)
    return results_json.with_suffix(".metrics.json")


def trace_sidecar_path(results_json: str | Path) -> Path:
    """``fig1.json -> fig1.trace.jsonl`` (next to the results file)."""
    results_json = Path(results_json)
    return results_json.with_suffix(".trace.jsonl")
