"""Command-line observability reports.

Usage::

    python -m repro.obs report  trace.jsonl [--top 15]
    python -m repro.obs metrics fig1.metrics.json

``report`` folds a JSONL trace into the contention profile and prints the
abort-reason breakdown, the top-N hot-key table, and the time-in-phase
attribution.  ``metrics`` pretty-prints a metrics sidecar.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import read_metrics_json, read_trace_jsonl
from .profile import ContentionProfile


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    events = read_trace_jsonl(path)
    profile = ContentionProfile.from_events(events)
    print(f"trace: {path} ({len(events)} events)")
    print(profile.format_report(top=args.top))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    path = Path(args.metrics)
    if not path.exists():
        print(f"error: no such metrics file: {path}", file=sys.stderr)
        return 2
    print(json.dumps(read_metrics_json(path), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces and metrics emitted by repro runs.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="print the contention report for a JSONL trace")
    report.add_argument("trace", help="path to a .trace.jsonl file")
    report.add_argument("--top", type=int, default=10,
                        help="rows in the hot-key table (default 10)")
    report.set_defaults(fn=_cmd_report)

    metrics = sub.add_parser(
        "metrics", help="pretty-print a metrics sidecar JSON")
    metrics.add_argument("metrics", help="path to a .metrics.json file")
    metrics.set_defaults(fn=_cmd_metrics)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
