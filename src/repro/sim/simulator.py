"""Discrete-event simulation kernel.

The paper's evaluation ran a C++/Thrift prototype on physical testbeds; this
substrate replaces machines, threads and wires with a deterministic event
loop (see DESIGN.md §2 for why this substitution preserves the phenomena the
figures measure).  The kernel is deliberately tiny:

* :class:`Simulator` — a time-ordered event heap with ``schedule`` / ``run``;
* :class:`Process` — a generator-coroutine driven by the simulator; client
  logic is written as ordinary sequential code that ``yield``s effects;
* effects — :class:`Sleep`, :class:`Recv` (on a :class:`Mailbox`, with
  optional timeout), :class:`WaitEvent` on a :class:`SimEvent`.

Servers do not need coroutines: they are message-driven state machines (see
:mod:`repro.dist.server`) invoked as plain callbacks.

Determinism: events at equal times fire in schedule order (a monotone
sequence number breaks ties), and all randomness comes from
:class:`repro.sim.rng.RngFactory`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generator

__all__ = ["Simulator", "Process", "Mailbox", "SimEvent", "Sleep", "Recv",
           "WaitEvent", "RECV_TIMEOUT"]


class _TimeoutSentinel:
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "RECV_TIMEOUT"


#: Returned by a timed-out ``Recv``.
RECV_TIMEOUT = _TimeoutSentinel()


@dataclass(unsafe_hash=True, slots=True)
class Sleep:
    """Effect: resume the process after ``delay`` simulated seconds."""

    delay: float


@dataclass(unsafe_hash=True, slots=True)
class Recv:
    """Effect: resume with the next message from ``mailbox``.

    With a ``timeout``, resumes with :data:`RECV_TIMEOUT` if nothing arrives
    in time.
    """

    mailbox: "Mailbox"
    timeout: float | None = None


@dataclass(unsafe_hash=True, slots=True)
class WaitEvent:
    """Effect: resume (with the event's value) once ``event`` is set."""

    event: "SimEvent"


class Simulator:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries are (time, seq, fn, args).  seq is unique, so tuple
        # comparison is settled before ever reaching fn/args — callables and
        # arbitrary payloads need not be comparable.
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self.events_processed: int = 0

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + delay, seq, fn, args))

    def spawn(self, gen: Generator[Any, Any, Any],
              name: str = "proc") -> "Process":
        """Start a coroutine process; its first step runs at the current time."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self.schedule(0.0, proc._step, None)
        return proc

    # -- running -----------------------------------------------------------

    def run_until(self, t_end: float) -> None:
        """Process events up to and including time ``t_end``."""
        heap = self._heap
        pop = heappop
        fired = 0
        while heap and heap[0][0] <= t_end:
            when, _seq, fn, args = pop(heap)
            self.now = when
            fn(*args)
            fired += 1
        self.events_processed += fired
        if self.now < t_end:
            self.now = t_end

    def run(self, max_events: int | None = None) -> None:
        """Run until the event heap drains (or ``max_events`` fired)."""
        fired = 0
        heap = self._heap
        pop = heappop
        try:
            while heap:
                when, _seq, fn, args = pop(heap)
                self.now = when
                fn(*args)
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
        finally:
            self.events_processed += fired

    @property
    def pending_events(self) -> int:
        return len(self._heap)


class Process:
    """A generator coroutine driven by the simulator.

    The generator yields effect objects (:class:`Sleep`, :class:`Recv`,
    :class:`WaitEvent`) and is resumed with the effect's result.  Exceptions
    raised by the generator propagate out of the event loop — a crashing
    process is a bug, not a simulated failure (simulated crashes are modelled
    explicitly, by stopping message delivery).
    """

    __slots__ = ("sim", "name", "_gen", "done", "_cancelled")

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any],
                 name: str) -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self.done = False
        self._cancelled = False

    def cancel(self) -> None:
        """Stop the process; it never resumes (models a client crash)."""
        self._cancelled = True
        self.done = True

    def _step(self, value: Any) -> None:
        if self.done:
            return
        try:
            effect = self._gen.send(value)
        except StopIteration:
            self.done = True
            return
        self._register(effect)

    def _register(self, effect: Any) -> None:
        # Exact-type dispatch first (the effect classes are final in
        # practice); isinstance only on the cold fallback path.
        cls = effect.__class__
        if cls is Recv:
            effect.mailbox._register(self, effect.timeout)
        elif cls is Sleep:
            self.sim.schedule(effect.delay, self._step, None)
        elif cls is WaitEvent:
            effect.event._register(self)
        elif isinstance(effect, Sleep):
            self.sim.schedule(effect.delay, self._step, None)
        elif isinstance(effect, Recv):
            effect.mailbox._register(self, effect.timeout)
        elif isinstance(effect, WaitEvent):
            effect.event._register(self)
        else:
            raise TypeError(f"process {self.name} yielded non-effect "
                            f"{effect!r}")


class Mailbox:
    """A FIFO message queue a process can ``Recv`` on.

    At most one process may wait at a time (each client owns its mailbox).
    A waiting ``Recv`` with a timeout is guarded by a *wait token*: the token
    advances whenever the wait ends (message or new registration), so a
    stale timer from an earlier ``Recv`` can never interrupt a later one.
    """

    __slots__ = ("sim", "_queue", "_waiter", "_wait_token")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # deque: a backlogged mailbox drains from the left once per Recv,
        # and list.pop(0) is O(n) exactly when the backlog is deep.
        self._queue: deque[Any] = deque()
        self._waiter: Process | None = None
        self._wait_token = 0

    def deliver(self, msg: Any) -> None:
        """Enqueue ``msg``; wakes the waiting process, if any."""
        if self._waiter is not None:
            proc = self._waiter
            self._waiter = None
            self._wait_token += 1  # invalidate any pending timeout
            self.sim.schedule(0.0, proc._step, msg)
        else:
            self._queue.append(msg)

    def _register(self, proc: Process, timeout: float | None) -> None:
        if self._queue:
            self.sim.schedule(0.0, proc._step, self._queue.popleft())
            return
        if self._waiter is not None:
            raise RuntimeError("mailbox already has a waiting process")
        self._waiter = proc
        self._wait_token += 1
        if timeout is not None:
            # Bound method + args instead of a per-Recv closure: RPC-heavy
            # clients register a timed Recv per reply awaited.
            self.sim.schedule(timeout, self._on_timeout, proc,
                              self._wait_token)

    def _on_timeout(self, proc: Process, token: int) -> None:
        if self._waiter is proc and self._wait_token == token:
            self._waiter = None
            self._wait_token += 1
            proc._step(RECV_TIMEOUT)

    def __len__(self) -> int:
        return len(self._queue)


class SimEvent:
    """A one-shot event processes can wait on (commitment decisions etc.)."""

    __slots__ = ("sim", "_set", "value", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._set = False
        self.value: Any = None
        self._waiters: list[Process] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        """Set the event (idempotent; later calls are ignored)."""
        if self._set:
            return
        self._set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, proc._step, value)

    def _register(self, proc: Process) -> None:
        if self._set:
            self.sim.schedule(0.0, proc._step, self.value)
        else:
            self._waiters.append(proc)
