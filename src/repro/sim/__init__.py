"""Deterministic discrete-event simulation substrate.

Replaces the paper's physical testbeds (§8.2) with a reproducible event
loop: coroutine client processes, message-driven servers behind service
queues, and a lognormal-latency network.  See DESIGN.md §2 for the
substitution rationale.
"""

from .network import LatencyModel, LinkFaults, Network
from .rng import RngFactory
from .server_queue import ServiceQueue
from .simulator import (RECV_TIMEOUT, Mailbox, Process, Recv, SimEvent,
                        Simulator, Sleep, WaitEvent)
from .testbed import CLOUD_TESTBED, LOCAL_TESTBED, TestbedProfile

__all__ = [
    "Simulator", "Process", "Mailbox", "SimEvent",
    "Sleep", "Recv", "WaitEvent", "RECV_TIMEOUT",
    "Network", "LatencyModel", "LinkFaults", "ServiceQueue", "RngFactory",
    "TestbedProfile", "LOCAL_TESTBED", "CLOUD_TESTBED",
]
