"""Testbed profiles (§8.2): the local and the cloud environments.

The paper uses two test beds:

* **local** — three dedicated multi-socket servers (4x12-core E7, 2x10-core
  E5, 4x12-core Opteron) on a 1 Gbps LAN: low latency, lots of CPU headroom;
* **cloud** — several hundred EC2 t2.micro instances (1 vCPU each): higher
  and less predictable network latency, scarce processing power.

A profile bundles the simulation parameters that stand in for those
machines.  The absolute values are calibrated so that simulated throughput
lands in the paper's ballpark (thousands of transactions/second); what the
experiments actually compare — protocol-induced aborts and waiting — depends
only on the *ratios* between latency, service time and transaction length,
which mirror the real testbeds (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .network import LatencyModel

__all__ = ["TestbedProfile", "LOCAL_TESTBED", "CLOUD_TESTBED"]


@dataclass(frozen=True)
class TestbedProfile:
    """Simulation parameters describing one hardware environment."""

    name: str
    #: One-way network latency between clients and servers.
    latency: LatencyModel
    #: Mean CPU time a server spends on one request (lock/version work).
    service_time: float
    #: Parallel service slots per server (cores available to the server).
    server_concurrency: int
    #: Default number of storage servers (§8.3).
    num_servers: int
    #: Client-side think time between operations (request marshalling etc.).
    client_overhead: float
    #: Purge-service period K: versions older than now-K may be purged (§8.1).
    gc_horizon: float
    #: Per-client fixed clock offset bound (clocks are NOT assumed
    #: synchronized; each client's clock is off by a fixed draw from
    #: [-skew, +skew]).
    clock_skew: float

    def with_servers(self, n: int) -> "TestbedProfile":
        return replace(self, num_servers=n)


# Service times are calibrated so that aggregate server capacity saturates
# near the paper's throughput ceilings for 20-op transactions:
#   local: 3 servers x (8 / 0.35ms) ~ 68k ops/s ~ 3.4k txs/s  (Fig. 1)
#   cloud: 8 servers x (1 / 0.2ms)  ~ 40k ops/s ~ 2.0k txs/s  (Fig. 2)
# The per-request cost includes RPC dispatch, hash-table + skip-list work
# and latching — hundreds of microseconds in the Thrift-based prototype.
# The cloud figure is set low enough that its 1-vCPU servers are genuinely
# CPU-bound at the paper's client counts ("resources are scarce", §8.4.1):
# that scarcity is what converts the baselines' wasted work (MVTO+ restart
# re-execution, 2PL lock waits) into the throughput gap of Figure 2.

#: The dedicated-hardware testbed: 1 Gbps LAN (~100 us one-way), fat servers.
LOCAL_TESTBED = TestbedProfile(
    name="local",
    latency=LatencyModel.from_mean(120e-6, cv=0.25),
    service_time=350e-6,
    server_concurrency=8,
    num_servers=3,
    client_overhead=20e-6,
    gc_horizon=15.0,
    clock_skew=200e-6,
)

#: The public-cloud testbed: virtualized network (heavier tail), 1 vCPU.
CLOUD_TESTBED = TestbedProfile(
    name="cloud",
    latency=LatencyModel.from_mean(700e-6, cv=0.8),
    service_time=200e-6,
    server_concurrency=1,
    num_servers=8,
    client_overhead=40e-6,
    gc_horizon=60.0,
    clock_skew=2e-3,
)
