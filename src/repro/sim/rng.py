"""Deterministic randomness for the simulation substrate.

Every stochastic element of a simulated experiment — network latencies,
workload key choices, clock jitter — draws from numpy Generators derived
from a single root seed through ``SeedSequence.spawn``.  A run is therefore
a pure function of (parameters, seed): re-running reproduces the same
event sequence bit-for-bit, which the regression tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Hands out independent, reproducible random streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self) -> np.random.Generator:
        """A fresh independent generator (deterministic in spawn order)."""
        (child,) = self._root.spawn(1)
        return np.random.default_rng(child)

    def streams(self, n: int) -> list[np.random.Generator]:
        return [np.random.default_rng(c) for c in self._root.spawn(n)]
