"""Simulated message-passing network.

Models the wire between clients and storage servers: each ``send`` delivers
the message to the destination after a sampled one-way latency.  Latencies
are lognormal — a good first-order fit for both switched LANs (low mean, low
variance) and virtualized cloud networks (higher mean, heavy tail), the two
environments of §8.2.  Message loss is not modelled (the paper's evaluation
uses TCP/Thrift); *crash* failures are modelled by unregistering a node, after
which messages to it vanish — exactly how a crashed process looks to others
in an asynchronous system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from .simulator import Simulator

__all__ = ["LatencyModel", "Network"]


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal one-way latency: ``exp(N(mu, sigma))`` seconds.

    Use :meth:`from_mean` to specify by mean/jitter instead of log-space
    parameters.
    """

    mu: float
    sigma: float

    @classmethod
    def from_mean(cls, mean: float, cv: float = 0.2) -> "LatencyModel":
        """Build from the desired mean and coefficient of variation.

        For a lognormal, ``mean = exp(mu + sigma^2/2)`` and
        ``cv^2 = exp(sigma^2) - 1``.
        """
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return cls(float(mu), float(np.sqrt(sigma2)))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


class Network:
    """Routes messages between registered nodes with sampled latency.

    Delivery is FIFO per ``(src, dst)`` pair, like the TCP connections the
    paper's Thrift transport rides on: a later send between the same two
    nodes never overtakes an earlier one.  (The distributed commit path
    relies on this the same way the prototype does — e.g. a freeze-write
    message reaching a server before the follow-up GC message.)
    """

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 rng: np.random.Generator) -> None:
        self.sim = sim
        self.latency = latency
        self._rng = rng
        self._nodes: dict[Hashable, Callable[[Any], None]] = {}
        self._last_arrival: dict[tuple[Hashable, Hashable], float] = {}
        self.messages_sent = 0

    def register(self, node_id: Hashable,
                 deliver: Callable[[Any], None]) -> None:
        """Attach a node; ``deliver(msg)`` is invoked for each arrival."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = deliver

    def unregister(self, node_id: Hashable) -> None:
        """Detach a node (crash): in-flight and future messages are dropped."""
        self._nodes.pop(node_id, None)

    def is_up(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def send(self, dst: Hashable, msg: Any,
             src: Hashable | None = None) -> None:
        """Deliver ``msg`` to ``dst`` after a sampled one-way latency.

        Pass ``src`` to get FIFO ordering with earlier sends on the same
        (src, dst) connection.  Sends to unknown/crashed destinations are
        silently dropped (the asynchronous-system view of a crashed
        process).
        """
        self.messages_sent += 1
        delay = self.latency.sample(self._rng)
        arrival = self.sim.now + delay
        if src is not None:
            conn = (src, dst)
            prev = self._last_arrival.get(conn, 0.0)
            if arrival < prev:
                arrival = prev  # FIFO: do not overtake the previous message
            self._last_arrival[conn] = arrival
        self.sim.schedule(arrival - self.sim.now, self._deliver, dst, msg)

    def _deliver(self, dst: Hashable, msg: Any) -> None:
        deliver = self._nodes.get(dst)
        if deliver is not None:
            deliver(msg)
