"""Simulated message-passing network.

Models the wire between clients and storage servers: each ``send`` delivers
the message to the destination after a sampled one-way latency.  Latencies
are lognormal — a good first-order fit for both switched LANs (low mean, low
variance) and virtualized cloud networks (higher mean, heavy tail), the two
environments of §8.2.

Beyond latency, links can be given a :class:`LinkFaults` model — independent
per-message probabilities of loss, duplication and delay spikes, all sampled
from a dedicated seeded RNG stream so a faulty run is exactly reproducible.
The paper's evaluation uses TCP/Thrift and never loses messages; the fault
models exist to exercise the §7/§H recovery paths (write-lock timeouts,
commitment objects, client retry) that TCP merely hides.  *Crash* failures
are modelled by unregistering a node, after which messages to it vanish —
exactly how a crashed process looks to others in an asynchronous system.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Hashable

import numpy as np

from .simulator import Simulator

__all__ = ["LatencyModel", "LinkFaults", "Network"]

#: Latency draws block-sampled per generator call (see Network.__init__).
LAT_POOL = 256


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal one-way latency: ``exp(N(mu, sigma))`` seconds.

    Use :meth:`from_mean` to specify by mean/jitter instead of log-space
    parameters.
    """

    mu: float
    sigma: float

    @classmethod
    def from_mean(cls, mean: float, cv: float = 0.2) -> "LatencyModel":
        """Build from the desired mean and coefficient of variation.

        For a lognormal, ``mean = exp(mu + sigma^2/2)`` and
        ``cv^2 = exp(sigma^2) - 1``.
        """
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return cls(float(mu), float(np.sqrt(sigma2)))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities for a link (or the whole network).

    Each message independently: is dropped with probability ``loss``; is
    delivered twice with probability ``duplicate`` (the second copy takes an
    independently sampled latency and ignores FIFO ordering — exactly the
    retransmit-reordering hazard request-id deduplication must absorb); has
    its latency multiplied by ``spike_factor`` with probability
    ``delay_spike`` (a congestion burst; FIFO ordering still applies, so a
    spike delays everything behind it on the same connection, like TCP
    head-of-line blocking).
    """

    loss: float = 0.0
    duplicate: float = 0.0
    delay_spike: float = 0.0
    spike_factor: float = 10.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "delay_spike"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.spike_factor < 1.0:
            raise ValueError("spike_factor must be >= 1")

    @property
    def any(self) -> bool:
        return bool(self.loss or self.duplicate or self.delay_spike)


class Network:
    """Routes messages between registered nodes with sampled latency.

    Delivery is FIFO per ``(src, dst)`` pair, like the TCP connections the
    paper's Thrift transport rides on: a later send between the same two
    nodes never overtakes an earlier one.  (The distributed commit path
    relies on this the same way the prototype does — e.g. a freeze-write
    message reaching a server before the follow-up GC message.)  Fault
    models (:meth:`set_default_faults` / :meth:`set_link_faults`) weaken
    this: lost messages never arrive and duplicated copies may arrive out
    of order.
    """

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 rng: np.random.Generator, *,
                 fault_rng: np.random.Generator | None = None) -> None:
        self.sim = sim
        self.latency = latency
        # Cached log-space parameters: the per-message fast path samples the
        # lognormal directly instead of going through LatencyModel.sample
        # (same generator call, same arguments — identical draws).
        self._lat_mu = latency.mu
        self._lat_sigma = latency.sigma
        self._rng = rng
        # Latency draws are block-sampled: one generator call refills this
        # pool with LAT_POOL lognormal draws, and sends consume it by index.
        # numpy's Generator produces bit-identical values for a size-N block
        # and N sequential single draws, so consuming the pool in order is
        # byte-identical to the unbatched code — provided nothing else
        # interleaves draws on the same stream.  That holds whenever the
        # fault model has its own stream (``fault_rng``) or no fault model
        # is installed; the one exception (faults sharing the latency
        # stream) falls back to single draws and never touches the pool.
        self._lat_pool: list[float] = []
        self._lat_i = 0
        #: RNG for fault sampling; separate from the latency stream so
        #: installing a fault model never perturbs the latency draws of the
        #: messages that do get through.
        self._fault_rng = fault_rng
        self._nodes: dict[Hashable, Callable[[Any], None]] = {}
        self._last_arrival: dict[tuple[Hashable, Hashable], float] = {}
        self._default_faults: LinkFaults | None = None
        self._link_faults: dict[tuple[Hashable, Hashable], LinkFaults] = {}
        #: True once any fault model is installed; the fault-free send path
        #: checks this single flag instead of doing a per-message lookup.
        self._have_faults = False
        self.messages_sent = 0
        self.messages_lost = 0
        self.messages_duplicated = 0
        self.delay_spikes = 0

    # -- fault model -------------------------------------------------------

    def set_default_faults(self, faults: LinkFaults | None) -> None:
        """Apply ``faults`` to every link without a per-link override."""
        self._default_faults = faults
        self._have_faults = (self._default_faults is not None
                             or bool(self._link_faults))

    def set_link_faults(self, src: Hashable, dst: Hashable,
                        faults: LinkFaults | None) -> None:
        """Apply ``faults`` to the directed link ``src -> dst`` only."""
        if faults is None:
            self._link_faults.pop((src, dst), None)
        else:
            self._link_faults[(src, dst)] = faults
        self._have_faults = (self._default_faults is not None
                             or bool(self._link_faults))

    def _faults_for(self, src: Hashable | None,
                    dst: Hashable) -> LinkFaults | None:
        if self._link_faults:
            faults = self._link_faults.get((src, dst))
            if faults is not None:
                return faults
        return self._default_faults

    # -- membership --------------------------------------------------------

    def register(self, node_id: Hashable,
                 deliver: Callable[[Any], None]) -> None:
        """Attach a node; ``deliver(msg)`` is invoked for each arrival."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        self._nodes[node_id] = deliver

    def unregister(self, node_id: Hashable) -> None:
        """Detach a node (crash): in-flight and future messages are dropped.

        The node's FIFO arrival floors are cleared on both directions: a
        restarted node re-registering under the same identity starts fresh
        connections, so its first messages must not inherit the pre-crash
        arrival floor (which could be arbitrarily far in the future after a
        delay spike).
        """
        self._nodes.pop(node_id, None)
        for conn in [c for c in self._last_arrival
                     if c[0] == node_id or c[1] == node_id]:
            del self._last_arrival[conn]

    def is_up(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    # -- transport ---------------------------------------------------------

    def send(self, dst: Hashable, msg: Any,
             src: Hashable | None = None) -> None:
        """Deliver ``msg`` to ``dst`` after a sampled one-way latency.

        Pass ``src`` to get FIFO ordering with earlier sends on the same
        (src, dst) connection.  Sends to unknown/crashed destinations are
        silently dropped (the asynchronous-system view of a crashed
        process).  When a fault model covers the link, the message may be
        lost, duplicated, or hit by a delay spike.
        """
        self.messages_sent += 1
        sim = self.sim
        if not self._have_faults:
            # Fault-free fast path: no link lookup, latency served from the
            # block-sampled pool (identical draws to per-message sampling).
            i = self._lat_i
            pool = self._lat_pool
            if i >= len(pool):
                pool = self._lat_pool = self._rng.lognormal(
                    self._lat_mu, self._lat_sigma, LAT_POOL).tolist()
                i = 0
            self._lat_i = i + 1
            now = sim.now
            arrival = now + pool[i]
            if src is not None:
                conn = (src, dst)
                prev = self._last_arrival.get(conn, 0.0)
                if arrival < prev:
                    arrival = prev  # FIFO: do not overtake earlier messages
                self._last_arrival[conn] = arrival
            # Inlined sim.schedule(arrival - now, ...): one delivery per
            # message makes the call overhead measurable.  The event time
            # MUST stay ``now + (arrival - now)`` — schedule() computes
            # that, and it is not the same float as ``arrival``.
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._heap,
                     (now + (arrival - now), seq, self._deliver, (dst, msg)))
            return
        faults = self._faults_for(src, dst)
        duplicated = False
        if faults is not None and faults.any:
            rng = self._fault_rng if self._fault_rng is not None else self._rng
            if faults.loss and rng.random() < faults.loss:
                self.messages_lost += 1
                return
            if faults.duplicate and rng.random() < faults.duplicate:
                duplicated = True
            delay = self._next_latency()
            if faults.delay_spike and rng.random() < faults.delay_spike:
                self.delay_spikes += 1
                delay *= faults.spike_factor
        else:
            delay = self._next_latency()
        arrival = self.sim.now + delay
        if src is not None:
            conn = (src, dst)
            prev = self._last_arrival.get(conn, 0.0)
            if arrival < prev:
                arrival = prev  # FIFO: do not overtake the previous message
            self._last_arrival[conn] = arrival
        self.sim.schedule(arrival - self.sim.now, self._deliver, dst, msg)
        if duplicated:
            # The duplicate rides outside the FIFO floor: it models a
            # retransmitted datagram and may overtake later sends.
            self.messages_duplicated += 1
            extra = self._next_latency()
            self.sim.schedule(extra, self._deliver, dst, msg)

    def _next_latency(self) -> float:
        """One lognormal latency draw, pooled when the pool is sound.

        Fault probability draws share the latency stream only when no
        dedicated ``fault_rng`` was given; block-sampling would then reorder
        the interleaved draws, so that configuration samples singly.
        """
        if self._have_faults and self._fault_rng is None:
            return float(self._rng.lognormal(self._lat_mu, self._lat_sigma))
        i = self._lat_i
        pool = self._lat_pool
        if i >= len(pool):
            pool = self._lat_pool = self._rng.lognormal(
                self._lat_mu, self._lat_sigma, LAT_POOL).tolist()
            i = 0
        self._lat_i = i + 1
        return pool[i]

    def _deliver(self, dst: Hashable, msg: Any) -> None:
        deliver = self._nodes.get(dst)
        if deliver is not None:
            deliver(msg)
