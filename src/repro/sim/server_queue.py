"""Server CPU model: a k-slot service queue with overload control.

The paper's two testbeds differ most in *processing headroom*: the local
testbed has multi-socket Xeons ("servers are multi-threaded, with hundreds of
threads"), the cloud testbed runs on 1-vCPU t2.micro instances where
"resources are scarce" — and that scarcity is why MVTIL's efficiency
advantage (fewer aborts than MVTO+, less waiting than 2PL) translates into
~2x throughput there (§8.4.1).

We model each server's CPU as ``concurrency`` service slots with a per-request
service time.  Incoming requests queue for a slot, occupy it for the
sampled service time, then the protocol handler runs (instantaneous: its cost
IS the service time) and replies are sent.  A request that must wait for a
lock is *parked* by the handler — it releases its slot without consuming more
CPU (the prototype's blocked threads), and is re-enqueued when the lock state
changes.

Overload control (opt-in via ``capacity``): the queue holds two priority
classes — critical (class 0, served first) and normal (class 1) — FIFO
within each class.  When the queue is full, the *newest normal* is shed: a
normal arrival is rejected outright, a critical arrival instead evicts the
most recently queued normal.  Criticals are never shed — the distributed
analogue of MVTL-Prio's Theorem 3 (critical transactions are never aborted
by normal ones); an all-critical queue may therefore exceed ``capacity``.
Shed requests are handed to ``shed_fn`` so the server can send an explicit
OVERLOADED reply instead of silently parking work it will never finish.
Requests whose deadline has already passed when they reach the head of the
queue are dropped before consuming a slot (``expired_fn``): stale work is
the cheapest work to shed — its client has already given up.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable

import numpy as np

from .simulator import Simulator

__all__ = ["ServiceQueue"]


class ServiceQueue:
    """Two-class priority queue in front of ``concurrency`` service slots."""

    def __init__(self, sim: Simulator, service_time: float,
                 concurrency: int, rng: np.random.Generator,
                 handler: Callable[[Any], None],
                 service_time_fn: Callable[[], float] | None = None, *,
                 capacity: int | None = None,
                 class_fn: Callable[[Any], int] | None = None,
                 shed_fn: Callable[[Any], None] | None = None,
                 expired_fn: Callable[[Any], bool] | None = None) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.sim = sim
        self.service_time = service_time
        self.concurrency = concurrency
        self._rng = rng
        self._handler = handler
        #: Optional dynamic mean service time, called with the request
        #: about to be served: lets cost depend on the request type (a data
        #: read with its skip-list search vs a cheap freeze/release
        #: notification) and on state size (which is what degrades
        #: throughput when GC is off — Fig. 7).  Falls back to the fixed
        #: ``service_time``.
        self.service_time_fn = service_time_fn
        #: Bound on queued (not in-service) requests; None = unbounded FIFO,
        #: the pre-overload-control behaviour.  Only normal-class work is
        #: bounded: criticals and protocol control messages are never shed.
        self.capacity = capacity
        #: Maps a request to its class: 0 = critical (never shed, served
        #: first), 1 = normal (sheddable).  None = everything is normal.
        self._class_fn = class_fn
        #: Receives each shed request (so the owner can reply OVERLOADED).
        self._shed_fn = shed_fn
        #: True if the request's deadline has passed; checked when the
        #: request reaches the head of the queue, before it takes a slot.
        self._expired_fn = expired_fn
        #: (critical, normal) — deque for O(1) popleft at the deep-queue
        #: moments a bounded queue is built for (list.pop(0) is O(n)).
        self._queues: tuple[deque, deque] = (deque(), deque())
        # Pool of standard-exponential draws, refilled one block per
        # generator call.  ``rng.exponential(mean)`` is exactly
        # ``mean * rng.standard_exponential()`` (numpy scales the same
        # unit draw), and a size-N block equals N sequential single draws
        # bit-for-bit, so pooled consumption reproduces the unbatched
        # stream exactly.  The rng is this queue's own stream — nothing
        # else draws from it — so prefetching cannot reorder anything.
        self._exp_pool: list[float] = []
        self._exp_i = 0
        self._busy = 0
        self._generation = 0
        self.requests_served = 0
        self.requests_shed = 0
        self.requests_expired = 0
        self.busy_time = 0.0

    def _class_of(self, request: Any) -> int:
        if self._class_fn is None:
            return 1
        return 0 if self._class_fn(request) == 0 else 1

    def submit(self, request: Any) -> None:
        """Enqueue a request for processing, shedding on overflow."""
        cls = self._class_of(request)
        if (self.capacity is not None
                and self.queue_length >= self.capacity):
            critical_q, normal_q = self._queues
            if cls == 1:
                # Reject the newest normal: the arrival itself.
                self._shed(request)
                return
            if normal_q:
                # A critical arrival displaces the most recently queued
                # normal — criticals are admitted even at capacity.
                self._shed(normal_q.pop())
            # else: the queue is all-critical; overflow by this one
            # critical rather than shed it (Theorem 3 invariant).
        self._queues[cls].append(request)
        self._dispatch()

    def _shed(self, request: Any) -> None:
        self.requests_shed += 1
        if self._shed_fn is not None:
            self._shed_fn(request)

    def drop_pending(self) -> None:
        """Discard all queued *and in-service* work (server crash).

        Requests already occupying a slot still release it at their
        scheduled completion time, but their handler never runs: a crashed
        CPU finishes nothing.
        """
        for q in self._queues:
            q.clear()
        self._generation += 1

    def _dispatch(self) -> None:
        critical_q, normal_q = self._queues
        sim = self.sim
        while self._busy < self.concurrency:
            if critical_q:
                request = critical_q.popleft()
            elif normal_q:
                request = normal_q.popleft()
            else:
                break
            if self._expired_fn is not None and self._expired_fn(request):
                # Deadline already passed: the client has moved on, so the
                # cheapest thing to do with this work is nothing at all.
                self.requests_expired += 1
                continue
            self._busy += 1
            # Exponential service time with the configured mean: the classic
            # M/M/k shape; the protocol handler runs when service completes.
            mean = (self.service_time_fn(request)
                    if self.service_time_fn is not None
                    else self.service_time)
            i = self._exp_i
            pool = self._exp_pool
            if i >= len(pool):
                pool = self._exp_pool = (
                    self._rng.standard_exponential(256).tolist())
                i = 0
            self._exp_i = i + 1
            duration = mean * pool[i]
            self.requests_served += 1
            self.busy_time += duration
            # Inlined sim.schedule(duration, self._complete, ...): every
            # served request passes through here once.
            seq = sim._seq
            sim._seq = seq + 1
            heappush(sim._heap, (sim.now + duration, seq, self._complete,
                                 (request, self._generation)))

    def _complete(self, request: Any, generation: int = 0) -> None:
        self._busy -= 1
        try:
            if generation == self._generation:
                self._handler(request)
        finally:
            self._dispatch()

    @property
    def queue_length(self) -> int:
        return len(self._queues[0]) + len(self._queues[1])

    @property
    def critical_queue_length(self) -> int:
        return len(self._queues[0])

    @property
    def busy_slots(self) -> int:
        return self._busy
