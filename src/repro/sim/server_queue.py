"""Server CPU model: a k-slot service queue.

The paper's two testbeds differ most in *processing headroom*: the local
testbed has multi-socket Xeons ("servers are multi-threaded, with hundreds of
threads"), the cloud testbed runs on 1-vCPU t2.micro instances where
"resources are scarce" — and that scarcity is why MVTIL's efficiency
advantage (fewer aborts than MVTO+, less waiting than 2PL) translates into
~2x throughput there (§8.4.1).

We model each server's CPU as ``concurrency`` service slots with a per-request
service time.  Incoming requests queue FIFO for a slot, occupy it for the
sampled service time, then the protocol handler runs (instantaneous: its cost
IS the service time) and replies are sent.  A request that must wait for a
lock is *parked* by the handler — it releases its slot without consuming more
CPU (the prototype's blocked threads), and is re-enqueued when the lock state
changes.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .simulator import Simulator

__all__ = ["ServiceQueue"]


class ServiceQueue:
    """FIFO queue in front of ``concurrency`` service slots."""

    def __init__(self, sim: Simulator, service_time: float,
                 concurrency: int, rng: np.random.Generator,
                 handler: Callable[[Any], None],
                 service_time_fn: Callable[[], float] | None = None) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.sim = sim
        self.service_time = service_time
        self.concurrency = concurrency
        self._rng = rng
        self._handler = handler
        #: Optional dynamic mean service time, called with the request
        #: about to be served: lets cost depend on the request type (a data
        #: read with its skip-list search vs a cheap freeze/release
        #: notification) and on state size (which is what degrades
        #: throughput when GC is off — Fig. 7).  Falls back to the fixed
        #: ``service_time``.
        self.service_time_fn = service_time_fn
        self._queue: list[Any] = []
        self._busy = 0
        self._generation = 0
        self.requests_served = 0
        self.busy_time = 0.0

    def submit(self, request: Any) -> None:
        """Enqueue a request for processing."""
        self._queue.append(request)
        self._dispatch()

    def drop_pending(self) -> None:
        """Discard all queued *and in-service* work (server crash).

        Requests already occupying a slot still release it at their
        scheduled completion time, but their handler never runs: a crashed
        CPU finishes nothing.
        """
        self._queue.clear()
        self._generation += 1

    def _dispatch(self) -> None:
        while self._busy < self.concurrency and self._queue:
            request = self._queue.pop(0)
            self._busy += 1
            # Exponential service time with the configured mean: the classic
            # M/M/k shape; the protocol handler runs when service completes.
            mean = (self.service_time_fn(request)
                    if self.service_time_fn is not None
                    else self.service_time)
            duration = float(self._rng.exponential(mean))
            self.requests_served += 1
            self.busy_time += duration
            self.sim.schedule(duration, self._complete, request,
                              self._generation)

    def _complete(self, request: Any, generation: int = 0) -> None:
        self._busy -= 1
        try:
            if generation == self._generation:
                self._handler(request)
        finally:
            self._dispatch()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy_slots(self) -> int:
        return self._busy
