"""Experiment grids: ordered (config x seed) cells with stable keys.

A :class:`Cell` pairs one :class:`~repro.dist.cluster.ClusterConfig` with a
stable, sortable grid key.  The key — not completion order — defines the
merge order of a parallel sweep, which is what makes ``--workers N``
byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..dist.cluster import ClusterConfig
from ..sim.testbed import LOCAL_TESTBED
from ..workload.generator import WorkloadConfig

__all__ = ["Cell", "derive_seeds", "failover_grid", "figure_grid",
           "policy_grid", "reference_cell", "scenario_grid",
           "selfheal_grid"]


@dataclass(frozen=True)
class Cell:
    """One grid cell: a stable key plus the config to run.

    ``key`` must be unique within a grid and orderable (tuples of
    str/int/float); it names the cell in merged results and BENCH output.

    ``run`` (``None`` = :func:`~repro.dist.cluster.run_cluster`) executes
    the cell; ``reduce``, when set, maps the raw result to the value
    shipped back from the worker.  Both must be top-level callables so the
    cell pickles under the spawn start method.  Cells whose raw result is
    not picklable (e.g. scenario runs, whose histories hold locks) **must**
    set ``reduce`` to a picklable summary — the harness fails the cell
    loudly otherwise instead of silently degrading to inline execution.
    """

    key: tuple
    #: Usually a ClusterConfig; cells with a custom ``run`` may carry any
    #: picklable config object their runner understands.
    config: Any
    run: Callable[[Any], Any] | None = None
    reduce: Callable[[Any], Any] | None = None

    @property
    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


def derive_seeds(root_seed: int, n: int) -> list[int]:
    """``n`` deterministic per-cell seeds derived from ``root_seed``.

    Uses the same ``SeedSequence`` spawning discipline as
    :class:`~repro.sim.rng.RngFactory` (children are deterministic in spawn
    order), so grids built from one root seed are reproducible regardless
    of worker count or scheduling.
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def _check_unique(cells: Sequence[Cell]) -> None:
    seen: set[tuple] = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate grid key {cell.key!r}")
        seen.add(cell.key)


def figure_grid(protocols: Sequence[str] = ("mvto", "2pl", "mvtil-early",
                                            "mvtil-late"),
                clients: Sequence[int] = (30, 150),
                seeds: Sequence[int] = (1, 2),
                measure: float = 1.5) -> list[Cell]:
    """The reference benchmark grid: a quick Figure-1-style sweep.

    Protocol x concurrency x seed on the local testbed — the same axes as
    the paper's Figure 1, sized so the quick grid finishes in minutes.
    Cells are emitted in key order.
    """
    base = ClusterConfig(
        profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=10_000, tx_size=20,
                                write_fraction=0.25),
        warmup=0.5, measure=measure)
    cells = [
        Cell(key=(proto, int(nc), int(seed)),
             config=replace(base, protocol=proto, num_clients=int(nc),
                            seed=int(seed)))
        for proto in protocols
        for nc in clients
        for seed in seeds
    ]
    _check_unique(cells)
    return cells


def failover_grid(seed: int = 1, measure: float = 2.5) -> list[Cell]:
    """The replication/failover grid behind the BENCH_6 record (repro.repl).

    Three cells over one seed and an identical workload: an unreplicated
    baseline (the replication overhead reference), a steady replicated
    cluster (r=3, WAL durability, follower reads), and the same replicated
    cluster with a leader crash injected mid-measurement.  Comparing the
    cells yields the replication overhead and the failover goodput dip;
    the failover cell's replication report carries the promotion latency
    and the zero-lost-commits audit.
    """
    from ..dist.failure import ChaosConfig
    base = ClusterConfig(
        protocol="mvtil-early",
        profile=replace(LOCAL_TESTBED, gc_horizon=1.0),
        workload=WorkloadConfig(num_keys=2_000, tx_size=4,
                                write_fraction=0.3),
        num_servers=3, num_clients=10, seed=int(seed),
        warmup=1.5, measure=measure, gc_period=0.2,
        write_lock_timeout=0.25, rpc_timeout=0.15)
    repl = replace(base, replication=3, durability="wal",
                   checkpoint_every=64, follower_reads=True,
                   record_history=True)
    cells = [
        Cell(key=("baseline", 1, int(seed)), config=base),
        Cell(key=("repl-steady", 3, int(seed)), config=repl),
        Cell(key=("repl-failover", 3, int(seed)),
             config=replace(repl, chaos=ChaosConfig(leader_crashes=1,
                                                    leader_downtime=0.6))),
    ]
    _check_unique(cells)
    return cells


def selfheal_grid(seed: int = 1, measure: float = 3.5) -> list[Cell]:
    """The self-healing replication grid behind the BENCH_9 record.

    Three cells, all replication factor 3 with WAL durability,
    anti-entropy sync, replica recruitment, reliable commit fan-out and
    lossy links, under compound chaos (one leader crash plus one follower
    restart mid-measurement):

    * ``selfheal`` — the reference self-healing cell (the bench
      ``python -m repro.bench selfheal`` runs the same shape): its
      replication report carries the resync latencies, recruitment log,
      refusal-reason breakdown and the zero-lost-commits audit;
    * ``scenario-chaos/bank-transfer`` — balance conservation must hold
      across the crashes and the membership change;
    * ``scenario-chaos/scan-vs-oltp`` — snapshot scans keep their
      monotonic-counter invariant while followers drop out of and re-earn
      servability.

    Cells carry full ClusterResults (histories + reports for the audits),
    which do not pickle — the ``--selfheal`` driver runs them in-process.
    """
    from ..dist.failure import ChaosConfig
    from ..sim.network import LinkFaults
    from ..workload.scenarios import scenario_config
    faults = LinkFaults(loss=0.03, duplicate=0.02, delay_spike=0.01)
    chaos = ChaosConfig(leader_crashes=1, leader_downtime=0.6,
                        follower_restarts=1, follower_downtime=0.3)
    healing = dict(num_servers=4, replication=3, durability="wal",
                   checkpoint_every=64, anti_entropy=True, recruitment=True,
                   reliable_fanout=True, sync_batch=1,
                   heartbeat_miss_limit=5, write_lock_timeout=0.25,
                   rpc_timeout=0.15, rpc_retries=3, faults=faults,
                   chaos=chaos)
    main = ClusterConfig(
        protocol="mvtil-early",
        profile=replace(LOCAL_TESTBED, gc_horizon=1.0),
        workload=WorkloadConfig(num_keys=2_000, tx_size=4,
                                write_fraction=0.3),
        num_clients=10, seed=int(seed),
        warmup=1.5, measure=measure, gc_period=0.2,
        follower_reads=True, record_history=True, **healing)
    cells = [
        Cell(key=("selfheal", 3, int(seed)), config=main),
        Cell(key=("scenario-chaos", "bank-transfer", int(seed)),
             config=scenario_config("bank-transfer", seed=int(seed),
                                    warmup=0.5, measure=2.5, **healing)),
        Cell(key=("scenario-chaos", "scan-vs-oltp", int(seed)),
             config=scenario_config("scan-vs-oltp", seed=int(seed),
                                    measure=2.5, **healing)),
    ]
    _check_unique(cells)
    return cells


def scenario_grid(seed: int = 1) -> list[Cell]:
    """The workload-zoo grid behind the BENCH_7 record.

    One cell per registered scenario, all at the same seed, each running
    its reference cluster config (``scenario_config``): the bench record
    pins every scenario's committed/aborted counts, generated mix and
    invariant status as one reproducible point.

    Scenario results hold full histories (locks — not picklable), so the
    cells reduce to :class:`~repro.workload.scenarios.ScenarioCellSummary`
    in the worker: invariants and theorem duels run per-cell, which also
    parallelizes them under ``--workers N``.
    """
    from ..workload.scenarios import (SCENARIOS, reduce_scenario_cell,
                                      scenario_config)
    cells = [Cell(key=("scenario", name, int(seed)),
                  config=scenario_config(name, seed=int(seed)),
                  reduce=reduce_scenario_cell)
             for name in SCENARIOS]
    _check_unique(cells)
    return cells


def policy_grid(seed: int = 1) -> list[Cell]:
    """The policy-arena grid behind the BENCH_8 record.

    Two cell families:

    * ``("arena", scenario, policy, seed)`` — every scenario's stream under
      the adaptive selector, each of its fixed constituents and the Bohm
      baseline, on the centralized-engine arena (``run_policy_cell``; the
      config is a :class:`~repro.workload.scenarios.PolicyCellConfig`, not
      a ClusterConfig).
    * ``("bohm-chaos", scenario, seed)`` — the Bohm *cluster* under link
      faults, reduced in-worker to MVSG + invariant verdicts.
    """
    from ..workload.scenarios import (ARENA_POLICIES, BOHM_CHAOS_SCENARIOS,
                                      PolicyCellConfig, bohm_chaos_config,
                                      reduce_bohm_chaos_cell,
                                      run_policy_cell, scenario_names)
    cells = [Cell(key=("arena", scenario, policy, int(seed)),
                  config=PolicyCellConfig(scenario, policy, seed=int(seed)),
                  run=run_policy_cell)
             for scenario in scenario_names()
             for policy in ARENA_POLICIES]
    cells += [Cell(key=("bohm-chaos", scenario, int(seed)),
                   config=bohm_chaos_config(scenario, seed=int(seed)),
                   reduce=reduce_bohm_chaos_cell)
              for scenario in BOHM_CHAOS_SCENARIOS]
    _check_unique(cells)
    return cells


def reference_cell(seed: int = 42) -> Cell:
    """The fixed single-process hot-path reference: one medium MVTIL run.

    Used by ``python -m repro.exp`` to measure sim-events/s for the perf
    trajectory; the event count is deterministic for a given seed, so
    events/s across PRs compares like for like.
    """
    return Cell(
        key=("hotpath", "mvtil-early", seed),
        config=ClusterConfig(
            protocol="mvtil-early", num_servers=4, num_clients=12,
            seed=seed, warmup=2.0, measure=8.0,
            profile=LOCAL_TESTBED,
            workload=WorkloadConfig(num_keys=10_000, tx_size=20,
                                    write_fraction=0.25)))
