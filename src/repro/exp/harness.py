"""The worker pool: crash-isolated parallel execution of grid cells.

Each cell runs in its own worker process (at most ``workers`` alive at
once), so a dying worker — a segfault, an OOM kill, an uncaught exception —
fails *that cell* and nothing else.  Results are merged **by grid position,
never by completion order**: the output list of :func:`run_cells` lines up
index-for-index with the input cells, which is what makes a parallel sweep
byte-identical to a serial one (see :func:`merged_payload`).

Seeding: workers inherit nothing random from the parent.  Every cell's
randomness flows from ``cell.config.seed`` through the existing
:class:`~repro.sim.rng.RngFactory` stream discipline inside
:func:`~repro.dist.cluster.run_cluster`, and grids derive per-cell seeds
deterministically (:func:`repro.exp.grid.derive_seeds`) — so the worker
count can never change a cell's outcome.

:func:`run_figures` runs the unmodified figure functions of
:mod:`repro.bench.figures` through the pool with a record/replay pass: the
figure code is executed once with a recording runner to enumerate the
(config x seed) grid it would run, the grid goes through the pool, and the
figure code is executed again with the pooled results replayed in order.
The sweep logic stays in one place; the harness never re-implements it.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Sequence

from ..dist.cluster import ClusterConfig, ClusterResult, run_cluster
from .grid import Cell

__all__ = ["CellOutcome", "run_cells", "run_figures", "merged_payload",
           "HarnessCellError", "print_progress"]


@dataclass
class CellOutcome:
    """Result of one grid cell, successful or not.

    ``result`` is the full :class:`~repro.dist.cluster.ClusterResult` on
    success (or, for cells with a ``reduce``, the reduced summary — which
    must expose the same counter attributes) and ``None`` on failure;
    ``error`` carries the worker's traceback (or exit diagnosis) on
    failure.  ``wall_s`` is host wall-clock and therefore nondeterministic
    — it is excluded from :meth:`payload`, the deterministic merge view.
    """

    key: tuple
    ok: bool
    result: Any
    error: str | None
    wall_s: float

    @property
    def sim_events(self) -> int:
        return self.result.sim_events if self.result is not None else 0

    @property
    def events_per_s(self) -> float:
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def commits_per_s(self) -> float:
        if self.result is None or self.wall_s <= 0:
            return 0.0
        return self.result.committed / self.wall_s

    def payload(self) -> dict:
        """The deterministic simulation outputs of this cell.

        Everything here is a pure function of the cell's config (wall-clock
        derived numbers are deliberately absent), so serial and parallel
        sweeps produce byte-identical merged payloads.
        """
        base: dict[str, Any] = {"key": list(self.key), "ok": self.ok,
                                "error": self.error}
        if self.result is not None:
            res = self.result
            base.update(
                committed=res.committed,
                aborted=res.aborted,
                throughput=res.throughput,
                commit_rate=res.commit_rate,
                messages_sent=res.messages_sent,
                messages_per_commit=res.messages_per_commit,
                sim_events=res.sim_events,
            )
        return base


class HarnessCellError(RuntimeError):
    """A figure sweep needed a cell whose worker failed."""


def merged_payload(outcomes: Sequence[CellOutcome]) -> bytes:
    """Canonical JSON bytes of the merged deterministic results.

    Ordered by grid position with sorted keys and fixed separators: two
    sweeps over the same grid are equivalent iff these bytes are equal.
    """
    doc = [out.payload() for out in outcomes]
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------------

def _cell_worker(conn: Any, cell: Cell) -> None:
    """Run one cell and ship the outcome back over ``conn``.

    Top-level so it pickles under the spawn start method.  Any exception is
    converted to an ("err", traceback) message; a hard crash is detected by
    the parent as EOF-without-message.  A result that does not survive the
    pipe pickle is a loud per-cell failure naming the fix (a ``reduce``),
    never a silent fallback to serial execution.
    """
    try:
        run = cell.run if cell.run is not None else run_cluster
        result = run(cell.config)
        if cell.reduce is not None:
            result = cell.reduce(result)
        try:
            conn.send(("ok", result))
        except Exception as exc:  # pickling the result failed
            conn.send(("err",
                       f"cell result is not picklable: {exc!r}; give the "
                       f"cell a `reduce` returning a picklable summary"))
    except BaseException:  # noqa: BLE001 - the whole point is isolation
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context() -> mp.context.BaseContext:
    # fork is markedly cheaper per cell and available everywhere we run CI;
    # fall back to the platform default (spawn) elsewhere.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _run_cell_inline(cell: Cell) -> CellOutcome:
    t0 = time.perf_counter()
    try:
        run = cell.run if cell.run is not None else run_cluster
        result = run(cell.config)
        if cell.reduce is not None:
            result = cell.reduce(result)
        return CellOutcome(cell.key, True, result, None,
                           time.perf_counter() - t0)
    except Exception:
        return CellOutcome(cell.key, False, None, traceback.format_exc(),
                           time.perf_counter() - t0)


def run_cells(cells: Sequence[Cell], workers: int = 1,
              progress: Callable[[int, int, CellOutcome], None] | None = None,
              ) -> list[CellOutcome]:
    """Run every cell; return outcomes aligned with the input order.

    ``workers >= 1`` runs each cell in its own crash-isolated process with
    at most ``workers`` alive at once.  ``workers == 0`` runs inline in
    this process (no isolation — for tests and debugging).  ``progress``,
    if given, is called after each completion with
    ``(done_count, total, outcome)``; completions arrive in completion
    order but the returned list is always in grid order.
    """
    total = len(cells)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0:
        outcomes = []
        for i, cell in enumerate(cells):
            out = _run_cell_inline(cell)
            outcomes.append(out)
            if progress is not None:
                progress(i + 1, total, out)
        return outcomes

    ctx = _mp_context()
    results: dict[int, CellOutcome] = {}
    pending = list(enumerate(cells))  # grid order; popped front-first
    pending.reverse()
    active: dict[Any, tuple[int, Cell, Any, float]] = {}  # conn -> state
    done = 0

    def _launch() -> None:
        idx, cell = pending.pop()
        reader, writer = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_cell_worker, args=(writer, cell),
                           name=f"exp-cell-{cell.label}")
        proc.start()
        writer.close()  # parent keeps only the read end
        active[reader] = (idx, cell, proc, time.perf_counter())

    try:
        while pending or active:
            while pending and len(active) < workers:
                _launch()
            # Readable means either a message or EOF (worker died): waiting
            # on the connection, not the process sentinel, so a worker
            # blocked sending a large result is drained rather than
            # deadlocked against its own pipe buffer.
            for reader in conn_wait(list(active)):
                idx, cell, proc, t0 = active.pop(reader)
                wall = time.perf_counter() - t0
                msg = None
                try:
                    if reader.poll():
                        msg = reader.recv()
                except EOFError:
                    msg = None
                finally:
                    reader.close()
                proc.join()
                if msg is None:
                    out = CellOutcome(
                        cell.key, False, None,
                        f"worker died without a result "
                        f"(exitcode {proc.exitcode})", wall)
                elif msg[0] == "ok":
                    out = CellOutcome(cell.key, True, msg[1], None, wall)
                else:
                    out = CellOutcome(cell.key, False, None, msg[1], wall)
                results[idx] = out
                done += 1
                if progress is not None:
                    progress(done, total, out)
    finally:
        for idx, cell, proc, _t0 in active.values():
            if proc.is_alive():
                proc.terminate()
            proc.join()
    # Deterministic merge: grid order, not completion order.
    return [results[i] for i in range(total)]


def print_progress(done: int, total: int, outcome: CellOutcome,
                   stream: Any = None) -> None:
    """Default progress reporter: one stderr line per completed cell."""
    stream = stream if stream is not None else sys.stderr
    status = "ok" if outcome.ok else "FAILED"
    print(f"[repro.exp] {done}/{total} {'/'.join(map(str, outcome.key))}: "
          f"{status} ({outcome.wall_s:.1f}s)", file=stream, flush=True)


# ---------------------------------------------------------------------------
# Figure sweeps through the pool (record / replay)
# ---------------------------------------------------------------------------

def _placeholder(config: ClusterConfig) -> ClusterResult:
    """Inert result handed to figure code during the recording pass."""
    return ClusterResult(
        config=config, throughput=0.0, commit_rate=0.0, committed=0,
        aborted=0, history=None, state_samples=[], completions=[],
        messages_sent=0, server_stats=[])


def run_figures(figure_fn: Callable[..., Any], seeds: Sequence[int],
                workers: int,
                obs: Any = None,
                progress: Callable[[int, int, CellOutcome], None] | None
                = None,
                grid_name: str = "figure",
                ) -> tuple[Any, list[CellOutcome]]:
    """Run one figure function's whole sweep through the worker pool.

    Returns ``(figure_result, outcomes)`` where ``figure_result`` is
    exactly what ``figure_fn(seeds, obs=obs)`` returns when run serially —
    the record/replay passes feed it the same results in the same order —
    and ``outcomes`` carries per-cell timings for BENCH output.

    Raises :class:`HarnessCellError` if a cell the figure needs failed;
    the error message carries the worker's traceback.
    """
    from ..bench.figures import use_runner
    from ..bench.reporting import RunObservations

    recorded: list[ClusterConfig] = []

    def record(config: ClusterConfig) -> ClusterResult:
        recorded.append(config)
        return _placeholder(config)

    # Pass 1: enumerate the grid.  A throwaway RunObservations mirrors the
    # real one so the figure requests the same (traced) configs.
    with use_runner(record):
        figure_fn(seeds, obs=RunObservations() if obs is not None else None)

    cells = [Cell(key=(grid_name, i), config=cfg)
             for i, cfg in enumerate(recorded)]
    outcomes = run_cells(cells, workers=workers, progress=progress)

    # Pass 2: replay pooled results into the figure code, in request order.
    replay_idx = iter(range(len(recorded)))

    def replay(config: ClusterConfig) -> ClusterResult:
        i = next(replay_idx)
        if recorded[i] != config:
            raise HarnessCellError(
                f"record/replay mismatch at cell {i}: figure function is "
                f"not deterministic in its config sequence")
        out = outcomes[i]
        if out.result is None:
            raise HarnessCellError(
                f"cell {out.key} failed in a worker:\n{out.error}")
        return out.result

    with use_runner(replay):
        figure_result = figure_fn(seeds, obs=obs)
    return figure_result, outcomes
