"""Process-parallel experiment harness (``repro.exp``).

The paper's evaluation is a grid of (protocol x contention x server-count x
seed) simulations; every cell is an independent, deterministic
:func:`~repro.dist.cluster.run_cluster` call, so the natural parallelism
axis — the one with *no shared state* — is across cells.  This package fans
a grid out over a pool of worker processes and merges the results back in
grid order, so a parallel sweep is byte-identical to a serial one:

* :mod:`repro.exp.grid` — cells, grids, and deterministic per-cell seeds;
* :mod:`repro.exp.harness` — the worker pool: crash-isolated process per
  cell, bounded concurrency, progress reporting, deterministic merge;
* :mod:`repro.exp.bench` — machine-readable ``BENCH_<n>.json`` perf
  records (schema-validated) so future PRs have a perf trajectory;
* ``python -m repro.exp`` — CLI that runs the reference benchmark grid and
  emits ``BENCH_5.json``.

Determinism argument (DESIGN.md §5d): a cell's outcome is a pure function
of its :class:`~repro.dist.cluster.ClusterConfig` (all randomness flows
from ``config.seed`` through :class:`~repro.sim.rng.RngFactory`), workers
share no state, and the merge orders results by grid key — never by
completion order.  Wall-clock timing is the only nondeterministic output
and is kept out of the simulation payload.
"""

from .grid import Cell, derive_seeds, figure_grid  # noqa: F401
from .harness import (CellOutcome, merged_payload, run_cells,  # noqa: F401
                      run_figures)
from .bench import (make_bench_doc, validate_bench,  # noqa: F401
                    write_bench)

__all__ = [
    "Cell", "derive_seeds", "figure_grid",
    "CellOutcome", "merged_payload", "run_cells", "run_figures",
    "make_bench_doc", "validate_bench", "write_bench",
]
