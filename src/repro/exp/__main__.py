"""CLI: run the reference benchmark grid and emit a BENCH JSON record.

Usage::

    python -m repro.exp --workers 2 --out BENCH_5.json
    python -m repro.exp --workers 8 --compare-serial   # record speedup too

Quick mode (the default) runs the reference Figure-1-style grid (protocol x
concurrency x seed) plus one fixed single-process hot-path cell; ``--full``
widens the grid.  The emitted document validates against
:func:`repro.exp.bench.validate_bench` and is committed to the repo as one
point of the perf trajectory.
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import (check_trajectory, format_trajectory, load_trajectory,
                    make_bench_doc, write_bench)
from .grid import (derive_seeds, failover_grid, figure_grid, policy_grid,
                   reference_cell, scenario_grid, selfheal_grid)
from .harness import print_progress, run_cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Run the reference benchmark grid and emit BENCH JSON.")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline, default 2)")
    parser.add_argument("--out", default="BENCH_5.json",
                        help="output path (default BENCH_5.json)")
    parser.add_argument("--bench-name", default="BENCH_5",
                        help="bench record name (default BENCH_5)")
    parser.add_argument("--full", action="store_true",
                        help="widen the grid (more clients, more seeds)")
    parser.add_argument("--failover", action="store_true",
                        help="run the replication/failover grid instead of "
                             "the figure grid and record failover latency, "
                             "goodput dip and the lost-commits audit "
                             "(default output BENCH_6.json)")
    parser.add_argument("--selfheal", action="store_true",
                        help="run the self-healing replication grid instead "
                             "of the figure grid and record anti-entropy "
                             "resync latencies, recruitment, the refusal-"
                             "reason breakdown and the lost-commits audit "
                             "under compound chaos (default output "
                             "BENCH_9.json)")
    parser.add_argument("--scenarios", action="store_true",
                        help="run the workload-zoo scenario grid instead of "
                             "the figure grid and record per-scenario "
                             "outcomes, generated mixes and invariant "
                             "status (default output BENCH_7.json)")
    parser.add_argument("--policies", action="store_true",
                        help="run the policy-arena grid instead of the "
                             "figure grid: every scenario under the "
                             "adaptive selector, its fixed constituents "
                             "and the Bohm baseline, plus Bohm-under-"
                             "link-faults validation cells (default "
                             "output BENCH_8.json)")
    parser.add_argument("--root-seed", type=int, default=2026,
                        help="root seed the per-cell seeds derive from")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also run the grid serially and record the "
                             "parallel speedup")
    parser.add_argument("--skip-hot-path", action="store_true",
                        help="skip the single-process hot-path reference "
                             "cell")
    parser.add_argument("--baseline-hotpath-wall-s", type=float, default=None,
                        help="pre-optimization wall seconds of the hot-path "
                             "reference cell (for recording the speedup)")
    parser.add_argument("--report", action="store_true",
                        help="run nothing: load the committed BENCH_*.json "
                             "records, print the perf-trajectory table, and "
                             "fail if the reference cell's events_per_s "
                             "ever regressed between records")
    parser.add_argument("--report-root", default=".",
                        help="directory holding the BENCH_*.json records "
                             "(default: current directory)")
    args = parser.parse_args(argv)

    if args.report:
        docs = load_trajectory(args.report_root)
        if not docs:
            print(f"[repro.exp] no BENCH_*.json under {args.report_root}",
                  file=sys.stderr)
            return 1
        print(format_trajectory(docs))
        failures = check_trajectory(docs)
        for failure in failures:
            print(f"FAIL: {failure}")
        print("trajectory: " + ("FAILED" if failures else "ok"))
        return 1 if failures else 0

    if sum((args.failover, args.selfheal, args.scenarios,
            args.policies)) > 1:
        parser.error("--failover, --selfheal, --scenarios and --policies "
                     "are mutually exclusive")
    if args.selfheal:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_9.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_9"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = selfheal_grid(seed=seed,
                              measure=4.5 if args.full else 3.5)
    elif args.failover:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_6.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_6"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = failover_grid(seed=seed,
                              measure=3.0 if args.full else 2.5)
    elif args.scenarios:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_7.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_7"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = scenario_grid(seed=seed)
    elif args.policies:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_8.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_8"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = policy_grid(seed=seed)
    elif args.full:
        clients = (30, 90, 150, 300)
        seeds = derive_seeds(args.root_seed, 3)
        cells = figure_grid(clients=clients, seeds=seeds, measure=3.0)
    else:
        seeds = derive_seeds(args.root_seed, 2)
        cells = figure_grid(clients=(30, 150), seeds=seeds, measure=1.5)

    if args.failover or args.selfheal:
        # Failover/selfheal cells ship the full ClusterResult (the
        # lost-commits audit reads replication_report + history), which
        # does not survive the worker-pipe pickle — run them in-process.
        # Scenario cells reduce to a picklable summary in the worker, so
        # they parallelize like the figure grid.
        args.workers = 0
    print(f"[repro.exp] grid: {len(cells)} cells, workers={args.workers}",
          file=sys.stderr, flush=True)
    t0 = time.perf_counter()
    outcomes = run_cells(cells, workers=args.workers,
                         progress=print_progress)
    grid_wall = time.perf_counter() - t0

    parallel = None
    if args.compare_serial:
        print("[repro.exp] serial reference pass "
              "(same grid, workers=1)", file=sys.stderr, flush=True)
        t0 = time.perf_counter()
        serial_outcomes = run_cells(cells, workers=1,
                                    progress=print_progress)
        serial_wall = time.perf_counter() - t0
        from .harness import merged_payload
        identical = merged_payload(outcomes) == merged_payload(
            serial_outcomes)
        parallel = {
            "workers": args.workers,
            "grid_wall_s": round(grid_wall, 3),
            "serial_wall_s": round(serial_wall, 3),
            "speedup": (round(serial_wall / grid_wall, 3)
                        if grid_wall > 0 else 0.0),
            "results_identical": identical,
        }
        if not identical:
            print("[repro.exp] ERROR: parallel results differ from serial",
                  file=sys.stderr)
            return 1

    hot_path = None
    if (not args.skip_hot_path and not args.failover and not args.selfheal
            and not args.scenarios and not args.policies):
        cell = reference_cell()
        print(f"[repro.exp] hot-path reference cell {cell.label} "
              "(single process)", file=sys.stderr, flush=True)
        [hp] = run_cells([cell], workers=0)
        hot_path = {
            "key": list(hp.key),
            "ok": hp.ok,
            "wall_s": round(hp.wall_s, 3),
            "sim_events": hp.sim_events,
            "events_per_s": round(hp.events_per_s, 1),
            "commits_per_s": round(hp.commits_per_s, 1),
        }
        if args.baseline_hotpath_wall_s is not None and hp.wall_s > 0:
            hot_path["baseline_wall_s"] = args.baseline_hotpath_wall_s
            hot_path["speedup_vs_baseline"] = round(
                args.baseline_hotpath_wall_s / hp.wall_s, 3)

    doc = make_bench_doc(args.bench_name, outcomes, args.workers,
                         hot_path=hot_path, parallel=parallel)
    if args.failover and all(out.ok for out in outcomes):
        # Cross-cell derived numbers (deterministic commit counts, not
        # wall-clock): how much goodput replication costs at steady state,
        # how much more the leader crash costs, and the recovery headline.
        by = {out.key[0]: out.result for out in outcomes}
        rep = by["repl-failover"].replication_report
        doc["failover"] = {
            "promotions": len(rep["promotions"]),
            "failover_latencies": [round(v, 4)
                                   for v in rep["failover_latencies"]],
            "lost_commits": rep["lost_commits"],
            "replica_missing": rep["replica_missing"],
            "commits_checked": rep["commits_checked"],
            "follower_reads": rep["follower_reads"],
            "staleness_mean": round(rep["read_staleness"]["mean"], 4),
            "wal_records": rep["wal_records"],
            "checkpoints": rep["checkpoints"],
            "replication_overhead": round(
                1.0 - by["repl-steady"].committed
                / max(1, by["baseline"].committed), 4),
            "goodput_dip": round(
                1.0 - by["repl-failover"].committed
                / max(1, by["repl-steady"].committed), 4),
        }
    if args.selfheal and all(out.ok for out in outcomes):
        # The BENCH_9 record: self-healing verdicts from the reference
        # cell's replication report, plus invariant status of the two
        # scenario cells that ran under the same compound chaos.  Any
        # unhealed server, lost commit or broken invariant fails the run.
        from ..workload.scenarios import check_scenario
        failures: list[str] = []
        by = {out.key[:2]: out.result for out in outcomes}
        main = by[("selfheal", 3)]
        rep = main.replication_report
        if rep["lost_commits"]:
            failures.append(f"selfheal: {rep['lost_commits']} lost commits")
        if not rep["commits_checked"]:
            failures.append("selfheal: lost-commit audit was vacuous")
        if rep["dirty_at_end"]:
            failures.append(f"selfheal: still dirty at end: "
                            f"{rep['dirty_at_end']}")
        if not rep["resyncs"]:
            failures.append("selfheal: no anti-entropy resync completed")
        if not rep["recruitments"]:
            failures.append("selfheal: no replacement replica recruited")
        doc["selfheal"] = {
            "promotions": len(rep["promotions"]),
            "recruitments": rep["recruitments"],
            "resyncs": rep["resyncs"],
            "resync_latencies": [round(v, 4)
                                 for v in rep["resync_latencies"]],
            "sync_rounds": rep["sync_rounds"],
            "sync_installs": rep["sync_installs"],
            "sync_aborted": rep["sync_aborted"],
            "wal_sync_records": rep["wal_sync_records"],
            "snapshot_refused_by_reason": rep["snapshot_refused_by_reason"],
            "served_resynced": rep["snapshot_served_resynced_by_server"],
            "dirty_at_end": rep["dirty_at_end"],
            "min_live_members": rep["min_live_members"],
            "lost_commits": rep["lost_commits"],
            "replica_missing": rep["replica_missing"],
            "commits_checked": rep["commits_checked"],
            "fanout_acked": rep["fanout_acked"],
            "fanout_unacked": rep["fanout_unacked"],
        }
        scenarios = {}
        for key, res in by.items():
            if key[0] != "scenario-chaos":
                continue
            name = key[1]
            srep = res.replication_report
            bad = check_scenario(name, res)
            scenarios[name] = {
                "committed": res.committed,
                "aborted": res.aborted,
                "commit_rate": round(res.commit_rate, 4),
                "invariant_failures": list(bad),
                "lost_commits": srep["lost_commits"],
                "commits_checked": srep["commits_checked"],
                "resyncs": srep["resyncs"],
                "dirty_at_end": srep["dirty_at_end"],
                "recruitments": srep["recruitments"],
            }
            if bad:
                failures.append(f"{name}: invariants failed under chaos: "
                                f"{list(bad)}")
            if srep["lost_commits"]:
                failures.append(f"{name}: {srep['lost_commits']} lost "
                                f"commits under chaos")
            if srep["dirty_at_end"]:
                failures.append(f"{name}: still dirty at end: "
                                f"{srep['dirty_at_end']}")
        doc["selfheal"]["scenarios"] = scenarios
        if failures:
            for msg in failures:
                print(f"[repro.exp] ERROR: {msg}", file=sys.stderr)
            return 1

    if args.scenarios and all(out.ok for out in outcomes):
        # Per-scenario derived record: generated mix, quiescence, duels
        # and invariant status (counts only — deterministic and compact).
        # Invariants and duels already ran inside the workers
        # (reduce_scenario_cell); this just assembles their summaries.
        section = {}
        for out in outcomes:
            res = out.result
            section[res.scenario] = {
                "committed": res.committed,
                "aborted": res.aborted,
                "commit_rate": round(res.commit_rate, 4),
                "quiesced": res.quiesced,
                "counters": dict(res.counters),
                "final_state_keys": res.final_state_keys,
                "invariant_failures": list(res.invariant_failures),
                "serial_aborts": dict(res.serial_aborts),
                "ghost_aborts": dict(res.ghost_aborts),
            }
            if res.invariant_failures:
                print(f"[repro.exp] ERROR: {res.scenario} invariants "
                      f"failed: {list(res.invariant_failures)}",
                      file=sys.stderr)
                return 1
        doc["scenarios"] = section

    if args.policies and all(out.ok for out in outcomes):
        # The BENCH_8 record: per scenario x policy arena numbers, the
        # Bohm link-fault validation verdicts, and the adaptive-policy
        # acceptance bounds (within 10% of the best *fixed* policy's
        # commit rate everywhere; strictly better than the worst fixed on
        # a majority of scenarios).  Violations fail the run.
        from ..workload.scenarios import ARENA_FIXED_POLICIES
        arena: dict = {}
        chaos: dict = {}
        failures: list[str] = []
        for out in outcomes:
            res = out.result
            if out.key[0] == "arena":
                arena.setdefault(res.scenario, {})[res.policy] = {
                    "committed": res.committed,
                    "aborted": res.aborted,
                    "decided": res.decided,
                    "commit_rate": round(res.commit_rate, 4),
                    "serializable": res.serializable,
                    "switches": res.switches,
                }
                if not res.serializable:
                    failures.append(f"{res.scenario}/{res.policy}: arena "
                                    "history is not MVSG-serializable")
            else:
                chaos[res.scenario] = {
                    "committed": res.committed,
                    "aborted": res.aborted,
                    "commit_rate": round(res.commit_rate, 4),
                    "quiesced": res.quiesced,
                    "serializable": res.serializable,
                    "invariant_failures": list(res.invariant_failures),
                }
                if not res.serializable:
                    failures.append(f"bohm-chaos/{res.scenario}: history "
                                    "is not MVSG-serializable")
                if res.invariant_failures:
                    failures.append(f"bohm-chaos/{res.scenario}: "
                                    f"{list(res.invariant_failures)}")
        beats_worst = 0
        acceptance: dict = {}
        for scenario, by_policy in arena.items():
            fixed = {p: by_policy[p]["commit_rate"]
                     for p in ARENA_FIXED_POLICIES}
            best, worst = max(fixed.values()), min(fixed.values())
            rate = by_policy["mvtl-adaptive"]["commit_rate"]
            within = rate >= 0.9 * best
            beats = rate > worst
            beats_worst += beats
            acceptance[scenario] = {
                "adaptive": rate, "best_fixed": best, "worst_fixed": worst,
                "within_10pct_of_best": within, "beats_worst": beats,
            }
            if not within:
                failures.append(
                    f"{scenario}: adaptive commit rate {rate} is more than "
                    f"10% below the best fixed policy ({best})")
        if beats_worst < 3:
            failures.append(f"adaptive beats the worst fixed policy on "
                            f"only {beats_worst}/5 scenarios (need >= 3)")
        doc["policies"] = {
            "arena": arena,
            "bohm_chaos": chaos,
            "acceptance": acceptance,
            "beats_worst_count": beats_worst,
        }
        if failures:
            for msg in failures:
                print(f"[repro.exp] ERROR: {msg}", file=sys.stderr)
            return 1

    path = write_bench(doc, args.out)
    failed = doc["totals"]["failed"]
    print(f"[repro.exp] wrote {path} "
          f"({doc['totals']['cells']} cells, {failed} failed, "
          f"{doc['totals']['events_per_s']:.0f} events/s aggregate)",
          file=sys.stderr, flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
