"""CLI: run the reference benchmark grid and emit a BENCH JSON record.

Usage::

    python -m repro.exp --workers 2 --out BENCH_5.json
    python -m repro.exp --workers 8 --compare-serial   # record speedup too

Quick mode (the default) runs the reference Figure-1-style grid (protocol x
concurrency x seed) plus one fixed single-process hot-path cell; ``--full``
widens the grid.  The emitted document validates against
:func:`repro.exp.bench.validate_bench` and is committed to the repo as one
point of the perf trajectory.
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import make_bench_doc, write_bench
from .grid import (derive_seeds, failover_grid, figure_grid, reference_cell,
                   scenario_grid)
from .harness import print_progress, run_cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Run the reference benchmark grid and emit BENCH JSON.")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline, default 2)")
    parser.add_argument("--out", default="BENCH_5.json",
                        help="output path (default BENCH_5.json)")
    parser.add_argument("--bench-name", default="BENCH_5",
                        help="bench record name (default BENCH_5)")
    parser.add_argument("--full", action="store_true",
                        help="widen the grid (more clients, more seeds)")
    parser.add_argument("--failover", action="store_true",
                        help="run the replication/failover grid instead of "
                             "the figure grid and record failover latency, "
                             "goodput dip and the lost-commits audit "
                             "(default output BENCH_6.json)")
    parser.add_argument("--scenarios", action="store_true",
                        help="run the workload-zoo scenario grid instead of "
                             "the figure grid and record per-scenario "
                             "outcomes, generated mixes and invariant "
                             "status (default output BENCH_7.json)")
    parser.add_argument("--root-seed", type=int, default=2026,
                        help="root seed the per-cell seeds derive from")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also run the grid serially and record the "
                             "parallel speedup")
    parser.add_argument("--skip-hot-path", action="store_true",
                        help="skip the single-process hot-path reference "
                             "cell")
    parser.add_argument("--baseline-hotpath-wall-s", type=float, default=None,
                        help="pre-optimization wall seconds of the hot-path "
                             "reference cell (for recording the speedup)")
    args = parser.parse_args(argv)

    if args.failover and args.scenarios:
        parser.error("--failover and --scenarios are mutually exclusive")
    if args.failover:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_6.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_6"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = failover_grid(seed=seed,
                              measure=3.0 if args.full else 2.5)
    elif args.scenarios:
        if args.out == "BENCH_5.json":
            args.out = "BENCH_7.json"
        if args.bench_name == "BENCH_5":
            args.bench_name = "BENCH_7"
        [seed] = derive_seeds(args.root_seed, 1)
        cells = scenario_grid(seed=seed)
    elif args.full:
        clients = (30, 90, 150, 300)
        seeds = derive_seeds(args.root_seed, 3)
        cells = figure_grid(clients=clients, seeds=seeds, measure=3.0)
    else:
        seeds = derive_seeds(args.root_seed, 2)
        cells = figure_grid(clients=(30, 150), seeds=seeds, measure=1.5)

    if args.failover or args.scenarios:
        # These cells record full histories (lost-commits audit / scenario
        # invariant checks), which do not survive the worker-pipe pickle —
        # run them in-process instead.
        args.workers = 0
    print(f"[repro.exp] grid: {len(cells)} cells, workers={args.workers}",
          file=sys.stderr, flush=True)
    t0 = time.perf_counter()
    outcomes = run_cells(cells, workers=args.workers,
                         progress=print_progress)
    grid_wall = time.perf_counter() - t0

    parallel = None
    if args.compare_serial:
        print("[repro.exp] serial reference pass "
              "(same grid, workers=1)", file=sys.stderr, flush=True)
        t0 = time.perf_counter()
        serial_outcomes = run_cells(cells, workers=1,
                                    progress=print_progress)
        serial_wall = time.perf_counter() - t0
        from .harness import merged_payload
        identical = merged_payload(outcomes) == merged_payload(
            serial_outcomes)
        parallel = {
            "workers": args.workers,
            "grid_wall_s": round(grid_wall, 3),
            "serial_wall_s": round(serial_wall, 3),
            "speedup": (round(serial_wall / grid_wall, 3)
                        if grid_wall > 0 else 0.0),
            "results_identical": identical,
        }
        if not identical:
            print("[repro.exp] ERROR: parallel results differ from serial",
                  file=sys.stderr)
            return 1

    hot_path = None
    if not args.skip_hot_path and not args.failover and not args.scenarios:
        cell = reference_cell()
        print(f"[repro.exp] hot-path reference cell {cell.label} "
              "(single process)", file=sys.stderr, flush=True)
        [hp] = run_cells([cell], workers=0)
        hot_path = {
            "key": list(hp.key),
            "ok": hp.ok,
            "wall_s": round(hp.wall_s, 3),
            "sim_events": hp.sim_events,
            "events_per_s": round(hp.events_per_s, 1),
            "commits_per_s": round(hp.commits_per_s, 1),
        }
        if args.baseline_hotpath_wall_s is not None and hp.wall_s > 0:
            hot_path["baseline_wall_s"] = args.baseline_hotpath_wall_s
            hot_path["speedup_vs_baseline"] = round(
                args.baseline_hotpath_wall_s / hp.wall_s, 3)

    doc = make_bench_doc(args.bench_name, outcomes, args.workers,
                         hot_path=hot_path, parallel=parallel)
    if args.failover and all(out.ok for out in outcomes):
        # Cross-cell derived numbers (deterministic commit counts, not
        # wall-clock): how much goodput replication costs at steady state,
        # how much more the leader crash costs, and the recovery headline.
        by = {out.key[0]: out.result for out in outcomes}
        rep = by["repl-failover"].replication_report
        doc["failover"] = {
            "promotions": len(rep["promotions"]),
            "failover_latencies": [round(v, 4)
                                   for v in rep["failover_latencies"]],
            "lost_commits": rep["lost_commits"],
            "replica_missing": rep["replica_missing"],
            "commits_checked": rep["commits_checked"],
            "follower_reads": rep["follower_reads"],
            "staleness_mean": round(rep["read_staleness"]["mean"], 4),
            "wal_records": rep["wal_records"],
            "checkpoints": rep["checkpoints"],
            "replication_overhead": round(
                1.0 - by["repl-steady"].committed
                / max(1, by["baseline"].committed), 4),
            "goodput_dip": round(
                1.0 - by["repl-failover"].committed
                / max(1, by["repl-steady"].committed), 4),
        }
    if args.scenarios and all(out.ok for out in outcomes):
        # Per-scenario derived record: generated mix, quiescence, duels
        # and invariant status (counts only — deterministic and compact).
        from ..workload.scenarios import (check_scenario, ghost_abort_duel,
                                          serial_skew_duel)
        section = {}
        for out in outcomes:
            name = out.key[1]
            res = out.result
            invariant_failures = check_scenario(name, res)
            skew = serial_skew_duel(name)
            ghost = ghost_abort_duel(name)
            section[name] = {
                "committed": res.committed,
                "aborted": res.aborted,
                "commit_rate": round(res.commit_rate, 4),
                "quiesced": res.scenario_report["quiesced"],
                "counters": dict(res.scenario_report["counters"]),
                "final_state_keys": len(res.final_state or {}),
                "invariant_failures": invariant_failures,
                "serial_aborts": {
                    policy: r["serial_aborts"] for policy, r in skew.items()},
                "ghost_aborts": {
                    policy: r["ghost_aborts"] for policy, r in ghost.items()},
            }
            if invariant_failures:
                print(f"[repro.exp] ERROR: {name} invariants failed: "
                      f"{invariant_failures}", file=sys.stderr)
                return 1
        doc["scenarios"] = section

    path = write_bench(doc, args.out)
    failed = doc["totals"]["failed"]
    print(f"[repro.exp] wrote {path} "
          f"({doc['totals']['cells']} cells, {failed} failed, "
          f"{doc['totals']['events_per_s']:.0f} events/s aggregate)",
          file=sys.stderr, flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
