"""Machine-readable perf records: ``BENCH_<n>.json``.

Every harness run can be persisted as a BENCH document — schema-versioned
JSON with host metadata and per-cell timings — committed to the repo as a
perf trajectory across PRs.  The schema is validated by hand
(:func:`validate_bench`) so CI needs no extra dependencies.

Schema (version 1)::

    {
      "schema_version": 1,
      "bench": "BENCH_5",
      "created_unix": 1754500000.0,
      "host": {"platform": ..., "python": ..., "machine": ...,
               "cpu_count": ...},
      "workers": 2,
      "cells": [
        {"key": [...], "ok": true, "error": null,
         "wall_s": ..., "sim_events": ..., "events_per_s": ...,
         "committed": ..., "commits_per_s": ...,
         "throughput": ..., "commit_rate": ...},
        ...
      ],
      "totals": {"cells": n, "failed": m, "wall_s": ...,
                 "sim_events": ..., "events_per_s": ...},
      "hot_path": {...} | null,       # single-process reference cell
      "parallel": {...} | null        # serial-vs-parallel wall comparison
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from .harness import CellOutcome

__all__ = ["REFERENCE_CELL_KEY", "SCHEMA_VERSION", "check_trajectory",
           "format_trajectory", "load_trajectory", "make_bench_doc",
           "reference_events_per_s", "validate_bench", "write_bench"]

SCHEMA_VERSION = 1

#: The perf-trajectory anchor: one MVTO figure-grid cell that every
#: figure-grid BENCH record contains (protocol, clients, derived seed).
#: Mode-specific records (failover, scenarios, ...) run different grids and
#: simply don't carry it; the trajectory check skips them.
REFERENCE_CELL_KEY = ["mvto", 30, 479243620]


def _host_metadata() -> dict:
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _cell_entry(out: CellOutcome) -> dict:
    entry: dict[str, Any] = {
        "key": list(out.key),
        "ok": out.ok,
        "error": out.error,
        "wall_s": round(out.wall_s, 4),
        "sim_events": out.sim_events,
        "events_per_s": round(out.events_per_s, 1),
    }
    if out.result is not None:
        entry.update(
            committed=out.result.committed,
            commits_per_s=round(out.commits_per_s, 1),
            throughput=out.result.throughput,
            commit_rate=out.result.commit_rate,
        )
    return entry


def make_bench_doc(name: str, outcomes: Sequence[CellOutcome],
                   workers: int,
                   hot_path: dict | None = None,
                   parallel: dict | None = None) -> dict:
    """Assemble a schema-version-1 BENCH document from harness outcomes."""
    total_wall = sum(out.wall_s for out in outcomes)
    total_events = sum(out.sim_events for out in outcomes)
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "created_unix": round(time.time(), 3),
        "host": _host_metadata(),
        "workers": workers,
        "cells": [_cell_entry(out) for out in outcomes],
        "totals": {
            "cells": len(outcomes),
            "failed": sum(1 for out in outcomes if not out.ok),
            "wall_s": round(total_wall, 3),
            "sim_events": total_events,
            "events_per_s": (round(total_events / total_wall, 1)
                             if total_wall > 0 else 0.0),
        },
        "hot_path": hot_path,
        "parallel": parallel,
    }
    validate_bench(doc)
    return doc


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"invalid BENCH document: {msg}")


def validate_bench(doc: Any) -> None:
    """Validate a BENCH document against schema version 1.

    Raises ``ValueError`` with a pinpointed message on the first violation.
    """
    _expect(isinstance(doc, dict), "top level must be an object")
    _expect(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}")
    _expect(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    _expect(isinstance(doc.get("created_unix"), (int, float)),
            "created_unix must be a number")
    host = doc.get("host")
    _expect(isinstance(host, dict), "host must be an object")
    for field in ("platform", "python", "machine"):
        _expect(isinstance(host.get(field), str),
                f"host.{field} must be a string")
    _expect(isinstance(doc.get("workers"), int) and doc["workers"] >= 0,
            "workers must be a non-negative integer")
    cells = doc.get("cells")
    _expect(isinstance(cells, list) and cells, "cells must be a non-empty list")
    for i, cell in enumerate(cells):
        _expect(isinstance(cell, dict), f"cells[{i}] must be an object")
        _expect(isinstance(cell.get("key"), list) and cell["key"],
                f"cells[{i}].key must be a non-empty list")
        _expect(isinstance(cell.get("ok"), bool),
                f"cells[{i}].ok must be a boolean")
        for field in ("wall_s", "events_per_s"):
            _expect(isinstance(cell.get(field), (int, float)),
                    f"cells[{i}].{field} must be a number")
        _expect(isinstance(cell.get("sim_events"), int),
                f"cells[{i}].sim_events must be an integer")
        if cell["ok"]:
            _expect(cell.get("error") is None,
                    f"cells[{i}] ok but error is set")
            for field in ("committed", "commits_per_s", "throughput",
                          "commit_rate"):
                _expect(isinstance(cell.get(field), (int, float)),
                        f"cells[{i}].{field} must be a number")
        else:
            _expect(isinstance(cell.get("error"), str),
                    f"cells[{i}] failed but carries no error")
    totals = doc.get("totals")
    _expect(isinstance(totals, dict), "totals must be an object")
    _expect(totals.get("cells") == len(cells),
            "totals.cells must match len(cells)")
    _expect(totals.get("failed")
            == sum(1 for c in cells if not c["ok"]),
            "totals.failed must match the failed cell count")
    for field in ("wall_s", "sim_events", "events_per_s"):
        _expect(isinstance(totals.get(field), (int, float)),
                f"totals.{field} must be a number")
    for section in ("hot_path", "parallel"):
        val = doc.get(section)
        _expect(val is None or isinstance(val, dict),
                f"{section} must be an object or null")


def write_bench(doc: dict, path: str | Path) -> Path:
    """Validate and persist a BENCH document."""
    validate_bench(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


# -- perf trajectory across committed BENCH records --------------------------

def load_trajectory(root: str | Path = ".") -> list[tuple[int, dict]]:
    """All committed ``BENCH_<n>.json`` under ``root``, validated, by n."""
    root = Path(root)
    docs = []
    for path in root.glob("BENCH_*.json"):
        stem = path.stem.split("_", 1)[1]
        if not stem.isdigit():
            continue
        doc = json.loads(path.read_text())
        validate_bench(doc)
        docs.append((int(stem), doc))
    docs.sort(key=lambda item: item[0])
    return docs


def reference_events_per_s(doc: dict) -> float | None:
    """``events_per_s`` of the reference cell, or None if this record's
    grid doesn't carry it (mode-specific BENCH runs)."""
    for cell in doc["cells"]:
        if cell["key"] == REFERENCE_CELL_KEY and cell["ok"]:
            return float(cell["events_per_s"])
    return None


def check_trajectory(docs: "list[tuple[int, dict]]") -> list[str]:
    """Failure messages if the reference-cell rate ever regresses.

    The reference cell's ``events_per_s`` must be monotone-nondecreasing
    across the BENCH records that carry it, in BENCH-number order — the
    committed trajectory only moves forward.  A trajectory with fewer than
    two comparable points is vacuous and also fails.
    """
    failures: list[str] = []
    points = [(n, reference_events_per_s(doc)) for n, doc in docs]
    points = [(n, rate) for n, rate in points if rate is not None]
    if len(points) < 2:
        failures.append(
            f"trajectory is vacuous: {len(points)} BENCH record(s) carry "
            f"the reference cell {REFERENCE_CELL_KEY}; need >= 2")
    for (prev_n, prev_rate), (n, rate) in zip(points, points[1:]):
        if rate < prev_rate:
            failures.append(
                f"reference-cell events_per_s regressed: BENCH_{n} "
                f"{rate:,.1f} < BENCH_{prev_n} {prev_rate:,.1f}")
    return failures


def format_trajectory(docs: "list[tuple[int, dict]]") -> str:
    """ASCII table of the committed perf trajectory (all BENCH records)."""
    lines = [f"{'record':>10s} {'cells':>6s} {'failed':>7s} "
             f"{'total ev/s':>12s} {'ref-cell ev/s':>14s} {'vs prev':>8s}"]
    prev = None
    for n, doc in docs:
        ref = reference_events_per_s(doc)
        if ref is None:
            ref_s, delta_s = "-", "-"
        else:
            ref_s = f"{ref:,.1f}"
            delta_s = "-" if prev is None else f"{ref / prev:.2f}x"
            prev = ref
        totals = doc["totals"]
        lines.append(f"{doc['bench']:>10s} {totals['cells']:>6d} "
                     f"{totals['failed']:>7d} "
                     f"{totals['events_per_s']:>12,.1f} "
                     f"{ref_s:>14s} {delta_s:>8s}")
    return "\n".join(lines)
