"""Machine-readable perf records: ``BENCH_<n>.json``.

Every harness run can be persisted as a BENCH document — schema-versioned
JSON with host metadata and per-cell timings — committed to the repo as a
perf trajectory across PRs.  The schema is validated by hand
(:func:`validate_bench`) so CI needs no extra dependencies.

Schema (version 1)::

    {
      "schema_version": 1,
      "bench": "BENCH_5",
      "created_unix": 1754500000.0,
      "host": {"platform": ..., "python": ..., "machine": ...,
               "cpu_count": ...},
      "workers": 2,
      "cells": [
        {"key": [...], "ok": true, "error": null,
         "wall_s": ..., "sim_events": ..., "events_per_s": ...,
         "committed": ..., "commits_per_s": ...,
         "throughput": ..., "commit_rate": ...},
        ...
      ],
      "totals": {"cells": n, "failed": m, "wall_s": ...,
                 "sim_events": ..., "events_per_s": ...},
      "hot_path": {...} | null,       # single-process reference cell
      "parallel": {...} | null        # serial-vs-parallel wall comparison
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from .harness import CellOutcome

__all__ = ["SCHEMA_VERSION", "make_bench_doc", "validate_bench",
           "write_bench"]

SCHEMA_VERSION = 1


def _host_metadata() -> dict:
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _cell_entry(out: CellOutcome) -> dict:
    entry: dict[str, Any] = {
        "key": list(out.key),
        "ok": out.ok,
        "error": out.error,
        "wall_s": round(out.wall_s, 4),
        "sim_events": out.sim_events,
        "events_per_s": round(out.events_per_s, 1),
    }
    if out.result is not None:
        entry.update(
            committed=out.result.committed,
            commits_per_s=round(out.commits_per_s, 1),
            throughput=out.result.throughput,
            commit_rate=out.result.commit_rate,
        )
    return entry


def make_bench_doc(name: str, outcomes: Sequence[CellOutcome],
                   workers: int,
                   hot_path: dict | None = None,
                   parallel: dict | None = None) -> dict:
    """Assemble a schema-version-1 BENCH document from harness outcomes."""
    total_wall = sum(out.wall_s for out in outcomes)
    total_events = sum(out.sim_events for out in outcomes)
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "created_unix": round(time.time(), 3),
        "host": _host_metadata(),
        "workers": workers,
        "cells": [_cell_entry(out) for out in outcomes],
        "totals": {
            "cells": len(outcomes),
            "failed": sum(1 for out in outcomes if not out.ok),
            "wall_s": round(total_wall, 3),
            "sim_events": total_events,
            "events_per_s": (round(total_events / total_wall, 1)
                             if total_wall > 0 else 0.0),
        },
        "hot_path": hot_path,
        "parallel": parallel,
    }
    validate_bench(doc)
    return doc


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"invalid BENCH document: {msg}")


def validate_bench(doc: Any) -> None:
    """Validate a BENCH document against schema version 1.

    Raises ``ValueError`` with a pinpointed message on the first violation.
    """
    _expect(isinstance(doc, dict), "top level must be an object")
    _expect(doc.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}")
    _expect(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    _expect(isinstance(doc.get("created_unix"), (int, float)),
            "created_unix must be a number")
    host = doc.get("host")
    _expect(isinstance(host, dict), "host must be an object")
    for field in ("platform", "python", "machine"):
        _expect(isinstance(host.get(field), str),
                f"host.{field} must be a string")
    _expect(isinstance(doc.get("workers"), int) and doc["workers"] >= 0,
            "workers must be a non-negative integer")
    cells = doc.get("cells")
    _expect(isinstance(cells, list) and cells, "cells must be a non-empty list")
    for i, cell in enumerate(cells):
        _expect(isinstance(cell, dict), f"cells[{i}] must be an object")
        _expect(isinstance(cell.get("key"), list) and cell["key"],
                f"cells[{i}].key must be a non-empty list")
        _expect(isinstance(cell.get("ok"), bool),
                f"cells[{i}].ok must be a boolean")
        for field in ("wall_s", "events_per_s"):
            _expect(isinstance(cell.get(field), (int, float)),
                    f"cells[{i}].{field} must be a number")
        _expect(isinstance(cell.get("sim_events"), int),
                f"cells[{i}].sim_events must be an integer")
        if cell["ok"]:
            _expect(cell.get("error") is None,
                    f"cells[{i}] ok but error is set")
            for field in ("committed", "commits_per_s", "throughput",
                          "commit_rate"):
                _expect(isinstance(cell.get(field), (int, float)),
                        f"cells[{i}].{field} must be a number")
        else:
            _expect(isinstance(cell.get("error"), str),
                    f"cells[{i}] failed but carries no error")
    totals = doc.get("totals")
    _expect(isinstance(totals, dict), "totals must be an object")
    _expect(totals.get("cells") == len(cells),
            "totals.cells must match len(cells)")
    _expect(totals.get("failed")
            == sum(1 for c in cells if not c["ok"]),
            "totals.failed must match the failed cell count")
    for field in ("wall_s", "sim_events", "events_per_s"):
        _expect(isinstance(totals.get(field), (int, float)),
                f"totals.{field} must be a number")
    for section in ("hot_path", "parallel"):
        val = doc.get(section)
        _expect(val is None or isinstance(val, dict),
                f"{section} must be an object or null")


def write_bench(doc: dict, path: str | Path) -> Path:
    """Validate and persist a BENCH document."""
    validate_bench(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
