"""Interval algebra over the timestamp line.

MVTL locks *sets of timestamps*.  Conceptually the lock state is one lock per
timestamp — an infinite state — but every algorithm in the paper only ever
locks contiguous ranges, so a practical implementation compresses the state
into intervals (§6, "Reducing lock state space").  This module provides the
exact interval arithmetic that the lock table and the policies are built on.

The timestamp domain is ``(value: float, pid: int)`` ordered lexicographically
(§4.1).  Within one clock value the pid axis gives every timestamp a
*successor* ``(v, pid+1)`` and *predecessor* ``(v, pid-1)``, so every
non-empty interval — however its endpoints were specified — is equal to a
**closed** interval ``[min_member, max_member]``.  We canonicalize on
construction: the paper's discrete ``[tr+1, te]`` (read-lock range "just
after the version read") is built with :meth:`TsInterval.open_closed`, which
yields ``[succ(tr), te]``.  Canonical closed form makes intersection, union,
subtraction, adjacency, and min/max selection exact integer/float
comparisons with no epsilon fudging and no unrepresentable "open gaps".

Representation: an :class:`IntervalSet` stores its pieces as one **flat
tuple of scalars**, four per piece — ``(lo_v, lo_p, hi_v, hi_p, ...)`` — and
the set algebra runs in the :mod:`repro._fastcore` kernels (pure Python or
the compiled extension, selected at import) without allocating a single
:class:`TsInterval`/``Timestamp`` on the hot path.  ``TsInterval`` remains
the boundary type: the :attr:`IntervalSet.pieces` view materializes (and
caches) interval objects on demand, so policies, locks, and dist messages
are untouched.  The kernels reuse operand tuples when a result equals an
operand, which this module maps back to the operand *set* object — making
"did the lock state change?" an ``is``-level comparison downstream.

Classes
-------
:class:`TsInterval`
    A non-empty contiguous range, canonically closed.
:class:`IntervalSet`
    A normalized (sorted, disjoint, non-adjacent) set of intervals; the
    value type for "the timestamps transaction tx holds locked on key k".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .timestamp import TS_INF, TS_ZERO, Timestamp
from .._fastcore import (iv_contains, iv_intersect, iv_normalize,
                         iv_subtract, iv_union)

__all__ = ["TsInterval", "IntervalSet", "EMPTY_SET", "FULL_INTERVAL",
           "ts_succ", "ts_pred"]


def ts_succ(ts: Timestamp) -> Timestamp:
    """The immediately following timestamp: ``(v, pid+1)``."""
    return Timestamp(ts.value, ts.pid + 1)


def ts_pred(ts: Timestamp) -> Timestamp:
    """The immediately preceding timestamp: ``(v, pid-1)``."""
    return Timestamp(ts.value, ts.pid - 1)


@dataclass(unsafe_hash=True, slots=True)
class TsInterval:
    """A non-empty closed interval ``[lo, hi]`` of timestamps.

    Use the named constructors to build from open/half-open specifications;
    they canonicalize to closed form (e.g. ``open_closed(a, b) ==
    closed(succ(a), b)``).
    """

    lo: Timestamp
    hi: Timestamp

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: [{self.lo!r}, {self.hi!r}]")

    # -- constructors ------------------------------------------------------

    @classmethod
    def closed(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``[lo, hi]``."""
        return cls(lo, hi)

    @classmethod
    def open_closed(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``(lo, hi]`` — the paper's read-lock range "[tr+1, te]"."""
        return cls(ts_succ(lo), hi)

    @classmethod
    def closed_open(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``[lo, hi)``."""
        return cls(lo, ts_pred(hi))

    @classmethod
    def open(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``(lo, hi)``."""
        return cls(ts_succ(lo), ts_pred(hi))

    @classmethod
    def point(cls, ts: Timestamp) -> "TsInterval":
        """The single timestamp ``[ts, ts]`` — a write-lock point."""
        return cls(ts, ts)

    @classmethod
    def after(cls, ts: Timestamp) -> "TsInterval":
        """``(ts, +inf]`` — everything strictly above ``ts``."""
        return cls(ts_succ(ts), TS_INF)

    # -- predicates --------------------------------------------------------

    def contains(self, ts: Timestamp) -> bool:
        """Whether ``ts`` lies in this interval."""
        return self.lo <= ts <= self.hi

    def contains_just_after(self, ts: Timestamp) -> bool:
        """Whether the interval covers the timestamp immediately above ``ts``.

        Used to find the contiguous lock coverage adjacent to a version read
        at ``ts``: a read-lock interval protects the read only if it starts
        right after the version, with no gap.  The successor comparison is
        unrolled — ``contains(ts_succ(ts))`` without the allocation.
        """
        v = ts.value
        p = ts.pid + 1
        lo = self.lo
        hi = self.hi
        return ((lo.value < v or (lo.value == v and lo.pid <= p))
                and (v < hi.value or (v == hi.value and p <= hi.pid)))

    def contains_interval(self, other: "TsInterval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "TsInterval") -> bool:
        """Whether the two intervals share at least one timestamp."""
        return max(self.lo, other.lo) <= min(self.hi, other.hi)

    def touches(self, other: "TsInterval") -> bool:
        """Whether the intervals overlap or are immediately adjacent.

        Equivalent to ``max(lo) <= ts_succ(min(hi))`` with the successor
        comparison unrolled so no Timestamp is allocated.
        """
        lo = self.lo if self.lo >= other.lo else other.lo
        hi = self.hi if self.hi <= other.hi else other.hi
        return lo.value < hi.value or (lo.value == hi.value
                                       and lo.pid <= hi.pid + 1)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "TsInterval") -> "TsInterval | None":
        """The overlap of two intervals, or None if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return TsInterval(lo, hi)

    def union_contiguous(self, other: "TsInterval") -> "TsInterval":
        """Union of two touching/overlapping intervals.

        Raises ValueError if the intervals have a gap between them.
        """
        if not self.touches(other):
            raise ValueError(f"disjoint intervals: {self} | {other}")
        return TsInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def subtract(self, other: "TsInterval") -> list["TsInterval"]:
        """This interval minus ``other``: zero, one, or two pieces."""
        if not self.overlaps(other):
            return [self]
        pieces: list[TsInterval] = []
        if self.lo < other.lo:
            pieces.append(TsInterval(self.lo, ts_pred(other.lo)))
        if other.hi < self.hi:
            pieces.append(TsInterval(ts_succ(other.hi), self.hi))
        return pieces

    # -- flat view ---------------------------------------------------------

    @property
    def flat(self) -> tuple:
        """The kernel operand form ``(lo_v, lo_p, hi_v, hi_p)``."""
        lo = self.lo
        hi = self.hi
        return (lo.value, lo.pid, hi.value, hi.pid)

    # -- members -----------------------------------------------------------

    def min_member(self) -> Timestamp:
        return self.lo

    def max_member(self) -> Timestamp:
        return self.hi

    def sample(self) -> Timestamp:
        """Some member (the low endpoint)."""
        return self.lo

    def __repr__(self) -> str:
        if self.lo == self.hi:
            return f"[{self.lo!r}]"
        return f"[{self.lo!r}, {self.hi!r}]"


#: The whole timestamp line ``[TS_ZERO, TS_INF]``.
FULL_INTERVAL = TsInterval(TS_ZERO, TS_INF)


class IntervalSet:
    """An immutable, normalized set of timestamps.

    Stored as a flat scalar tuple (four scalars per sorted, pairwise
    disjoint, non-adjacent piece); see the module docstring.  This is the
    value type for questions like "which timestamps does transaction tx hold
    read-locked on key k?" and for the commit-time computation "the set T of
    timestamps locked across every accessed key" (Algorithm 1, line 13) —
    which is simply the n-way intersection of per-key IntervalSets.
    """

    __slots__ = ("_flat", "_pieces")

    def __init__(self, pieces: Iterable[TsInterval] = ()) -> None:
        self._flat: tuple = iv_normalize(
            [(p.lo.value, p.lo.pid, p.hi.value, p.hi.pid) for p in pieces])
        self._pieces: tuple[TsInterval, ...] | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_flat(cls, flat: tuple) -> "IntervalSet":
        """Wrap an already-canonical kernel result (no validation)."""
        s = cls.__new__(cls)
        s._flat = flat
        s._pieces = None
        return s

    @classmethod
    def from_interval(cls, interval: TsInterval) -> "IntervalSet":
        s = cls.__new__(cls)
        lo = interval.lo
        hi = interval.hi
        s._flat = (lo.value, lo.pid, hi.value, hi.pid)
        s._pieces = (interval,)
        return s

    @classmethod
    def point(cls, ts: Timestamp) -> "IntervalSet":
        return cls.from_interval(TsInterval.point(ts))

    @classmethod
    def empty(cls) -> "IntervalSet":
        return EMPTY_SET

    # -- queries -----------------------------------------------------------

    @property
    def flat(self) -> tuple:
        """The raw scalar tuple — the kernel operand form."""
        return self._flat

    @property
    def pieces(self) -> tuple[TsInterval, ...]:
        p = self._pieces
        if p is None:
            f = self._flat
            p = tuple(TsInterval(Timestamp(f[i], f[i + 1]),
                                 Timestamp(f[i + 2], f[i + 3]))
                      for i in range(0, len(f), 4))
            self._pieces = p
        return p

    @property
    def is_empty(self) -> bool:
        return not self._flat

    def __bool__(self) -> bool:
        return bool(self._flat)

    def __iter__(self) -> Iterator[TsInterval]:
        return iter(self.pieces)

    def __len__(self) -> int:
        return len(self._flat) // 4

    def contains(self, ts: Timestamp) -> bool:
        return iv_contains(self._flat, ts.value, ts.pid)

    def min_member(self) -> Timestamp:
        f = self._flat
        if not f:
            raise ValueError("empty IntervalSet has no minimum")
        return Timestamp(f[0], f[1])

    def max_member(self) -> Timestamp:
        f = self._flat
        if not f:
            raise ValueError("empty IntervalSet has no maximum")
        return Timestamp(f[-2], f[-1])

    def sample(self) -> Timestamp:
        f = self._flat
        if not f:
            raise ValueError("cannot sample an empty IntervalSet")
        return Timestamp(f[0], f[1])

    def pick_low(self) -> Timestamp:
        """The smallest member (the paper's ``min T``)."""
        return self.min_member()

    def pick_high(self) -> Timestamp:
        """The largest member (``max T``)."""
        return self.max_member()

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            lo = other.lo
            hi = other.hi
            b: tuple = (lo.value, lo.pid, hi.value, hi.pid)
            other_set = None
        else:
            b = other._flat
            other_set = other
        a = self._flat
        res = iv_intersect(a, b)
        if res is a:
            return self
        if res is b and other_set is not None:
            return other_set
        if not res:
            return EMPTY_SET
        return IntervalSet._from_flat(res)

    def union(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            if not self._flat:
                return IntervalSet.from_interval(other)
            lo = other.lo
            hi = other.hi
            b: tuple = (lo.value, lo.pid, hi.value, hi.pid)
            other_set = None
        else:
            b = other._flat
            other_set = other
        a = self._flat
        res = iv_union(a, b)
        if res is a:
            return self
        if res is b and other_set is not None:
            return other_set
        return IntervalSet._from_flat(res)

    def subtract(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            lo = other.lo
            hi = other.hi
            b: tuple = (lo.value, lo.pid, hi.value, hi.pid)
        else:
            b = other._flat
        a = self._flat
        res = iv_subtract(a, b)
        if res is a:
            return self
        if not res:
            return EMPTY_SET
        return IntervalSet._from_flat(res)

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._flat is other._flat or self._flat == other._flat

    def __hash__(self) -> int:
        return hash(self._flat)

    def __repr__(self) -> str:
        if not self._flat:
            return "IntervalSet()"
        return "IntervalSet(" + " U ".join(map(repr, self.pieces)) + ")"


#: The empty set of timestamps.
EMPTY_SET = IntervalSet()
