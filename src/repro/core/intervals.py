"""Interval algebra over the timestamp line.

MVTL locks *sets of timestamps*.  Conceptually the lock state is one lock per
timestamp — an infinite state — but every algorithm in the paper only ever
locks contiguous ranges, so a practical implementation compresses the state
into intervals (§6, "Reducing lock state space").  This module provides the
exact interval arithmetic that the lock table and the policies are built on.

The timestamp domain is ``(value: float, pid: int)`` ordered lexicographically
(§4.1).  Within one clock value the pid axis gives every timestamp a
*successor* ``(v, pid+1)`` and *predecessor* ``(v, pid-1)``, so every
non-empty interval — however its endpoints were specified — is equal to a
**closed** interval ``[min_member, max_member]``.  We canonicalize on
construction: the paper's discrete ``[tr+1, te]`` (read-lock range "just
after the version read") is built with :meth:`TsInterval.open_closed`, which
yields ``[succ(tr), te]``.  Canonical closed form makes intersection, union,
subtraction, adjacency, and min/max selection exact integer/float
comparisons with no epsilon fudging and no unrepresentable "open gaps".

Classes
-------
:class:`TsInterval`
    A non-empty contiguous range, canonically closed.
:class:`IntervalSet`
    A normalized (sorted, disjoint, non-adjacent) set of intervals; the
    value type for "the timestamps transaction tx holds locked on key k".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .timestamp import TS_INF, TS_ZERO, Timestamp

__all__ = ["TsInterval", "IntervalSet", "EMPTY_SET", "FULL_INTERVAL",
           "ts_succ", "ts_pred"]


def ts_succ(ts: Timestamp) -> Timestamp:
    """The immediately following timestamp: ``(v, pid+1)``."""
    return Timestamp(ts.value, ts.pid + 1)


def ts_pred(ts: Timestamp) -> Timestamp:
    """The immediately preceding timestamp: ``(v, pid-1)``."""
    return Timestamp(ts.value, ts.pid - 1)


@dataclass(frozen=True, slots=True)
class TsInterval:
    """A non-empty closed interval ``[lo, hi]`` of timestamps.

    Use the named constructors to build from open/half-open specifications;
    they canonicalize to closed form (e.g. ``open_closed(a, b) ==
    closed(succ(a), b)``).
    """

    lo: Timestamp
    hi: Timestamp

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: [{self.lo!r}, {self.hi!r}]")

    # -- constructors ------------------------------------------------------

    @classmethod
    def closed(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``[lo, hi]``."""
        return cls(lo, hi)

    @classmethod
    def open_closed(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``(lo, hi]`` — the paper's read-lock range "[tr+1, te]"."""
        return cls(ts_succ(lo), hi)

    @classmethod
    def closed_open(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``[lo, hi)``."""
        return cls(lo, ts_pred(hi))

    @classmethod
    def open(cls, lo: Timestamp, hi: Timestamp) -> "TsInterval":
        """``(lo, hi)``."""
        return cls(ts_succ(lo), ts_pred(hi))

    @classmethod
    def point(cls, ts: Timestamp) -> "TsInterval":
        """The single timestamp ``[ts, ts]`` — a write-lock point."""
        return cls(ts, ts)

    @classmethod
    def after(cls, ts: Timestamp) -> "TsInterval":
        """``(ts, +inf]`` — everything strictly above ``ts``."""
        return cls(ts_succ(ts), TS_INF)

    # -- predicates --------------------------------------------------------

    def contains(self, ts: Timestamp) -> bool:
        """Whether ``ts`` lies in this interval."""
        return self.lo <= ts <= self.hi

    def contains_just_after(self, ts: Timestamp) -> bool:
        """Whether the interval covers the timestamp immediately above ``ts``.

        Used to find the contiguous lock coverage adjacent to a version read
        at ``ts``: a read-lock interval protects the read only if it starts
        right after the version, with no gap.
        """
        return self.contains(ts_succ(ts))

    def contains_interval(self, other: "TsInterval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "TsInterval") -> bool:
        """Whether the two intervals share at least one timestamp."""
        return max(self.lo, other.lo) <= min(self.hi, other.hi)

    def touches(self, other: "TsInterval") -> bool:
        """Whether the intervals overlap or are immediately adjacent.

        Equivalent to ``max(lo) <= ts_succ(min(hi))`` with the successor
        comparison unrolled so no Timestamp is allocated.
        """
        lo = self.lo if self.lo >= other.lo else other.lo
        hi = self.hi if self.hi <= other.hi else other.hi
        return lo.value < hi.value or (lo.value == hi.value
                                       and lo.pid <= hi.pid + 1)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "TsInterval") -> "TsInterval | None":
        """The overlap of two intervals, or None if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return TsInterval(lo, hi)

    def union_contiguous(self, other: "TsInterval") -> "TsInterval":
        """Union of two touching/overlapping intervals.

        Raises ValueError if the intervals have a gap between them.
        """
        if not self.touches(other):
            raise ValueError(f"disjoint intervals: {self} | {other}")
        return TsInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def subtract(self, other: "TsInterval") -> list["TsInterval"]:
        """This interval minus ``other``: zero, one, or two pieces."""
        if not self.overlaps(other):
            return [self]
        pieces: list[TsInterval] = []
        if self.lo < other.lo:
            pieces.append(TsInterval(self.lo, ts_pred(other.lo)))
        if other.hi < self.hi:
            pieces.append(TsInterval(ts_succ(other.hi), self.hi))
        return pieces

    # -- members -----------------------------------------------------------

    def min_member(self) -> Timestamp:
        return self.lo

    def max_member(self) -> Timestamp:
        return self.hi

    def sample(self) -> Timestamp:
        """Some member (the low endpoint)."""
        return self.lo

    def __repr__(self) -> str:
        if self.lo == self.hi:
            return f"[{self.lo!r}]"
        return f"[{self.lo!r}, {self.hi!r}]"


#: The whole timestamp line ``[TS_ZERO, TS_INF]``.
FULL_INTERVAL = TsInterval(TS_ZERO, TS_INF)


class IntervalSet:
    """An immutable, normalized set of timestamps.

    Stored as sorted, pairwise disjoint, non-adjacent :class:`TsInterval`
    pieces.  This is the value type for questions like "which timestamps does
    transaction tx hold read-locked on key k?" and for the commit-time
    computation "the set T of timestamps locked across every accessed key"
    (Algorithm 1, line 13) — which is simply the n-way intersection of
    per-key IntervalSets.
    """

    __slots__ = ("_pieces",)

    def __init__(self, pieces: Iterable[TsInterval] = ()) -> None:
        self._pieces: tuple[TsInterval, ...] = _normalize(list(pieces))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_interval(cls, interval: TsInterval) -> "IntervalSet":
        s = cls.__new__(cls)
        s._pieces = (interval,)
        return s

    @classmethod
    def point(cls, ts: Timestamp) -> "IntervalSet":
        return cls.from_interval(TsInterval.point(ts))

    @classmethod
    def empty(cls) -> "IntervalSet":
        return EMPTY_SET

    # -- queries -----------------------------------------------------------

    @property
    def pieces(self) -> tuple[TsInterval, ...]:
        return self._pieces

    @property
    def is_empty(self) -> bool:
        return not self._pieces

    def __bool__(self) -> bool:
        return bool(self._pieces)

    def __iter__(self) -> Iterator[TsInterval]:
        return iter(self._pieces)

    def __len__(self) -> int:
        return len(self._pieces)

    def contains(self, ts: Timestamp) -> bool:
        # Linear scan: piece counts are tiny in practice (usually 1-2).
        return any(p.contains(ts) for p in self._pieces)

    def min_member(self) -> Timestamp:
        if not self._pieces:
            raise ValueError("empty IntervalSet has no minimum")
        return self._pieces[0].lo

    def max_member(self) -> Timestamp:
        if not self._pieces:
            raise ValueError("empty IntervalSet has no maximum")
        return self._pieces[-1].hi

    def sample(self) -> Timestamp:
        if not self._pieces:
            raise ValueError("cannot sample an empty IntervalSet")
        return self._pieces[0].lo

    def pick_low(self) -> Timestamp:
        """The smallest member (the paper's ``min T``)."""
        return self.min_member()

    def pick_high(self) -> Timestamp:
        """The largest member (``max T``)."""
        return self.max_member()

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            bs: tuple[TsInterval, ...] = (other,)
        else:
            bs = other._pieces
        a = self._pieces
        if not a or not bs:
            return EMPTY_SET
        if len(a) == 1 and len(bs) == 1:
            # Fast path: lock state is almost always one contiguous range.
            x, y = a[0], bs[0]
            lo = x.lo if x.lo >= y.lo else y.lo
            hi = x.hi if x.hi <= y.hi else y.hi
            if lo > hi:
                return EMPTY_SET
            # Containment: the result IS one of the operands — reuse it.
            if lo is x.lo and hi is x.hi:
                return self
            if lo is y.lo and hi is y.hi and type(other) is IntervalSet:
                return other
            s = IntervalSet.__new__(IntervalSet)
            s._pieces = (TsInterval(lo, hi),)
            return s
        out: list[TsInterval] = []
        for x in a:
            for y in bs:
                got = x.intersect(y)
                if got is not None:
                    out.append(got)
        s = IntervalSet.__new__(IntervalSet)
        s._pieces = tuple(out)  # already sorted & disjoint by construction
        return s

    def union(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            if not self._pieces:
                return IntervalSet.from_interval(other)
            b: tuple[TsInterval, ...] = (other,)
        else:
            b = other._pieces
            if not self._pieces:
                return other
            if not b:
                return self
        a = self._pieces
        if len(a) == 1 and len(b) == 1:
            # Fast path: merge or keep two ordered pieces, no list churn.
            x, y = a[0], b[0]
            if x.touches(y):
                lo = x.lo if x.lo <= y.lo else y.lo
                hi = x.hi if x.hi >= y.hi else y.hi
                # Containment: the union IS one of the operands — reuse it.
                if lo is x.lo and hi is x.hi:
                    return self
                if lo is y.lo and hi is y.hi and type(other) is IntervalSet:
                    return other
                s = IntervalSet.__new__(IntervalSet)
                s._pieces = (TsInterval(lo, hi),)
                return s
            s = IntervalSet.__new__(IntervalSet)
            s._pieces = (x, y) if x.lo <= y.lo else (y, x)
            return s
        # Linear merge of two already-sorted piece lists (no re-sort).
        i = j = 0
        merged: list[TsInterval] = []
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i].lo <= b[j].lo):
                piece = a[i]
                i += 1
            else:
                piece = b[j]
                j += 1
            if merged and merged[-1].touches(piece):
                merged[-1] = merged[-1].union_contiguous(piece)
            else:
                merged.append(piece)
        s = IntervalSet.__new__(IntervalSet)
        s._pieces = tuple(merged)
        return s

    def subtract(self, other: "IntervalSet | TsInterval") -> "IntervalSet":
        if isinstance(other, TsInterval):
            bs: tuple[TsInterval, ...] = (other,)
        else:
            bs = other._pieces
        a = self._pieces
        if not a or not bs:
            return self
        if len(a) == 1 and len(bs) == 1:
            # Fast path: one piece minus one piece is zero, one or two pieces.
            x, y = a[0], bs[0]
            if y.lo > x.hi or x.lo > y.hi:  # disjoint
                return self
            out: list[TsInterval] = []
            if x.lo < y.lo:
                out.append(TsInterval(x.lo, ts_pred(y.lo)))
            if y.hi < x.hi:
                out.append(TsInterval(ts_succ(y.hi), x.hi))
            if not out:
                return EMPTY_SET
            s = IntervalSet.__new__(IntervalSet)
            s._pieces = tuple(out)
            return s
        pieces = list(a)
        for b in bs:
            nxt: list[TsInterval] = []
            for x in pieces:
                nxt.extend(x.subtract(b))
            pieces = nxt
        s = IntervalSet.__new__(IntervalSet)
        s._pieces = tuple(pieces)
        return s

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._pieces == other._pieces

    def __hash__(self) -> int:
        return hash(self._pieces)

    def __repr__(self) -> str:
        if not self._pieces:
            return "IntervalSet()"
        return "IntervalSet(" + " U ".join(map(repr, self._pieces)) + ")"


def _normalize(pieces: Sequence[TsInterval]) -> tuple[TsInterval, ...]:
    """Sort and merge touching/overlapping intervals."""
    if not pieces:
        return ()
    ordered = sorted(pieces, key=lambda p: (p.lo.value, p.lo.pid))
    merged: list[TsInterval] = [ordered[0]]
    for piece in ordered[1:]:
        last = merged[-1]
        if last.touches(piece):
            merged[-1] = last.union_contiguous(piece)
        else:
            merged.append(piece)
    return tuple(merged)


#: The empty set of timestamps.
EMPTY_SET = IntervalSet()
