"""Exception hierarchy and the abort-reason taxonomy for the MVTL library."""

from __future__ import annotations

import enum

__all__ = [
    "AbortReason",
    "MVTLError",
    "TransactionAborted",
    "TransactionStateError",
    "DeadlockError",
    "LockTimeout",
    "PolicyError",
]


class AbortReason(str, enum.Enum):
    """The exhaustive taxonomy of abort causes, across both substrates.

    A ``str`` subclass so members compare (and hash) equal to the legacy
    free-form reason strings — ``AbortReason.DEADLOCK == "deadlock"`` —
    which keeps recorded histories, stats dictionaries and old callers
    working unchanged while making the taxonomy typo-proof.
    """

    #: Commit found no timestamp locked across the whole read/write set
    #: (Algorithm 1 line 13 yields an empty candidate set).
    NO_COMMON_TIMESTAMP = "no-common-timestamp"
    #: The transaction was chosen as a wait-for-cycle victim (§4.3).
    DEADLOCK = "deadlock"
    #: A read could not be served (policy returned no version).
    READ_FAILED = "read-failed"
    #: Voluntary abort requested by the application.
    USER_ABORT = "user-abort"
    #: A lock wait exceeded its timeout (2PL deadlock prevention, §8.1).
    LOCK_TIMEOUT = "lock-timeout"
    #: An MVTIL read's bounded server-side lock wait expired.
    READ_LOCK_TIMEOUT = "read-lock-timeout"
    #: The version a read needed was purged by the timestamp service (§6).
    PURGED_VERSION = "purged-version"
    #: MVTO+ commit-time validation: a reader already passed our write point.
    READ_TIMESTAMP_CONFLICT = "read-timestamp-conflict"
    #: MVTIL's interval shrank to nothing — no commit timestamp can exist.
    INTERVAL_EMPTY = "interval-empty"
    #: An RPC to a storage server timed out (§H failure handling).
    RPC_TIMEOUT = "rpc-timeout"
    #: The commitment object decided abort (another participant won, §7).
    COMMITMENT_ABORT = "commitment-abort"
    #: MVTO+'s no-wait commit write lock was refused (write-write conflict).
    WRITE_CONFLICT = "write-conflict"
    #: A storage server crashed and rejoined mid-transaction: its volatile
    #: lock state (including ours) is gone, detected via the epoch stamp on
    #: its replies (§H recovery).
    SERVER_RESTART = "server-restart"
    #: The transaction's absolute deadline passed before it could decide;
    #: continuing (or retrying into a saturated server) would only add
    #: stale work to the very queues that made it late.
    DEADLINE_EXCEEDED = "deadline-exceeded"
    #: A saturated server shed the request (bounded-queue admission), or
    #: the client's circuit breaker for that server is open: the system is
    #: overloaded and the transaction is rejected instead of queued.
    OVERLOADED = "overloaded"
    #: Replicated mode: a write lock could not be mirrored on a write
    #: quorum of its key group (followers down or unreachable), or a key
    #: group's fencing epoch moved mid-transaction (its leader failed
    #: over).  Committing anyway could lose the write in a later failover.
    REPLICATION_QUORUM = "replication-quorum"

    # str() / format() yield the raw value ("deadlock"), not the member
    # name, so messages and JSON exports stay identical to the legacy
    # strings.
    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def of(cls, reason: "str | AbortReason") -> "str | AbortReason":
        """Coerce a reason string to its taxonomy member when known.

        Unknown strings pass through untouched: ad-hoc reasons from tests
        or downstream code must not crash accounting.
        """
        try:
            return cls(reason)
        except ValueError:
            return reason


class MVTLError(Exception):
    """Base class for all library errors."""


class TransactionAborted(MVTLError):
    """The transaction was aborted; the caller should retry or give up.

    Carries the abort ``reason`` (an :class:`AbortReason` member for every
    cause the library itself produces; plain strings pass through).
    """

    def __init__(self, tx_id: object, reason: "str | AbortReason") -> None:
        reason = AbortReason.of(reason)
        super().__init__(f"transaction {tx_id!r} aborted: {reason}")
        self.tx_id = tx_id
        self.reason = reason


class TransactionStateError(MVTLError):
    """An operation was issued against a finished (or foreign) transaction."""


class DeadlockError(MVTLError):
    """A lock wait would close a cycle in the wait-for graph.

    The waiter receiving this error is the designated victim and must abort.
    """

    def __init__(self, tx_id: object, cycle: tuple[object, ...]) -> None:
        super().__init__(f"deadlock: {' -> '.join(map(repr, cycle))}")
        self.tx_id = tx_id
        self.cycle = cycle


class LockTimeout(MVTLError):
    """A lock wait exceeded its timeout (2PL-style deadlock prevention)."""


class PolicyError(MVTLError):
    """A policy violated an engine invariant (e.g. picked an unlocked
    commit timestamp)."""
