"""Exception hierarchy for the MVTL library."""

from __future__ import annotations

__all__ = [
    "MVTLError",
    "TransactionAborted",
    "TransactionStateError",
    "DeadlockError",
    "LockTimeout",
    "PolicyError",
]


class MVTLError(Exception):
    """Base class for all library errors."""


class TransactionAborted(MVTLError):
    """The transaction was aborted; the caller should retry or give up.

    Carries the abort ``reason`` (e.g. ``"no-common-timestamp"``,
    ``"deadlock"``, ``"purged-version"``, ``"lock-timeout"``).
    """

    def __init__(self, tx_id: object, reason: str) -> None:
        super().__init__(f"transaction {tx_id!r} aborted: {reason}")
        self.tx_id = tx_id
        self.reason = reason


class TransactionStateError(MVTLError):
    """An operation was issued against a finished (or foreign) transaction."""


class DeadlockError(MVTLError):
    """A lock wait would close a cycle in the wait-for graph.

    The waiter receiving this error is the designated victim and must abort.
    """

    def __init__(self, tx_id: object, cycle: tuple[object, ...]) -> None:
        super().__init__(f"deadlock: {' -> '.join(map(repr, cycle))}")
        self.tx_id = tx_id
        self.cycle = cycle


class LockTimeout(MVTLError):
    """A lock wait exceeded its timeout (2PL-style deadlock prevention)."""


class PolicyError(MVTLError):
    """A policy violated an engine invariant (e.g. picked an unlocked
    commit timestamp)."""
