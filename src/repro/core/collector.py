"""Background garbage collection for the centralized engine.

Algorithm 1 makes commit-time GC optional: "If the algorithm skips garbage
collection on commit, garbage collection can be invoked any time later in
the background."  :class:`BackgroundCollector` is that later-in-the-
background path for policies that skip eager collection (MVTL-TO keeps its
locks; MVTL-Pref too): it tracks transactions as they finish and collects
them after a grace period, plus purges old versions — the centralized
analogue of the distributed timestamp service (§6, §8.1).

Note the semantic consequence the paper studies: collecting *aborted*
transactions' locks promptly is exactly what distinguishes MVTL-Ghostbuster
from MVTL-TO, so a collector with ``collect_aborted=True`` turns TO's ghost
aborts off — the knob is exposed for experiments.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from .timestamp import Timestamp
from .transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from .engine import MVTLEngine

__all__ = ["BackgroundCollector"]


class BackgroundCollector:
    """Deferred lock GC + version purging for an :class:`MVTLEngine`.

    Use either programmatically (:meth:`collect_now`) or as a daemon thread
    (:meth:`start` / :meth:`stop`).

    Parameters
    ----------
    engine:
        The engine to collect.
    grace:
        Seconds a finished transaction's locks are left in place before
        collection (so late readers of its effects are undisturbed).
    collect_aborted:
        Whether aborted transactions are collected too.  True removes
        ghost aborts (§5.5); False preserves MVTO+-faithful behaviour.
    purge_horizon:
        If set, versions older than ``now - purge_horizon`` (by commit
        timestamp value) are purged on every sweep (§6).
    """

    def __init__(self, engine: "MVTLEngine", *, grace: float = 0.0,
                 collect_aborted: bool = True,
                 purge_horizon: float | None = None) -> None:
        self.engine = engine
        self.grace = grace
        self.collect_aborted = collect_aborted
        self.purge_horizon = purge_horizon
        self._lock = threading.Lock()
        self._finished: list[tuple[float, Transaction]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.stats = {"collected": 0, "purged_versions": 0}

    # -- registration -----------------------------------------------------------

    def note_finished(self, tx: Transaction) -> None:
        """Tell the collector that ``tx`` ended (commit or abort)."""
        if tx.is_active:
            raise ValueError("transaction is still active")
        with self._lock:
            self._finished.append((time.monotonic(), tx))

    # -- collection ---------------------------------------------------------------

    def collect_now(self, now: float | None = None) -> int:
        """Collect every finished transaction past the grace period.

        Returns the number of transactions collected.
        """
        now = time.monotonic() if now is None else now
        ready: list[Transaction] = []
        with self._lock:
            keep: list[tuple[float, Transaction]] = []
            for when, tx in self._finished:
                if now - when < self.grace:
                    keep.append((when, tx))
                elif tx.aborted and not self.collect_aborted:
                    pass  # drop from tracking, never collect
                else:
                    ready.append(tx)
            self._finished = keep
        for tx in ready:
            self.engine.gc(tx)
        self.stats["collected"] += len(ready)
        if self.purge_horizon is not None:
            bound_value = self.engine.clock.now() - self.purge_horizon
            # Route through the engine: whole-store purging must hold every
            # stripe so it cannot race concurrent commit-time installs.
            purged = self.engine.purge_versions_before(
                Timestamp(bound_value, -(2**31)))
            self.stats["purged_versions"] += purged
        return len(ready)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._finished)

    # -- daemon mode ---------------------------------------------------------------

    def start(self, period: float = 1.0) -> None:
        """Run :meth:`collect_now` every ``period`` seconds in a daemon
        thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("collector already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(period):
                self.collect_now()

        self._thread = threading.Thread(target=loop, daemon=True,
                                        name="mvtl-collector")
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
