"""Transaction objects shared by the centralized engines.

A :class:`Transaction` carries the read-set, write-set and status of
Algorithm 1, plus a free-form :attr:`Transaction.state` namespace where the
active policy keeps its per-transaction variables (``PrefTS``, ``PossTS``,
``TS`` intervals, priority flags, ...).
"""

from __future__ import annotations

import enum
from types import SimpleNamespace
from typing import Any, Hashable

from .timestamp import Timestamp

__all__ = ["TxStatus", "Transaction"]


class TxStatus(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One client transaction (Algorithm 1 state).

    Attributes
    ----------
    id:
        Globally unique transaction identifier; also the lock owner id.
    pid:
        Id of the issuing process; appended to clock values to build unique
        timestamps (§4.1).
    readset:
        ``[(key, tr)]`` — keys read and the timestamp of the version
        observed, in order.  Needed both for commit (which timestamps must
        be locked) and GC (which read-locks to freeze).
    writeset:
        ``{key: value}`` — deferred writes, exposed only at commit.
    commit_ts:
        Serialization timestamp once committed, else None.
    state:
        Policy-private namespace.
    """

    __slots__ = ("id", "pid", "readset", "writeset", "status", "commit_ts",
                 "abort_reason", "state", "priority")

    def __init__(self, tx_id: Hashable, pid: int = 0,
                 priority: bool = False) -> None:
        self.id = tx_id
        self.pid = pid
        self.priority = priority
        self.readset: list[tuple[Hashable, Timestamp]] = []
        self.writeset: dict[Hashable, Any] = {}
        self.status = TxStatus.ACTIVE
        self.commit_ts: Timestamp | None = None
        self.abort_reason: str | None = None
        self.state = SimpleNamespace()

    # -- convenience ---------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.status is TxStatus.ACTIVE

    @property
    def committed(self) -> bool:
        return self.status is TxStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status is TxStatus.ABORTED

    def read_keys(self) -> list[Hashable]:
        seen: dict[Hashable, None] = {}
        for key, _tr in self.readset:
            seen.setdefault(key, None)
        return list(seen)

    def __repr__(self) -> str:
        return (f"<Transaction {self.id!r} {self.status.value}"
                f"{' prio' if self.priority else ''}>")
