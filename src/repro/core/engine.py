"""The generic MVTL engine — Algorithm 1, centralized version.

This engine is the paper's §4 algorithm, parameterized by a
:class:`~repro.core.policy.MVTLPolicy` (Algorithm 2).  It is thread-safe and
genuinely concurrent: any number of threads may run transactions against one
engine; blocking lock acquisition parks the caller on a condition variable
and wakes it on every lock release/freeze, with wait-for-graph deadlock
detection (§4.3).

Safety is enforced *in the engine*, independent of the policy (this is what
makes Theorem 1 hold for arbitrary policies):

* commit computes the candidate set ``T`` from the locks actually held
  (Algorithm 1 line 13).  For each read-set entry ``(k, tr)`` only the
  *contiguous* lock coverage starting immediately after ``tr`` counts — a
  read lock with a hole above the version it protects would let another
  transaction slip a version into the hole;
* the policy's chosen commit timestamp is validated to be a member of ``T``;
* committed write locks and the read-lock prefix up to the commit timestamp
  are frozen (never released), sealing the serialization decision.

The distributed version of the engine lives in :mod:`repro.dist`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Hashable

from ..clocks.clock import Clock, LogicalClock
from ..obs.trace import NULL_TRACER
from .deadlock import WaitForGraph
from .exceptions import (AbortReason, DeadlockError, PolicyError,
                         TransactionAborted, TransactionStateError)
from .intervals import EMPTY_SET, IntervalSet, TsInterval
from .locks import Conflict, LockMode, LockTable
from .policy import MVTLPolicy
from .timestamp import TS_ZERO, Timestamp
from .transaction import Transaction, TxStatus
from .versions import VersionStore

__all__ = ["MVTLEngine", "EngineAcquireResult"]


@dataclass(frozen=True, slots=True)
class EngineAcquireResult:
    """Outcome of :meth:`MVTLEngine.acquire`.

    ``acquired`` is everything newly granted during the call (possibly over
    several wait rounds); ``conflicts`` are the holds still blocking the
    un-granted remainder at exit; ``timed_out`` reports a wait timeout.
    """

    acquired: IntervalSet
    conflicts: tuple[Conflict, ...]
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.timed_out

    @property
    def frozen_conflicts(self) -> tuple[Conflict, ...]:
        return tuple(c for c in self.conflicts if c.frozen)


class MVTLEngine:
    """Centralized, thread-safe generic MVTL transactional engine.

    Parameters
    ----------
    policy:
        The locking policy (one of :mod:`repro.policies`, or custom).
    clock:
        Clock supplying timestamp *values*; defaults to a shared
        :class:`~repro.clocks.clock.LogicalClock` (perfectly synchronized).
        Per-process clocks can be injected via ``clock_for_pid``.
    clock_for_pid:
        Optional ``pid -> Clock`` mapping for modelling unsynchronized
        per-process clocks (serial-abort experiments, §5.3).
    default_timeout:
        Upper bound in seconds for any single blocking lock wait; ``None``
        waits forever (deadlock detection still applies).
    history:
        Optional recorder with ``begin/read/commit/abort`` callbacks (see
        :mod:`repro.verify.history`) used by the serializability checker.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; defaults to the no-op
        :data:`~repro.obs.trace.NULL_TRACER`, in which case every hook is
        a single attribute check.  Events are stamped with the tracer's
        own clock (``perf_counter`` unless overridden).
    """

    def __init__(self, policy: MVTLPolicy, clock: Clock | None = None, *,
                 clock_for_pid: Callable[[int], Clock] | None = None,
                 default_timeout: float | None = 10.0,
                 history: Any | None = None,
                 tracer: Any | None = None) -> None:
        self.policy = policy
        self.clock = clock if clock is not None else LogicalClock()
        self._clock_for_pid = clock_for_pid
        self.default_timeout = default_timeout
        self.history = history
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = VersionStore()
        self.locks = LockTable()
        self._cond = threading.Condition(threading.RLock())
        self._waits = WaitForGraph()
        self._tx_counter = count(1)
        # Statistics for benchmarks/tests.
        self.stats = {"commits": 0, "aborts": 0, "deadlocks": 0,
                      "lock_timeouts": 0}

    # ------------------------------------------------------------------
    # Transaction interface (begin / read / write / commit)
    # ------------------------------------------------------------------

    def begin(self, pid: int = 0, priority: bool = False) -> Transaction:
        """Start a transaction (Algorithm 1 ``begin``)."""
        tx = Transaction(next(self._tx_counter), pid=pid, priority=priority)
        self.policy.on_begin(self, tx)
        if self.history is not None:
            self.history.record_begin(tx.id)
        if self.tracer.enabled:
            self.tracer.begin(tx.id, pid=pid)
        return tx

    def read(self, tx: Transaction, key: Hashable) -> Any:
        """Read ``key`` within ``tx`` (Algorithm 1 ``read``).

        Returns the committed value of the version the policy selected
        (possibly ``BOTTOM``), or the transaction's own pending write if it
        wrote the key earlier (read-your-writes; the paper leaves this case
        open, and serializability is unaffected because the transaction's
        commit point carries its own write).

        Raises :class:`TransactionAborted` if the read cannot be served
        (purged version, lock timeout, deadlock victim).
        """
        self._check_active(tx)
        if key in tx.writeset:
            return tx.writeset[key]
        try:
            version = self.policy.read_locks(self, tx, key)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self.stats["deadlocks"] += 1
            raise TransactionAborted(tx.id, AbortReason.DEADLOCK) from None
        if version is None:
            self._abort(tx, AbortReason.READ_FAILED)
            raise TransactionAborted(tx.id, AbortReason.READ_FAILED)
        tx.readset.append((key, version.ts))
        if self.history is not None:
            self.history.record_read(tx.id, key, version.ts)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=version.ts)
        return version.value

    def write(self, tx: Transaction, key: Hashable, value: Any) -> None:
        """Buffer a write of ``value`` to ``key`` (Algorithm 1 ``write``)."""
        self._check_active(tx)
        try:
            self.policy.write_locks(self, tx, key)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self.stats["deadlocks"] += 1
            raise TransactionAborted(tx.id, AbortReason.DEADLOCK) from None
        tx.writeset[key] = value
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)

    def commit(self, tx: Transaction) -> bool:
        """Try to commit ``tx`` (Algorithm 1 ``commit``).

        Returns True on commit, False on abort (the transaction is finished
        either way).
        """
        self._check_active(tx)
        try:
            self.policy.commit_locks(self, tx)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self.stats["deadlocks"] += 1
            return False
        with self._cond:
            candidates = self._candidates(tx)
            commit_ts = (self.policy.commit_ts(self, tx, candidates)
                         if candidates else None)
            if commit_ts is None:
                self._abort_locked(tx, AbortReason.NO_COMMON_TIMESTAMP)
                if self.policy.commit_gc(self, tx):
                    self.gc(tx)
                return False
            if not candidates.contains(commit_ts):
                self._abort_locked(tx, AbortReason.NO_COMMON_TIMESTAMP)
                raise PolicyError(
                    f"policy {self.policy.name} picked commit timestamp "
                    f"{commit_ts!r} outside the locked candidate set")
            point = TsInterval.point(commit_ts)
            for key, value in tx.writeset.items():
                self.locks.freeze(tx.id, key, LockMode.WRITE, point)
                self.store.install(key, commit_ts, value)
                if self.tracer.enabled:
                    self.tracer.freeze(tx.id, key, LockMode.WRITE.value,
                                       span=point)
            tx.commit_ts = commit_ts
            tx.status = TxStatus.COMMITTED
            self.stats["commits"] += 1
            if self.history is not None:
                self.history.record_commit(tx.id, commit_ts,
                                           tuple(tx.writeset))
            if self.tracer.enabled:
                self.tracer.commit(tx.id, ts=commit_ts)
            self._cond.notify_all()
        if self.policy.commit_gc(self, tx):
            self.gc(tx)
        return True

    def abort(self, tx: Transaction,
              reason: str = AbortReason.USER_ABORT) -> None:
        """Voluntarily abort an active transaction."""
        self._check_active(tx)
        self._abort(tx, AbortReason.of(reason))

    def gc(self, tx: Transaction) -> None:
        """Garbage-collect ``tx``'s locks after it ended (Algorithm 1 ``gc``).

        For a committed transaction: freeze the read-locks between each read
        version and the commit timestamp, then release everything unfrozen.
        May be called eagerly at commit (``commit-gc``) or later in the
        background.
        """
        if tx.is_active:
            raise TransactionStateError("gc() on an active transaction")
        with self._cond:
            if tx.committed and tx.commit_ts is not None:
                for key, tr in tx.readset:
                    if tr < tx.commit_ts:
                        span = TsInterval.open_closed(tr, tx.commit_ts)
                        self.locks.freeze(tx.id, key, LockMode.READ, span)
                        if self.tracer.enabled:
                            self.tracer.freeze(tx.id, key,
                                               LockMode.READ.value,
                                               span=span)
            self.locks.release_all_unfrozen(tx.id)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Primitives used by policies
    # ------------------------------------------------------------------

    def now(self, tx: Transaction | None = None) -> float:
        """Read the (per-process) clock."""
        if tx is not None and self._clock_for_pid is not None:
            return self._clock_for_pid(tx.pid).now()
        return self.clock.now()

    def make_ts(self, tx: Transaction, value: float | None = None) -> Timestamp:
        """Build a unique timestamp for ``tx`` (clock value + pid, §4.1)."""
        if value is None:
            value = self.now(tx)
        return Timestamp(value, tx.pid)

    def acquire(self, tx: Transaction, key: Hashable, mode: LockMode,
                want: TsInterval | IntervalSet, *, wait: bool = True,
                stop_on_frozen: bool = True,
                timeout: float | None = None) -> EngineAcquireResult:
        """Acquire locks on ``want``, optionally waiting for unfrozen holders.

        * ``wait=False``: single attempt; grant the conflict-free part and
          report the rest ("without waiting if ... locked").
        * ``wait=True, stop_on_frozen=True``: park until either everything
          is granted or a *frozen* conflict appears ("waiting if ...
          locked but not frozen"); frozen conflicts are returned for the
          caller to handle (retry with a newer version, or give up).
        * ``wait=True, stop_on_frozen=False``: frozen ranges are silently
          skipped (they can never be granted) and the call waits until the
          entire remainder is granted — the pessimistic/prioritizer idiom
          of locking "everything lockable up to +inf".

        Raises :class:`DeadlockError` if this wait would close a wait-for
        cycle (the caller is the victim).
        """
        if timeout is None:
            timeout = self.default_timeout
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        want_set = (IntervalSet.from_interval(want)
                    if isinstance(want, TsInterval) else want)
        if not self.tracer.enabled:
            return self._acquire_loop(tx, key, mode, want_set, wait,
                                      stop_on_frozen, deadline, None)
        waited = [0.0]
        result: EngineAcquireResult | None = None
        try:
            result = self._acquire_loop(tx, key, mode, want_set, wait,
                                        stop_on_frozen, deadline, waited)
            return result
        finally:
            # One lock-acquire span per call (requested vs granted), plus a
            # wait span if any parking happened; a None result means the
            # call ended as a deadlock victim.
            self.tracer.lock_acquire(
                tx.id, key, mode.value, requested=want_set,
                granted=result.acquired if result is not None else None,
                conflicts=(len(result.conflicts) if result is not None
                           else None),
                timed_out=result.timed_out if result is not None else None,
                deadlock=result is None)
            if waited[0] > 0.0:
                self.tracer.wait(tx.id, key, dur=waited[0])

    def _acquire_loop(self, tx: Transaction, key: Hashable, mode: LockMode,
                      want_set: IntervalSet, wait: bool,
                      stop_on_frozen: bool, deadline: float | None,
                      waited: list[float] | None) -> EngineAcquireResult:
        acquired_total = EMPTY_SET
        skipped_frozen: tuple[Conflict, ...] = ()
        with self._cond:
            while True:
                result = self.locks.try_acquire(tx.id, key, mode, want_set)
                acquired_total = acquired_total.union(result.acquired)
                want_set = want_set.subtract(result.acquired)
                if not result.conflicts:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, skipped_frozen)
                frozen = tuple(c for c in result.conflicts if c.frozen)
                if frozen and stop_on_frozen:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, result.conflicts)
                if frozen:
                    # Skip permanently unavailable ranges (still reported).
                    skipped_frozen = skipped_frozen + frozen
                    for c in frozen:
                        want_set = want_set.subtract(c.interval)
                    if want_set.is_empty:
                        self._waits.clear(tx.id)
                        return EngineAcquireResult(acquired_total,
                                                   skipped_frozen)
                unfrozen = tuple(c for c in result.conflicts if not c.frozen)
                if not unfrozen:
                    continue  # only frozen conflicts, now skipped: retry
                if not wait:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, result.conflicts)
                holders = {c.holder for c in unfrozen}
                self._waits.set_waits(tx.id, holders)
                cycle = self._waits.find_cycle(tx.id)
                if cycle is not None:
                    self._waits.clear(tx.id)
                    raise DeadlockError(tx.id, cycle)
                remaining = (deadline - time.monotonic()
                             if deadline is not None else None)
                if remaining is not None and remaining <= 0:
                    self._waits.clear(tx.id)
                    self.stats["lock_timeouts"] += 1
                    return EngineAcquireResult(acquired_total,
                                               result.conflicts,
                                               timed_out=True)
                if waited is None:
                    self._cond.wait(timeout=min(remaining, 0.05)
                                    if remaining is not None else 0.05)
                else:
                    t0 = time.monotonic()
                    self._cond.wait(timeout=min(remaining, 0.05)
                                    if remaining is not None else 0.05)
                    waited[0] += time.monotonic() - t0

    def release(self, tx: Transaction, key: Hashable, mode: LockMode,
                span: TsInterval | IntervalSet) -> None:
        """Release ``tx``'s unfrozen locks on ``span``."""
        if isinstance(span, IntervalSet) and span.is_empty:
            return
        with self._cond:
            self.locks.release(tx.id, key, mode, span)
            self._cond.notify_all()

    def release_all_write_locks(self, tx: Transaction) -> None:
        """Back out of a failed commit-time write-lock pass (Alg. 3/8)."""
        with self._cond:
            for key in self.locks.keys_of(tx.id):
                state = self.locks.peek(key)
                if state is None:
                    continue
                held = state.held(tx.id, LockMode.WRITE)
                frozen = state.frozen(tx.id, LockMode.WRITE)
                releasable = held.subtract(frozen)
                if not releasable.is_empty:
                    state.release(tx.id, LockMode.WRITE, releasable)
            self._cond.notify_all()

    def frozen_write_ranges(self, key: Hashable) -> IntervalSet:
        """Union of all frozen write locks on ``key``."""
        with self._cond:
            state = self.locks.peek(key)
            return state.frozen_write_ranges() if state else EMPTY_SET

    def held_union(self, tx: Transaction, key: Hashable) -> IntervalSet:
        """Timestamps ``tx`` holds in either mode on ``key``."""
        with self._cond:
            return (self.locks.held(tx.id, key, LockMode.READ)
                    .union(self.locks.held(tx.id, key, LockMode.WRITE)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_active(self, tx: Transaction) -> None:
        if not tx.is_active:
            raise TransactionStateError(
                f"operation on finished transaction {tx!r}")

    def _abort(self, tx: Transaction, reason: str) -> None:
        """Mark ``tx`` aborted and run GC if the policy asks for it.

        Crucially, an aborted transaction's locks are *kept* unless the
        policy garbage-collects (Algorithm 1 line 21 runs for both
        outcomes).  Keeping them is what makes MVTL-TO faithfully emulate
        MVTO+'s persistent read-timestamps — including its ghost aborts —
        while MVTL-Ghostbuster differs only in always collecting.
        """
        with self._cond:
            self._abort_locked(tx, reason)
        if self.policy.commit_gc(self, tx):
            self.gc(tx)

    def _abort_locked(self, tx: Transaction, reason: str) -> None:
        tx.status = TxStatus.ABORTED
        tx.abort_reason = AbortReason.of(reason)
        self.stats["aborts"] += 1
        self._waits.clear(tx.id)
        if self.history is not None:
            self.history.record_abort(tx.id, reason)
        if self.tracer.enabled:
            self.tracer.abort(tx.id, reason=reason)
        self._cond.notify_all()

    def _candidates(self, tx: Transaction) -> IntervalSet:
        """Algorithm 1 line 13: the set T of commit-viable timestamps.

        Read-set keys contribute their *contiguous* lock coverage starting
        just above the version read; write-set keys contribute the held
        write-lock set.  TS_ZERO is excluded: every key's initial version
        lives there, so it can never be a commit point.  Caller must hold
        the engine lock.
        """
        cand = IntervalSet.from_interval(TsInterval.after(TS_ZERO))
        for key, tr in tx.readset:
            cover = self._contiguous_cover(tx, key, tr)
            cand = cand.intersect(cover)
            if cand.is_empty:
                return cand
        for key in tx.writeset:
            cand = cand.intersect(self.locks.held(tx.id, key, LockMode.WRITE))
            if cand.is_empty:
                return cand
        return cand

    def _contiguous_cover(self, tx: Transaction, key: Hashable,
                          tr: Timestamp) -> IntervalSet:
        held = (self.locks.held(tx.id, key, LockMode.READ)
                .union(self.locks.held(tx.id, key, LockMode.WRITE)))
        for piece in held:
            if piece.contains_just_after(tr):
                clipped = piece.intersect(TsInterval.after(tr))
                if clipped is not None:
                    return IntervalSet.from_interval(clipped)
        return EMPTY_SET

    # -- metrics --------------------------------------------------------------

    def lock_record_count(self) -> int:
        with self._cond:
            return self.locks.total_record_count()

    def version_count(self) -> int:
        with self._cond:
            return self.store.version_count()
