"""The generic MVTL engine — Algorithm 1, centralized version.

This engine is the paper's §4 algorithm, parameterized by a
:class:`~repro.core.policy.MVTLPolicy` (Algorithm 2).  It is thread-safe and
genuinely concurrent: any number of threads may run transactions against one
engine; blocking lock acquisition parks the caller on a condition variable
and wakes it on every lock release/freeze, with wait-for-graph deadlock
detection (§4.3).

Safety is enforced *in the engine*, independent of the policy (this is what
makes Theorem 1 hold for arbitrary policies):

* commit computes the candidate set ``T`` from the locks actually held
  (Algorithm 1 line 13).  For each read-set entry ``(k, tr)`` only the
  *contiguous* lock coverage starting immediately after ``tr`` counts — a
  read lock with a hole above the version it protects would let another
  transaction slip a version into the hole;
* the policy's chosen commit timestamp is validated to be a member of ``T``;
* committed write locks and the read-lock prefix up to the commit timestamp
  are frozen (never released), sealing the serialization decision.

Synchronization is *striped* (the paper's point that MVTL decentralizes
synchronization — per-object timestamp locks, no global lock): the key space
is hashed onto ``stripes`` independent mutex+condition pairs, so acquires on
keys in different stripes never contend and a release only wakes waiters of
the released key's stripe.  The locking discipline:

* per-key operations (acquire/release/frozen-range queries) hold exactly the
  key's stripe;
* cross-key operations (the commit freeze pass, GC's freeze+release sweep,
  whole-table metrics) collect the stripes of every key involved and acquire
  them in ascending stripe-index order — a global canonical order, so two
  cross-key operations can never deadlock against each other, and a
  cross-key operation never acquires a further stripe while holding any;
* the :class:`~repro.core.deadlock.WaitForGraph` and the stats dict carry
  their own leaf mutexes (taken last, released before any wait);
* waiters poll (condition-wait with a small quantum) in addition to being
  notified, so a wakeup missed across stripes costs latency, never liveness.

The distributed version of the engine lives in :mod:`repro.dist`.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Hashable, Iterable, Iterator

from ..clocks.clock import Clock, LogicalClock
from ..obs.trace import NULL_TRACER
from .deadlock import WaitForGraph
from .exceptions import (AbortReason, DeadlockError, PolicyError,
                         TransactionAborted, TransactionStateError)
from .intervals import EMPTY_SET, IntervalSet, TsInterval
from .locks import Conflict, LockMode, LockTable
from .policy import MVTLPolicy
from .timestamp import TS_ZERO, Timestamp
from .transaction import Transaction, TxStatus
from .versions import VersionStore

__all__ = ["MVTLEngine", "EngineAcquireResult", "DEFAULT_STRIPES"]

#: Default number of lock stripes.  Plenty for the thread counts the paper's
#: figures sweep (up to ~32 clients) while keeping all-stripe operations
#: (metrics, version purging) cheap.
DEFAULT_STRIPES = 16

#: Sentinel distinguishing "timeout not passed" from an explicit
#: ``timeout=None`` ("wait forever") in :meth:`MVTLEngine.acquire`.
_UNSET_TIMEOUT: Any = object()

#: Poll quantum for condition waits: an upper bound on how long a waiter can
#: oversleep a wakeup it missed, and the cadence of deadlock re-checks.
_WAIT_QUANTUM = 0.05


@dataclass(frozen=True, slots=True)
class EngineAcquireResult:
    """Outcome of :meth:`MVTLEngine.acquire`.

    ``acquired`` is everything newly granted during the call (possibly over
    several wait rounds); ``conflicts`` are the holds still blocking the
    un-granted remainder at exit; ``timed_out`` reports a wait timeout.
    """

    acquired: IntervalSet
    conflicts: tuple[Conflict, ...]
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.timed_out

    @property
    def frozen_conflicts(self) -> tuple[Conflict, ...]:
        return tuple(c for c in self.conflicts if c.frozen)


class MVTLEngine:
    """Centralized, thread-safe generic MVTL transactional engine.

    Parameters
    ----------
    policy:
        The locking policy (one of :mod:`repro.policies`, or custom).
    clock:
        Clock supplying timestamp *values*; defaults to a shared
        :class:`~repro.clocks.clock.LogicalClock` (perfectly synchronized).
        Per-process clocks can be injected via ``clock_for_pid``.
    clock_for_pid:
        Optional ``pid -> Clock`` mapping for modelling unsynchronized
        per-process clocks (serial-abort experiments, §5.3).
    default_timeout:
        Upper bound in seconds for any single blocking lock wait; ``None``
        waits forever (deadlock detection still applies).
    stripes:
        Number of lock stripes.  Keys map to stripes by ``hash(key) %
        stripes``; acquires on keys in different stripes proceed fully in
        parallel.  ``1`` recovers the old single-condition behaviour.
    history:
        Optional recorder with ``begin/read/commit/abort`` callbacks (see
        :mod:`repro.verify.history`) used by the serializability checker.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; defaults to the no-op
        :data:`~repro.obs.trace.NULL_TRACER`, in which case every hook is
        a single attribute check.  Events are stamped with the tracer's
        own clock (``perf_counter`` unless overridden).
    """

    def __init__(self, policy: MVTLPolicy, clock: Clock | None = None, *,
                 clock_for_pid: Callable[[int], Clock] | None = None,
                 default_timeout: float | None = 10.0,
                 stripes: int = DEFAULT_STRIPES,
                 history: Any | None = None,
                 tracer: Any | None = None) -> None:
        self.policy = policy
        self.clock = clock if clock is not None else LogicalClock()
        self._clock_for_pid = clock_for_pid
        self.default_timeout = default_timeout
        self.history = history
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = VersionStore()
        self.locks = LockTable()
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.num_stripes = stripes
        # key -> stripe index memo.  crc32-of-str per acquire is measurable
        # on the hot path; the digest is deterministic so caching cannot
        # change placement.  Bounded by the workload's key space.  Plain
        # dict ops are atomic under the GIL; a racing recompute stores the
        # same value.
        self._stripe_cache: dict[Hashable, int] = {}
        self._stripes = tuple(threading.Condition(threading.RLock())
                              for _ in range(stripes))
        self._all_stripe_indices = tuple(range(stripes))
        # Per-stripe contention counters, each mutated only under its
        # stripe's lock; cross-stripe reads may be momentarily stale.
        self._stripe_waits = [0] * stripes
        self._stripe_conflicts = [0] * stripes
        self._waits = WaitForGraph()
        self._tx_counter = count(1)
        # Statistics for benchmarks/tests; guarded by their own leaf mutex.
        self.stats = {"commits": 0, "aborts": 0, "deadlocks": 0,
                      "lock_timeouts": 0}
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Stripe plumbing
    # ------------------------------------------------------------------

    def stripe_of(self, key: Hashable) -> int:
        """The stripe index guarding ``key``.

        Uses a stable digest rather than ``hash()``: Python randomizes
        string hashes per process, and stripe placement must not change
        between runs (seeded runs are required to be bit-reproducible).
        """
        idx = self._stripe_cache.get(key)
        if idx is None:
            idx = zlib.crc32(str(key).encode()) % self.num_stripes
            self._stripe_cache[key] = idx
        return idx

    def _stripe_indices(self, keys: Iterable[Hashable]) -> tuple[int, ...]:
        """Ascending, deduplicated stripe indices for ``keys``."""
        return tuple(sorted({self.stripe_of(k) for k in keys}))

    @contextmanager
    def _locked_stripes(self, indices: tuple[int, ...]) -> Iterator[None]:
        """Hold the given stripes, acquired in canonical (ascending) order.

        ``indices`` must be sorted ascending and deduplicated
        (:meth:`_stripe_indices` guarantees this) — the canonical order is
        what makes concurrent cross-key operations deadlock-free.
        """
        taken = 0
        try:
            for i in indices:
                self._stripes[i].acquire()
                taken += 1
            yield
        finally:
            for i in reversed(indices[:taken]):
                self._stripes[i].release()

    def _notify_stripes(self, indices: tuple[int, ...]) -> None:
        """Wake waiters of stripes the caller currently holds."""
        for i in indices:
            self._stripes[i].notify_all()

    def _bump(self, stat: str, n: int = 1) -> None:
        with self._stats_lock:
            self.stats[stat] += n

    # ------------------------------------------------------------------
    # Transaction interface (begin / read / write / commit)
    # ------------------------------------------------------------------

    def begin(self, pid: int = 0, priority: bool = False) -> Transaction:
        """Start a transaction (Algorithm 1 ``begin``)."""
        tx = Transaction(next(self._tx_counter), pid=pid, priority=priority)
        self.policy.on_begin(self, tx)
        if self.history is not None:
            self.history.record_begin(tx.id)
        if self.tracer.enabled:
            self.tracer.begin(tx.id, pid=pid)
        return tx

    def read(self, tx: Transaction, key: Hashable) -> Any:
        """Read ``key`` within ``tx`` (Algorithm 1 ``read``).

        Returns the committed value of the version the policy selected
        (possibly ``BOTTOM``), or the transaction's own pending write if it
        wrote the key earlier (read-your-writes; the paper leaves this case
        open, and serializability is unaffected because the transaction's
        commit point carries its own write).

        Raises :class:`TransactionAborted` if the read cannot be served
        (purged version, lock timeout, deadlock victim).
        """
        self._check_active(tx)
        if key in tx.writeset:
            return tx.writeset[key]
        try:
            version = self.policy.read_locks(self, tx, key)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self._bump("deadlocks")
            raise TransactionAborted(tx.id, AbortReason.DEADLOCK) from None
        if version is None:
            self._abort(tx, AbortReason.READ_FAILED)
            raise TransactionAborted(tx.id, AbortReason.READ_FAILED)
        tx.readset.append((key, version.ts))
        if self.history is not None:
            self.history.record_read(tx.id, key, version.ts)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=version.ts)
        return version.value

    def write(self, tx: Transaction, key: Hashable, value: Any) -> None:
        """Buffer a write of ``value`` to ``key`` (Algorithm 1 ``write``)."""
        self._check_active(tx)
        try:
            self.policy.write_locks(self, tx, key)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self._bump("deadlocks")
            raise TransactionAborted(tx.id, AbortReason.DEADLOCK) from None
        tx.writeset[key] = value
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)

    def commit(self, tx: Transaction) -> bool:
        """Try to commit ``tx`` (Algorithm 1 ``commit``).

        Returns True on commit, False on abort (the transaction is finished
        either way).  Raises :class:`PolicyError` — after aborting the
        transaction and garbage-collecting its locks, if the policy asks
        for commit-time GC — when the policy picks a commit timestamp
        outside the locked candidate set.
        """
        self._check_active(tx)
        try:
            self.policy.commit_locks(self, tx)
        except DeadlockError:
            self._abort(tx, AbortReason.DEADLOCK)
            self._bump("deadlocks")
            return False
        keys = set(tx.writeset)
        keys.update(k for k, _ in tx.readset)
        indices = self._stripe_indices(keys)
        committed = False
        policy_error: PolicyError | None = None
        with self._locked_stripes(indices):
            candidates = self._candidates(tx)
            commit_ts = (self.policy.commit_ts(self, tx, candidates)
                         if candidates else None)
            if commit_ts is None:
                self._finish_abort(tx, AbortReason.NO_COMMON_TIMESTAMP)
            elif not candidates.contains(commit_ts):
                self._finish_abort(tx, AbortReason.NO_COMMON_TIMESTAMP)
                policy_error = PolicyError(
                    f"policy {self.policy.name} picked commit timestamp "
                    f"{commit_ts!r} outside the locked candidate set")
            else:
                point = TsInterval.point(commit_ts)
                for key, value in tx.writeset.items():
                    self.locks.freeze(tx.id, key, LockMode.WRITE, point)
                    self.store.install(key, commit_ts, value)
                    if self.tracer.enabled:
                        self.tracer.freeze(tx.id, key, LockMode.WRITE.value,
                                           span=point)
                tx.commit_ts = commit_ts
                tx.status = TxStatus.COMMITTED
                self._bump("commits")
                if self.history is not None:
                    self.history.record_commit(tx.id, commit_ts,
                                               tuple(tx.writeset))
                if self.tracer.enabled:
                    self.tracer.commit(tx.id, ts=commit_ts)
                committed = True
                self._notify_stripes(indices)
        # GC re-acquires stripes, so it must run with none held; the
        # PolicyError surfaces only after the aborted transaction's
        # unfrozen locks are collected — other transactions must not be
        # left blocking on a dead owner while the caller handles the error.
        if self.policy.commit_gc(self, tx):
            self.gc(tx)
        self.policy.on_finish(self, tx)
        if policy_error is not None:
            raise policy_error
        return committed

    def abort(self, tx: Transaction,
              reason: str = AbortReason.USER_ABORT) -> None:
        """Voluntarily abort an active transaction."""
        self._check_active(tx)
        self._abort(tx, AbortReason.of(reason))

    def gc(self, tx: Transaction) -> None:
        """Garbage-collect ``tx``'s locks after it ended (Algorithm 1 ``gc``).

        For a committed transaction: freeze the read-locks between each read
        version and the commit timestamp, then release everything unfrozen.
        May be called eagerly at commit (``commit-gc``) or later in the
        background.
        """
        if tx.is_active:
            raise TransactionStateError("gc() on an active transaction")
        freeze_reads = tx.committed and tx.commit_ts is not None
        keys = set(self.locks.keys_of(tx.id))
        if freeze_reads:
            keys.update(k for k, _ in tx.readset)
        indices = self._stripe_indices(keys)
        with self._locked_stripes(indices):
            if freeze_reads:
                for key, tr in tx.readset:
                    if tr < tx.commit_ts:
                        span = TsInterval.open_closed(tr, tx.commit_ts)
                        self.locks.freeze(tx.id, key, LockMode.READ, span)
                        if self.tracer.enabled:
                            self.tracer.freeze(tx.id, key,
                                               LockMode.READ.value,
                                               span=span)
            # Seal rather than merely release: folding the frozen remainder
            # into each key's ownerless aggregate keeps conflict checks
            # O(active transactions) — dead-owner records otherwise pile up
            # and every read's frozen_write_ranges() scan grows unboundedly.
            self.locks.seal_all(tx.id)
            self._notify_stripes(indices)

    # ------------------------------------------------------------------
    # Primitives used by policies
    # ------------------------------------------------------------------

    def now(self, tx: Transaction | None = None) -> float:
        """Read the (per-process) clock."""
        if tx is not None and self._clock_for_pid is not None:
            return self._clock_for_pid(tx.pid).now()
        return self.clock.now()

    def make_ts(self, tx: Transaction, value: float | None = None) -> Timestamp:
        """Build a unique timestamp for ``tx`` (clock value + pid, §4.1)."""
        if value is None:
            value = self.now(tx)
        return Timestamp(value, tx.pid)

    def acquire(self, tx: Transaction, key: Hashable, mode: LockMode,
                want: TsInterval | IntervalSet, *, wait: bool = True,
                stop_on_frozen: bool = True,
                timeout: float | None = _UNSET_TIMEOUT) -> EngineAcquireResult:
        """Acquire locks on ``want``, optionally waiting for unfrozen holders.

        * ``wait=False``: single attempt; grant the conflict-free part and
          report the rest ("without waiting if ... locked").
        * ``wait=True, stop_on_frozen=True``: park until either everything
          is granted or a *frozen* conflict appears ("waiting if ...
          locked but not frozen"); frozen conflicts are returned for the
          caller to handle (retry with a newer version, or give up).
        * ``wait=True, stop_on_frozen=False``: frozen ranges are silently
          skipped (they can never be granted) and the call waits until the
          entire remainder is granted — the pessimistic/prioritizer idiom
          of locking "everything lockable up to +inf".

        ``timeout`` bounds the wait: not passed means ``default_timeout``,
        an explicit ``None`` waits forever (deadlock detection and the
        waiter's poll loop still apply).

        Raises :class:`DeadlockError` if this wait would close a wait-for
        cycle (the caller is the victim).
        """
        if timeout is _UNSET_TIMEOUT:
            timeout = self.default_timeout
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        want_set = (IntervalSet.from_interval(want)
                    if isinstance(want, TsInterval) else want)
        if not self.tracer.enabled:
            return self._acquire_loop(tx, key, mode, want_set, wait,
                                      stop_on_frozen, deadline, None)
        waited = [0.0]
        result: EngineAcquireResult | None = None
        try:
            result = self._acquire_loop(tx, key, mode, want_set, wait,
                                        stop_on_frozen, deadline, waited)
            return result
        finally:
            # One lock-acquire span per call (requested vs granted), plus a
            # wait span if any parking happened; a None result means the
            # call ended as a deadlock victim.
            self.tracer.lock_acquire(
                tx.id, key, mode.value, requested=want_set,
                granted=result.acquired if result is not None else None,
                conflicts=(len(result.conflicts) if result is not None
                           else None),
                timed_out=result.timed_out if result is not None else None,
                deadlock=result is None)
            if waited[0] > 0.0:
                self.tracer.wait(tx.id, key, dur=waited[0])

    def _acquire_loop(self, tx: Transaction, key: Hashable, mode: LockMode,
                      want_set: IntervalSet, wait: bool,
                      stop_on_frozen: bool, deadline: float | None,
                      waited: list[float] | None) -> EngineAcquireResult:
        acquired_total = EMPTY_SET
        skipped_frozen: tuple[Conflict, ...] = ()
        idx = self.stripe_of(key)
        cond = self._stripes[idx]
        with cond:
            while True:
                result = self.locks.try_acquire(tx.id, key, mode, want_set)
                acquired_total = acquired_total.union(result.acquired)
                want_set = want_set.subtract(result.acquired)
                if not result.conflicts:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, skipped_frozen)
                self._stripe_conflicts[idx] += 1
                frozen = tuple(c for c in result.conflicts if c.frozen)
                if frozen and stop_on_frozen:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, result.conflicts)
                if frozen:
                    # Skip permanently unavailable ranges (still reported).
                    skipped_frozen = skipped_frozen + frozen
                    for c in frozen:
                        want_set = want_set.subtract(c.interval)
                    if want_set.is_empty:
                        self._waits.clear(tx.id)
                        return EngineAcquireResult(acquired_total,
                                                   skipped_frozen)
                unfrozen = tuple(c for c in result.conflicts if not c.frozen)
                if not unfrozen:
                    continue  # only frozen conflicts, now skipped: retry
                if not wait:
                    self._waits.clear(tx.id)
                    return EngineAcquireResult(acquired_total, result.conflicts)
                holders = {c.holder for c in unfrozen}
                cycle = self._waits.set_waits_and_check(tx.id, holders)
                if cycle is not None:
                    self._waits.clear(tx.id)
                    raise DeadlockError(tx.id, cycle)
                remaining = (deadline - time.monotonic()
                             if deadline is not None else None)
                if remaining is not None and remaining <= 0:
                    self._waits.clear(tx.id)
                    self._bump("lock_timeouts")
                    return EngineAcquireResult(acquired_total,
                                               result.conflicts,
                                               timed_out=True)
                self._stripe_waits[idx] += 1
                quantum = (min(remaining, _WAIT_QUANTUM)
                           if remaining is not None else _WAIT_QUANTUM)
                if waited is None:
                    cond.wait(timeout=quantum)
                else:
                    t0 = time.monotonic()
                    cond.wait(timeout=quantum)
                    waited[0] += time.monotonic() - t0

    def release(self, tx: Transaction, key: Hashable, mode: LockMode,
                span: TsInterval | IntervalSet) -> None:
        """Release ``tx``'s unfrozen locks on ``span``."""
        if isinstance(span, IntervalSet) and span.is_empty:
            return
        cond = self._stripes[self.stripe_of(key)]
        with cond:
            self.locks.release(tx.id, key, mode, span)
            cond.notify_all()

    def freeze(self, tx: Transaction, key: Hashable, mode: LockMode,
               span: TsInterval | IntervalSet) -> None:
        """Freeze ``tx``'s ``mode`` locks on ``span`` and wake the stripe.

        The commit path freezes inline while holding its stripe set; this
        entry point serves policies, tools and tests that freeze outside a
        commit.
        """
        cond = self._stripes[self.stripe_of(key)]
        with cond:
            self.locks.freeze(tx.id, key, mode, span)
            cond.notify_all()

    def release_all_write_locks(self, tx: Transaction) -> None:
        """Back out of a failed commit-time write-lock pass (Alg. 3/8)."""
        keys = self.locks.keys_of(tx.id)
        indices = self._stripe_indices(keys)
        with self._locked_stripes(indices):
            for key in keys:
                state = self.locks.peek(key)
                if state is None:
                    continue
                held = state.held(tx.id, LockMode.WRITE)
                frozen = state.frozen(tx.id, LockMode.WRITE)
                releasable = held.subtract(frozen)
                if not releasable.is_empty:
                    state.release(tx.id, LockMode.WRITE, releasable)
            self._notify_stripes(indices)

    def frozen_write_ranges(self, key: Hashable) -> IntervalSet:
        """Union of all frozen write locks on ``key``."""
        with self._stripes[self.stripe_of(key)]:
            state = self.locks.peek(key)
            return state.frozen_write_ranges() if state else EMPTY_SET

    def latest_before(self, key: Hashable, ts: Timestamp) -> Any:
        """Latest version of ``key`` strictly below ``ts``, stripe-locked.

        Policies must use this rather than ``store.latest_before``:
        commit installs into a key's version chain under the key's stripe
        lock, and an unsynchronized bisect can catch the chain mid-insert
        (timestamps and values lists momentarily disagree in length).
        """
        with self._stripes[self.stripe_of(key)]:
            return self.store.latest_before(key, ts)

    def held_union(self, tx: Transaction, key: Hashable) -> IntervalSet:
        """Timestamps ``tx`` holds in either mode on ``key``."""
        with self._stripes[self.stripe_of(key)]:
            return (self.locks.held(tx.id, key, LockMode.READ)
                    .union(self.locks.held(tx.id, key, LockMode.WRITE)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_active(self, tx: Transaction) -> None:
        if not tx.is_active:
            raise TransactionStateError(
                f"operation on finished transaction {tx!r}")

    def _abort(self, tx: Transaction, reason: str) -> None:
        """Mark ``tx`` aborted and run GC if the policy asks for it.

        Crucially, an aborted transaction's locks are *kept* unless the
        policy garbage-collects (Algorithm 1 line 21 runs for both
        outcomes).  Keeping them is what makes MVTL-TO faithfully emulate
        MVTO+'s persistent read-timestamps — including its ghost aborts —
        while MVTL-Ghostbuster differs only in always collecting.
        """
        self._finish_abort(tx, reason)
        if self.policy.commit_gc(self, tx):
            self.gc(tx)
        self.policy.on_finish(self, tx)

    def _finish_abort(self, tx: Transaction, reason: str) -> None:
        """Abort bookkeeping: status, stats, wait edges, history, trace.

        Touches no lock-table state, so it is safe both inside a stripe
        block (commit's failure paths) and with no stripes held.  Lock
        release is GC's job; waiters blocked on this transaction poll, so
        they observe the release when it happens.
        """
        tx.status = TxStatus.ABORTED
        tx.abort_reason = AbortReason.of(reason)
        self._bump("aborts")
        self._waits.clear(tx.id)
        if self.history is not None:
            self.history.record_abort(tx.id, reason)
        if self.tracer.enabled:
            self.tracer.abort(tx.id, reason=reason)

    def _candidates(self, tx: Transaction) -> IntervalSet:
        """Algorithm 1 line 13: the set T of commit-viable timestamps.

        Read-set keys contribute their *contiguous* lock coverage starting
        just above the version read; write-set keys contribute the held
        write-lock set.  TS_ZERO is excluded: every key's initial version
        lives there, so it can never be a commit point.  Caller must hold
        the stripes of every readset/writeset key.
        """
        cand = IntervalSet.from_interval(TsInterval.after(TS_ZERO))
        for key, tr in tx.readset:
            cover = self._contiguous_cover(tx, key, tr)
            cand = cand.intersect(cover)
            if cand.is_empty:
                return cand
        for key in tx.writeset:
            cand = cand.intersect(self.locks.held(tx.id, key, LockMode.WRITE))
            if cand.is_empty:
                return cand
        return cand

    def _contiguous_cover(self, tx: Transaction, key: Hashable,
                          tr: Timestamp) -> IntervalSet:
        held = (self.locks.held(tx.id, key, LockMode.READ)
                .union(self.locks.held(tx.id, key, LockMode.WRITE)))
        for piece in held:
            if piece.contains_just_after(tr):
                clipped = piece.intersect(TsInterval.after(tr))
                if clipped is not None:
                    return IntervalSet.from_interval(clipped)
        return EMPTY_SET

    # -- metrics --------------------------------------------------------------

    def lock_record_count(self) -> int:
        with self._locked_stripes(self._all_stripe_indices):
            return self.locks.total_record_count()

    def version_count(self) -> int:
        with self._locked_stripes(self._all_stripe_indices):
            return self.store.version_count()

    def purge_versions_before(self, bound: Timestamp) -> int:
        """Purge old versions and their lock state (§6), stripe-safely.

        Lock records covering purged versions "can be discarded when the
        associated versions are purged" — dropping them is what bounds the
        sealed aggregates' size over a long run.  Background collectors
        must use this instead of calling ``store.purge_before`` directly:
        the whole-table iteration is only safe with every stripe held (no
        concurrent installs).
        """
        bound_iv = TsInterval.closed_open(Timestamp(float("-inf"), 0), bound)
        with self._locked_stripes(self._all_stripe_indices):
            purged = self.store.purge_before(bound)
            for key in self.locks.all_keys():
                self.locks.purge_below(key, bound_iv)
            return purged

    def stripe_contention(self) -> dict[str, tuple[int, ...]]:
        """Per-stripe contention counters since construction.

        ``waits[i]`` counts parked condition-waits on stripe ``i``;
        ``conflicts[i]`` counts acquire attempts on stripe ``i`` that found
        at least one conflicting hold.  Disjoint keysets that map to
        distinct stripes show zero in both.
        """
        return {"waits": tuple(self._stripe_waits),
                "conflicts": tuple(self._stripe_conflicts)}
