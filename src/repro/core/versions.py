"""Multiversion value store — the paper's ``Values[k, t]`` array.

Each key holds a timeline of committed versions ordered by timestamp, with an
initial version ``(TS_ZERO, BOTTOM)``.  Reads are *floor* lookups: "the
version with the largest timestamp strictly before t" (§3).  Old versions can
be purged (§6) — transactions that subsequently need a purged version abort.

The store is a pure data structure; concurrency control lives in the lock
table and the engines.  A PENDING marker supports the §6 technique for
removing Algorithm 1's atomic commit block: a committing transaction first
installs PENDING at its commit timestamp, then overwrites it with the real
value; concurrent readers that see PENDING must wait (the threaded engine
does this; the DES server installs in a single event and never needs it).

Representation: a chain is three **parallel arrays** — timestamp values
(``ts_v``), timestamp pids (``ts_p``), and the values — so every lookup is
one lexicographic bisect over scalars (:func:`repro._fastcore.vc_floor`, the
shared pure/compiled kernel) with no ``Timestamp`` comparisons on the hot
path.  ``Timestamp``/:class:`Version` remain the API boundary: lookups
rematerialize them from the stored scalar objects, which are the exact
objects callers passed in, so values, reprs, and snapshots round-trip
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from .timestamp import BOTTOM, TS_ZERO, Timestamp
from .._fastcore import vc_floor

__all__ = ["Version", "Pending", "PENDING", "VersionStore"]


class Pending:
    """Marker for a version whose value is not yet exposed (§6)."""

    _instance: "Pending | None" = None

    def __new__(cls) -> "Pending":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PENDING"


#: Singleton instance of :class:`Pending`.
PENDING = Pending()


@dataclass(unsafe_hash=True, slots=True)
class Version:
    """One committed (or pending) version of a key."""

    ts: Timestamp
    value: Any

    @property
    def is_pending(self) -> bool:
        return self.value is PENDING


class _KeyVersions:
    """Sorted version chain for one key, as parallel scalar arrays."""

    __slots__ = ("ts_v", "ts_p", "values")

    def __init__(self) -> None:
        self.ts_v: list[float] = [TS_ZERO.value]
        self.ts_p: list[int] = [TS_ZERO.pid]
        self.values: list[Any] = [BOTTOM]

    def floor_before(self, ts: Timestamp) -> Version | None:
        """Latest version with timestamp strictly below ``ts``, if any."""
        idx = vc_floor(self.ts_v, self.ts_p, ts.value, ts.pid)
        if idx == 0:
            return None
        idx -= 1
        return Version(Timestamp(self.ts_v[idx], self.ts_p[idx]),
                       self.values[idx])

    def at(self, ts: Timestamp) -> Version | None:
        idx = vc_floor(self.ts_v, self.ts_p, ts.value, ts.pid)
        if (idx < len(self.ts_v) and self.ts_v[idx] == ts.value
                and self.ts_p[idx] == ts.pid):
            return Version(ts, self.values[idx])
        return None

    def install(self, ts: Timestamp, value: Any) -> bool:
        """Install; returns True iff a new entry was inserted (not a
        PENDING finalization)."""
        idx = vc_floor(self.ts_v, self.ts_p, ts.value, ts.pid)
        if (idx < len(self.ts_v) and self.ts_v[idx] == ts.value
                and self.ts_p[idx] == ts.pid):
            if self.values[idx] is PENDING:
                self.values[idx] = value  # finalize a pending install
                return False
            raise ValueError(f"version at {ts!r} already exists")
        self.ts_v.insert(idx, ts.value)
        self.ts_p.insert(idx, ts.pid)
        self.values.insert(idx, value)
        return True

    def latest(self) -> Version:
        return Version(Timestamp(self.ts_v[-1], self.ts_p[-1]),
                       self.values[-1])

    def purge_before(self, bound: Timestamp) -> tuple[int, Timestamp | None]:
        """Drop versions with ts < bound, keeping the most recent of them.

        Keeping the last version below the bound preserves reads above it:
        their floor is intact.  Returns ``(dropped, kept_floor)`` where
        ``kept_floor`` is the oldest surviving version's timestamp — reads
        at or below it can no longer be served faithfully.
        """
        idx = vc_floor(self.ts_v, self.ts_p, bound.value, bound.pid)
        drop = max(0, idx - 1)
        if not drop:
            return 0, None
        del self.ts_v[:drop]
        del self.ts_p[:drop]
        del self.values[:drop]
        return drop, Timestamp(self.ts_v[0], self.ts_p[0])

    def __len__(self) -> int:
        return len(self.ts_v)


class VersionStore:
    """``Values[k, t]`` for all keys.

    Keys are created lazily with the initial ``(TS_ZERO, BOTTOM)`` version on
    first access, matching "initially Values[k, 0] = BOTTOM for every k".
    """

    __slots__ = ("_keys", "_purge_floor", "_total")

    def __init__(self) -> None:
        self._keys: dict[Hashable, _KeyVersions] = {}
        # Per-key purge floor: reads strictly below it must abort because
        # the versions they would need may have been discarded.
        self._purge_floor: dict[Hashable, Timestamp] = {}
        # Incremental store-wide version count; state sampling reads it far
        # more often than O(keys) recounting could afford.
        self._total: int = 0

    def _chain(self, key: Hashable) -> _KeyVersions:
        chain = self._keys.get(key)
        if chain is None:
            chain = self._keys[key] = _KeyVersions()
            self._total += 1  # the implicit (TS_ZERO, BOTTOM) version
        return chain

    # -- reads --------------------------------------------------------------

    def latest_before(self, key: Hashable, ts: Timestamp) -> Version | None:
        """The version a timestamp-``ts`` read observes, or None if purged.

        Returns None only when the needed version was purged (§6): the
        caller must abort the transaction.
        """
        if self._purge_floor:
            floor = self._purge_floor.get(key)
            if floor is not None and ts <= floor:
                return None
        return self._chain(key).floor_before(ts)

    def version_at(self, key: Hashable, ts: Timestamp) -> Version | None:
        return self._chain(key).at(ts)

    def latest(self, key: Hashable) -> Version:
        return self._chain(key).latest()

    # -- writes --------------------------------------------------------------

    def install(self, key: Hashable, ts: Timestamp, value: Any) -> None:
        """Expose a committed value at (key, ts).

        Also finalizes a PENDING version at the same timestamp.
        """
        if self._chain(key).install(ts, value):
            self._total += 1

    def install_pending(self, key: Hashable, ts: Timestamp) -> None:
        """Reserve (key, ts) with the PENDING marker (§6 atomic-block removal)."""
        if self._chain(key).install(ts, PENDING):
            self._total += 1

    def drop(self, key: Hashable, ts: Timestamp) -> None:
        """Remove the version at (key, ts); used to back out PENDING installs."""
        chain = self._chain(key)
        idx = vc_floor(chain.ts_v, chain.ts_p, ts.value, ts.pid)
        if (idx < len(chain.ts_v) and chain.ts_v[idx] == ts.value
                and chain.ts_p[idx] == ts.pid):
            del chain.ts_v[idx]
            del chain.ts_p[idx]
            del chain.values[idx]
            self._total -= 1

    # -- purging (§6) ---------------------------------------------------------

    def purge_before(self, bound: Timestamp) -> int:
        """Purge versions older than ``bound`` on every key (keep newest-below).

        Returns the total number of versions dropped.  Reads at or below the
        kept newest-below version subsequently fail (their true floor may be
        gone); reads above it are unaffected.
        """
        dropped = 0
        for key, chain in self._keys.items():
            n, kept = chain.purge_before(bound)
            if n:
                dropped += n
                self._raise_floor(key, kept)
        self._total -= dropped
        return dropped

    def purge_key_before(self, key: Hashable, bound: Timestamp) -> int:
        chain = self._keys.get(key)
        if chain is None:
            return 0
        n, kept = chain.purge_before(bound)
        if n:
            self._total -= n
            self._raise_floor(key, kept)
        return n

    def _raise_floor(self, key: Hashable, kept: Timestamp | None) -> None:
        if kept is None:
            return
        prev = self._purge_floor.get(key)
        if prev is None or prev < kept:
            self._purge_floor[key] = kept

    # -- snapshot / restore (durability support) ------------------------------

    def snapshot(self) -> list[tuple[Hashable, tuple[tuple[Timestamp, Any],
                                                     ...],
                                     "Timestamp | None"]]:
        """Full dump of every chain: ``(key, ((ts, value), ...), floor)``.

        The dump is a deep copy of the chain structure (values themselves are
        shared — they are immutable strings in practice) in key-insertion
        order, so re-loading it with :meth:`load_chain` rebuilds an
        equivalent store deterministically.  PENDING markers are never
        dumped: a checkpoint captures committed state only.
        """
        out = []
        for key, chain in self._keys.items():
            versions = tuple(
                (Timestamp(v, p), value)
                for v, p, value in zip(chain.ts_v, chain.ts_p, chain.values)
                if value is not PENDING)
            out.append((key, versions, self._purge_floor.get(key)))
        return out

    def load_chain(self, key: Hashable,
                   versions: "tuple[tuple[Timestamp, Any], ...]",
                   floor: "Timestamp | None" = None) -> None:
        """Replace ``key``'s chain wholesale (checkpoint restore).

        ``versions`` must be sorted by timestamp; a chain that was never
        purged still starts with the implicit ``(TS_ZERO, BOTTOM)`` head, so
        a snapshot/load round trip is exact.
        """
        chain = self._keys.get(key)
        if chain is None:
            chain = self._keys[key] = _KeyVersions()
        else:
            self._total -= len(chain)
        chain.ts_v = [ts.value for ts, _ in versions]
        chain.ts_p = [ts.pid for ts, _ in versions]
        chain.values = [value for _, value in versions]
        self._total += len(chain)
        if floor is not None:
            self._raise_floor(key, floor)

    # -- metrics --------------------------------------------------------------

    def version_count(self, key: Hashable | None = None) -> int:
        """Number of stored versions for ``key`` (or all keys)."""
        if key is not None:
            chain = self._keys.get(key)
            return len(chain) if chain is not None else 0
        return self._total

    def key_count(self) -> int:
        """Number of keys ever touched."""
        return len(self._keys)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys
