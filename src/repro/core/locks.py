"""Freezable timestamp-interval locks (§4.2, §6).

MVTL conceptually keeps one freezable readers-writer lock *per timestamp per
key*.  A freezable lock is a readers-writer lock whose holder may **freeze**
it, declaring that it will never be released: a committed transaction freezes
the write-lock at its commit timestamp (sealing the new version) and the
read-locks between the version it read and its commit timestamp (sealing the
read-timestamp range).  Frozen locks tell other transactions not to wait.

This module implements that state *interval-compressed* (§6): per key, each
owner holds an :class:`~repro.core.intervals.IntervalSet` per mode, plus the
frozen subset.  The table is a pure data structure — no blocking, no threads.
Callers (the threaded engine, the simulated servers) decide what to do with
reported conflicts: wait for unfrozen holders, shrink the requested interval
(MVTIL), or give up (the "without waiting" branches of Algorithms 3 and 8).

Conflict rules, per timestamp point:

* a WRITE lock excludes every lock (read or write) held by *another* owner;
* READ locks from different owners may overlap;
* an owner never conflicts with itself (read->write upgrade is permitted
  w.r.t. its own read locks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterable

from .intervals import EMPTY_SET, IntervalSet, TsInterval
from .._fastcore import iv_subtract

__all__ = [
    "LockMode",
    "Conflict",
    "AcquireResult",
    "KeyLockState",
    "LockTable",
    "FrozenConflictError",
]

TxId = Hashable


class LockMode(enum.Enum):
    """Lock mode of a freezable timestamp lock."""

    READ = "read"
    WRITE = "write"


class FrozenConflictError(RuntimeError):
    """Raised on an attempt to release or un-hold a frozen lock range."""


@dataclass(unsafe_hash=True, slots=True)
class Conflict:
    """One conflicting hold discovered during an acquire attempt.

    Attributes
    ----------
    interval:
        The overlap between the request and the conflicting hold.
    holder:
        The owning transaction of the conflicting lock.
    mode:
        Mode of the conflicting lock.
    frozen:
        Whether the conflicting range is frozen.  Waiting for a frozen lock
        is futile — it will never be released — so policies treat frozen
        conflicts differently (retry with a different version / shrink /
        abort) from unfrozen ones (may wait).
    """

    interval: TsInterval
    holder: TxId
    mode: LockMode
    frozen: bool


@dataclass(unsafe_hash=True, slots=True)
class AcquireResult:
    """Outcome of :meth:`KeyLockState.try_acquire`.

    ``acquired`` is the sub-range actually granted (already recorded in the
    table); ``conflicts`` describes every blocking hold overlapping the
    remainder of the request.
    """

    acquired: IntervalSet
    conflicts: tuple[Conflict, ...]

    @property
    def fully_acquired(self) -> bool:
        return not self.conflicts

    @property
    def any_frozen_conflict(self) -> bool:
        return any(c.frozen for c in self.conflicts)

    @property
    def unfrozen_conflicts(self) -> tuple[Conflict, ...]:
        return tuple(c for c in self.conflicts if not c.frozen)


@dataclass(slots=True)
class _OwnerLocks:
    """Lock state of a single owner on a single key.

    Defaults share the EMPTY_SET singleton — IntervalSet is immutable, and
    owner records are minted on every first acquire, so per-field empty-set
    construction was pure allocation churn.
    """

    read: IntervalSet = EMPTY_SET
    write: IntervalSet = EMPTY_SET
    frozen_read: IntervalSet = EMPTY_SET
    frozen_write: IntervalSet = EMPTY_SET

    def held(self, mode: LockMode) -> IntervalSet:
        return self.read if mode is LockMode.READ else self.write

    def set_held(self, mode: LockMode, value: IntervalSet) -> None:
        if mode is LockMode.READ:
            self.read = value
        else:
            self.write = value

    def frozen(self, mode: LockMode) -> IntervalSet:
        return (self.frozen_read if mode is LockMode.READ
                else self.frozen_write)

    def set_frozen(self, mode: LockMode, value: IntervalSet) -> None:
        if mode is LockMode.READ:
            self.frozen_read = value
        else:
            self.frozen_write = value

    @property
    def is_empty(self) -> bool:
        return self.read.is_empty and self.write.is_empty


class KeyLockState:
    """Interval-compressed freezable lock state for one key.

    Not thread-safe; synchronization is the caller's concern (the threaded
    engine holds the key's stripe lock, DES servers are single-threaded by
    construction).
    """

    __slots__ = ("_owners", "version", "_sealed_read", "_sealed_write",
                 "_sealed_spans", "_rc_version", "_rc_count",
                 "_fwr_version", "_fwr_cache")

    #: Owner id reported for conflicts with sealed (ownerless) lock state.
    SEALED = "<sealed>"

    def __init__(self) -> None:
        self._owners: dict[TxId, _OwnerLocks] = {}
        #: Monotonic change counter; wait loops use it to detect releases.
        self.version: int = 0
        # Permanent lock state of *ended* transactions, merged ownerless
        # (§6 interval compression taken to its conclusion): frozen read
        # prefixes and frozen write points of committed transactions, and —
        # for MVTO+-style policies — the never-released read locks that act
        # as read-timestamps.  Sealed state is permanent: conflicts with it
        # are reported frozen, and only purging removes it.
        self._sealed_read: IntervalSet = EMPTY_SET
        self._sealed_write: IntervalSet = EMPTY_SET
        # Metric record list: one span per lock record an implementation
        # without merging would store (Fig. 6's "number of locks").  Kept
        # raw — never re-compacted — so purging can subtract exactly the
        # purged records and leave the survivors counted as-is.  Stored as
        # flat (lo_v, lo_p, hi_v, hi_p) quads: only counted and purged,
        # never handed out, so interval objects would be wasted here.
        self._sealed_spans: list[tuple] = []
        # record_count memo, keyed on ``version``: every mutation that can
        # change the count bumps ``version``, so a matching tag means the
        # cached count is current.  State sampling (Fig. 6/7) sums counts
        # across every key far more often than most keys change.
        self._rc_version: int = -1
        self._rc_count: int = 0
        # frozen_write_ranges memo, same ``version`` keying: every read
        # consults the frozen-write union, most reads hit unchanged keys.
        self._fwr_version: int = -1
        self._fwr_cache: IntervalSet = EMPTY_SET

    # -- queries -----------------------------------------------------------

    def held(self, owner: TxId, mode: LockMode) -> IntervalSet:
        """Timestamps ``owner`` currently holds in ``mode`` on this key."""
        ol = self._owners.get(owner)
        return ol.held(mode) if ol is not None else EMPTY_SET

    def frozen(self, owner: TxId, mode: LockMode) -> IntervalSet:
        ol = self._owners.get(owner)
        return ol.frozen(mode) if ol is not None else EMPTY_SET

    def lockable(self, owner: TxId, mode: LockMode,
                 want: TsInterval | IntervalSet) -> AcquireResult:
        """Dry-run of :meth:`try_acquire`: nothing is recorded.

        ``acquired`` in the result is the conflict-free sub-range that an
        acquire *would* grant.
        """
        return self._split(owner, mode, _as_set(want))

    def frozen_write_ranges(self) -> IntervalSet:
        """Union of all frozen write locks on this key (any owner).

        Used by read policies: a frozen write lock marks a committed (or
        committing) version boundary that a read interval must not cross
        (Algorithms 3/4/8 "if found frozen write-lock ... retry").
        """
        if self._fwr_version == self.version:
            return self._fwr_cache
        out = self._sealed_write
        for ol in self._owners.values():
            out = out.union(ol.frozen_write)
        self._fwr_version = self.version
        self._fwr_cache = out
        return out

    def seal(self, owner: TxId, keep_all_reads: bool = False) -> None:
        """Fold an *ended* transaction's permanent locks into the sealed
        aggregate and drop its owner record.

        ``keep_all_reads=False`` (commit-with-GC, or abort): frozen read and
        write locks become sealed, unfrozen locks are released.
        ``keep_all_reads=True`` (MVTO+-style end): *all* read locks become
        sealed — MVTO+'s read-timestamps are never rolled back (§3) — plus
        the frozen writes; unfrozen write locks are released.

        Sealing is semantically equivalent to keeping the records under the
        dead owner, but conflict checks stay O(active transactions).
        """
        ol = self._owners.pop(owner, None)
        if ol is None:
            return
        reads = ol.read if keep_all_reads else ol.frozen_read
        spans = self._sealed_spans
        for flat in (reads.flat, ol.frozen_write.flat):
            n = len(flat)
            if n == 4:
                spans.append(flat)  # single piece: the flat IS the quad
            elif n:
                for i in range(0, n, 4):
                    spans.append(flat[i:i + 4])
        if reads:
            self._sealed_read = self._sealed_read.union(reads)
        if ol.frozen_write:
            self._sealed_write = self._sealed_write.union(ol.frozen_write)
        self.version += 1

    def sealed_read_ranges(self) -> IntervalSet:
        return self._sealed_read

    def sealed_write_ranges(self) -> IntervalSet:
        return self._sealed_write

    def owners(self) -> Iterable[TxId]:
        return self._owners.keys()

    def record_count(self) -> int:
        """Number of stored lock intervals (state-size metric, Fig. 6).

        Counts live per-owner records plus what an implementation without
        ownerless merging would keep for ended transactions (the sealed
        span list) — i.e. the state the paper's prototype stores.
        """
        if self._rc_version == self.version:
            return self._rc_count
        count = len(self._sealed_spans) + sum(
            len(ol.read) + len(ol.write) for ol in self._owners.values())
        self._rc_version = self.version
        self._rc_count = count
        return count

    @property
    def is_empty(self) -> bool:
        return (not self._owners and self._sealed_read.is_empty
                and self._sealed_write.is_empty)

    # -- mutation ----------------------------------------------------------

    def try_acquire(self, owner: TxId, mode: LockMode,
                    want: TsInterval | IntervalSet) -> AcquireResult:
        """Acquire as much of ``want`` as is conflict-free.

        The conflict-free portion is granted and recorded; the rest is
        reported via ``conflicts``.  Idempotent for ranges already held by
        ``owner`` in the same mode.
        """
        result = self._split(owner, mode, _as_set(want))
        if result.acquired:
            ol = self._owners.get(owner)
            if ol is None:
                ol = self._owners[owner] = _OwnerLocks()
            ol.set_held(mode, ol.held(mode).union(result.acquired))
            self.version += 1
        return result

    def grant(self, owner: TxId, mode: LockMode,
              granted: TsInterval | IntervalSet) -> None:
        """Record a grant already proven conflict-free by :meth:`lockable`.

        Equivalent to ``try_acquire`` on the probed range minus the second
        conflict split.  Valid only when nothing mutated this state between
        the probe and the grant — true for DES servers, which handle each
        request atomically.  Not for the threaded engine, whose probe and
        acquire run under separate stripe-lock acquisitions.
        """
        if not isinstance(granted, TsInterval) and granted.is_empty:
            return
        ol = self._owners.get(owner)
        if ol is None:
            ol = self._owners[owner] = _OwnerLocks()
        # Mode-unrolled direct slot access: grant sits on the read path of
        # every DES server, right after the lockable() probe.
        if mode is LockMode.READ:
            held = ol.read
            new_held = held.union(granted)
            if new_held != held:
                ol.read = new_held
                self.version += 1
        else:
            held = ol.write
            new_held = held.union(granted)
            if new_held != held:
                ol.write = new_held
                self.version += 1

    def freeze(self, owner: TxId, mode: LockMode,
               span: TsInterval | IntervalSet) -> None:
        """Freeze the part of ``owner``'s ``mode`` locks inside ``span``.

        Freezing is what makes a commit durable to other transactions:
        frozen locks are never released and survive GC.
        """
        span_set = _as_set(span)
        ol = self._owners.get(owner)
        if ol is None:
            return  # nothing held (already released): freezing is a no-op
        to_freeze = ol.held(mode).intersect(span_set)
        if to_freeze.is_empty:
            return
        ol.set_frozen(mode, ol.frozen(mode).union(to_freeze))
        self.version += 1

    def release(self, owner: TxId, mode: LockMode,
                span: TsInterval | IntervalSet) -> None:
        """Release ``owner``'s unfrozen ``mode`` locks inside ``span``.

        Attempting to release a frozen range raises
        :class:`FrozenConflictError` — frozen means "never released".
        """
        ol = self._owners.get(owner)
        if ol is None:
            return
        span_set = _as_set(span)
        if not ol.frozen(mode).intersect(span_set).is_empty:
            raise FrozenConflictError(
                f"{owner!r} attempted to release a frozen {mode.value} range")
        held = ol.held(mode)
        remaining = held.subtract(span_set)
        if remaining != held:
            ol.set_held(mode, remaining)
            self._prune(owner, ol)
            self.version += 1

    def release_unfrozen(self, owner: TxId) -> None:
        """Release every unfrozen lock of ``owner`` on this key.

        This is the tail of Algorithm 1's ``gc`` and the abort path.
        """
        ol = self._owners.get(owner)
        if ol is None:
            return
        changed = False
        for mode in LockMode:
            held = ol.held(mode)
            frozen = ol.frozen(mode)
            if held != frozen:
                ol.set_held(mode, frozen)
                changed = True
        if changed:
            self._prune(owner, ol)
            self.version += 1

    def purge_below(self, bound: TsInterval) -> int:
        """Drop all lock state (frozen included) inside ``bound``.

        Called when the versions covered by these locks are purged (§6):
        the lock state "can be discarded when the associated versions are
        purged".  Returns the number of owners whose state changed.
        """
        changed = 0
        new_sealed_read = self._sealed_read.subtract(bound)
        new_sealed_write = self._sealed_write.subtract(bound)
        if (new_sealed_read != self._sealed_read
                or new_sealed_write != self._sealed_write):
            self._sealed_read = new_sealed_read
            self._sealed_write = new_sealed_write
            # Trim each sealed record individually: drop what the purge
            # removed, keep every surviving piece as its own record.  The
            # metric tracks an implementation without merging, so purging
            # must not collapse surviving records into the compacted form.
            bound_flat = bound.flat
            self._sealed_spans = [
                rest[i:i + 4]
                for span in self._sealed_spans
                for rest in (iv_subtract(span, bound_flat),)
                for i in range(0, len(rest), 4)]
            changed += 1
        for owner in list(self._owners):
            ol = self._owners[owner]
            touched = False
            for mode in LockMode:
                held = ol.held(mode)
                new_held = held.subtract(bound)
                if new_held != held:
                    ol.set_held(mode, new_held)
                    ol.set_frozen(mode, ol.frozen(mode).subtract(bound))
                    touched = True
            if touched:
                changed += 1
                self._prune(owner, ol)
        if changed:
            self.version += 1
        return changed

    # -- internals ---------------------------------------------------------

    def _prune(self, owner: TxId, ol: _OwnerLocks) -> None:
        if ol.is_empty:
            del self._owners[owner]

    def _split(self, owner: TxId, mode: LockMode,
               want: IntervalSet) -> AcquireResult:
        """Partition ``want`` into a grantable part and per-holder conflicts."""
        free = want
        conflicts: list[Conflict] = []
        # Sealed (ended-transaction) state first: permanent, hence frozen.
        # Avoid the union allocation when one (or both) aggregates is empty
        # — the dominant case on lightly written keys.
        if mode is LockMode.READ or self._sealed_read.is_empty:
            sealed_blockers = self._sealed_write
        elif self._sealed_write.is_empty:
            sealed_blockers = self._sealed_read
        else:
            sealed_blockers = self._sealed_write.union(self._sealed_read)
        if sealed_blockers:
            overlap = want.intersect(sealed_blockers)
            if not overlap.is_empty:
                for piece in overlap:
                    blocking_mode = (LockMode.WRITE
                                     if self._sealed_write.intersect(piece)
                                     else LockMode.READ)
                    conflicts.append(Conflict(piece, self.SEALED,
                                              blocking_mode, True))
                free = free.subtract(overlap)
        if self._owners:
            # WRITE requests conflict with the other's read and write locks;
            # READ requests only with the other's write locks.  The mode
            # pair is unrolled (no tuple loop) and holds are read straight
            # off the slots: this runs once per lock request per co-active
            # owner, the innermost loop of every server's data path.
            write_req = mode is LockMode.WRITE
            for other, ol in self._owners.items():
                if other == owner:
                    continue
                if write_req:
                    held = ol.read
                    if not held.is_empty:
                        overlap = want.intersect(held)
                        if not overlap.is_empty:
                            self._conflicts_for(conflicts, overlap,
                                                other, LockMode.READ,
                                                ol.frozen_read)
                            free = free.subtract(overlap)
                held = ol.write
                if not held.is_empty:
                    overlap = want.intersect(held)
                    if not overlap.is_empty:
                        self._conflicts_for(conflicts, overlap,
                                            other, LockMode.WRITE,
                                            ol.frozen_write)
                        free = free.subtract(overlap)
        return AcquireResult(acquired=free, conflicts=tuple(conflicts))

    @staticmethod
    def _conflicts_for(conflicts: list[Conflict], overlap: IntervalSet,
                       other: TxId, bmode: LockMode,
                       frozen: IntervalSet) -> None:
        """Append per-piece conflicts for one blocking hold of ``other``."""
        if frozen.is_empty:
            # Nothing frozen: every overlapping piece is a waitable
            # conflict — skip the per-piece set splits entirely.
            for piece in overlap:
                conflicts.append(Conflict(piece, other, bmode, False))
            return
        for piece in overlap:
            piece_set = IntervalSet.from_interval(piece)
            frozen_part = piece_set.intersect(frozen)
            for fp in frozen_part:
                conflicts.append(Conflict(fp, other, bmode, True))
            for up in piece_set.subtract(frozen_part):
                conflicts.append(Conflict(up, other, bmode, False))


class LockTable:
    """Per-key map of :class:`KeyLockState`.

    Tracks which keys each owner touched so that transaction-wide release
    (abort, GC) does not scan the whole table.

    Concurrency contract under the striped engine: all operations on a
    given *key*'s state run under that key's stripe lock.  The table-wide
    dicts tolerate concurrent use from different stripes because (a) same
    key implies same stripe, so per-entry read-modify-write cycles are
    serialized, (b) inserts for distinct keys are atomic dict operations
    under CPython's GIL, and (c) the per-*owner* index (``_owner_keys``)
    is only mutated by the owner's own (single) thread.  Whole-table
    iteration (``all_keys``/``total_record_count``/``conflict_counts``)
    must run with every stripe held — the engine provides that.
    """

    __slots__ = ("_keys", "_owner_keys", "_conflicts")

    def __init__(self) -> None:
        self._keys: dict[Hashable, KeyLockState] = {}
        self._owner_keys: dict[TxId, set[Hashable]] = {}
        # Per-key count of acquire attempts that hit a conflict — the raw
        # material for the obs layer's hot-key attribution.  A plain dict
        # increment on the (already slow) conflict path; the uncontended
        # path pays nothing.
        self._conflicts: dict[Hashable, int] = {}

    def state(self, key: Hashable) -> KeyLockState:
        st = self._keys.get(key)
        if st is None:
            st = self._keys[key] = KeyLockState()
        return st

    def peek(self, key: Hashable) -> KeyLockState | None:
        return self._keys.get(key)

    def try_acquire(self, owner: TxId, key: Hashable, mode: LockMode,
                    want: TsInterval | IntervalSet) -> AcquireResult:
        result = self.state(key).try_acquire(owner, mode, want)
        if result.acquired:
            self._owner_keys.setdefault(owner, set()).add(key)
        if result.conflicts:
            self._conflicts[key] = self._conflicts.get(key, 0) + 1
        return result

    def note_conflict(self, key: Hashable, n: int = 1) -> None:
        """Count a contended access on ``key`` (callers that acquire
        through :meth:`KeyLockState.try_acquire` directly, e.g. the DES
        servers, report their conflicts here)."""
        self._conflicts[key] = self._conflicts.get(key, 0) + n

    def conflict_counts(self) -> dict[Hashable, int]:
        """Per-key conflicted-acquire counts since construction."""
        return dict(self._conflicts)

    def note_owner(self, owner: TxId, key: Hashable) -> None:
        """Record that ``owner`` holds state on ``key`` (for callers that
        acquire through the KeyLockState directly)."""
        self._owner_keys.setdefault(owner, set()).add(key)

    def forget_owner(self, owner: TxId) -> None:
        """Drop the owner->keys index entry (after all locks are released
        or intentionally left frozen-only)."""
        self._owner_keys.pop(owner, None)

    def all_keys(self) -> list[Hashable]:
        return list(self._keys)

    def held(self, owner: TxId, key: Hashable, mode: LockMode) -> IntervalSet:
        st = self._keys.get(key)
        return st.held(owner, mode) if st is not None else EMPTY_SET

    def freeze(self, owner: TxId, key: Hashable, mode: LockMode,
               span: TsInterval | IntervalSet) -> None:
        self.state(key).freeze(owner, mode, span)

    def release(self, owner: TxId, key: Hashable, mode: LockMode,
                span: TsInterval | IntervalSet) -> None:
        st = self._keys.get(key)
        if st is not None:
            st.release(owner, mode, span)

    def release_all_unfrozen(self, owner: TxId) -> None:
        """Release every unfrozen lock of ``owner`` across all keys."""
        for key in self._owner_keys.pop(owner, ()):
            st = self._keys.get(key)
            if st is not None:
                st.release_unfrozen(owner)

    def seal_all(self, owner: TxId, keep_all_reads: bool = False) -> None:
        """Seal an *ended* ``owner`` on every key it touched and forget it.

        Equivalent to :meth:`release_all_unfrozen` followed by folding the
        owner's frozen locks into each key's sealed aggregate — but conflict
        checks afterwards cost O(active transactions) instead of growing
        with every transaction that ever committed (the dead-owner records
        are gone).  ``keep_all_reads`` seals *all* read locks, frozen or
        not (MVTO+-style persistent read-timestamps, §3).
        """
        for key in self._owner_keys.pop(owner, ()):
            st = self._keys.get(key)
            if st is not None:
                st.seal(owner, keep_all_reads=keep_all_reads)

    def keys_of(self, owner: TxId) -> frozenset[Hashable]:
        return frozenset(self._owner_keys.get(owner, ()))

    def owners(self) -> list[TxId]:
        """Owners with at least one indexed key (live lock holders)."""
        return list(self._owner_keys)

    def total_record_count(self) -> int:
        """Total stored lock intervals across keys (Fig. 6 metric)."""
        # Reads the per-key memo directly when it is current (the common
        # case on a periodic state-size refresh) — one attribute compare
        # instead of a method call per key.
        total = 0
        for st in self._keys.values():
            if st._rc_version == st.version:
                total += st._rc_count
            else:
                total += st.record_count()
        return total

    def purge_below(self, key: Hashable, bound: TsInterval) -> int:
        st = self._keys.get(key)
        return st.purge_below(bound) if st is not None else 0


def _as_set(want: TsInterval | IntervalSet) -> IntervalSet:
    if isinstance(want, TsInterval):
        return IntervalSet.from_interval(want)
    return want
