"""The MVTL policy interface (Algorithm 2).

The generic MVTL algorithm (Algorithm 1, :mod:`repro.core.engine`) delegates
*which timestamps to lock and how* to a policy with five hooks mirroring the
paper's ``write-locks`` / ``read-locks`` / ``commit-locks`` / ``commit-ts`` /
``commit-gc`` functions, plus an ``Initialization`` hook used by every
concrete algorithm in §5.  Theorem 1 guarantees serializability for *any*
policy; the hooks only determine performance (which transactions manage to
find a common locked timestamp).

Policies express the paper's blocking idioms through the engine's
``acquire`` primitive:

* "waiting if write-locked but not frozen"  ->  ``wait=True`` (the engine
  parks the caller until conflicting unfrozen locks are released or frozen,
  with deadlock detection);
* "without waiting if a timestamp is read-locked"  ->  ``wait=False``;
* "found frozen write-lock -> release and retry"  ->  inspect
  ``result.frozen_conflicts`` and loop (the shared
  :meth:`MVTLPolicy.read_lock_interval` helper implements the retry loop
  that Algorithms 3, 4, 6, 8 and 10 all share).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable

from .intervals import IntervalSet, TsInterval
from .locks import LockMode
from .timestamp import Timestamp
from .transaction import Transaction
from .versions import Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import MVTLEngine

__all__ = ["MVTLPolicy"]


class MVTLPolicy(ABC):
    """Base class for MVTL locking policies (Algorithm 2)."""

    #: Human-readable algorithm name, used in reports and histories.
    name: str = "mvtl-generic"

    # -- hooks ----------------------------------------------------------------

    def on_begin(self, engine: "MVTLEngine", tx: Transaction) -> None:
        """The paper's ``Initialization(tx)``: assign timestamps/intervals."""

    @abstractmethod
    def write_locks(self, engine: "MVTLEngine", tx: Transaction,
                    key: Hashable) -> None:
        """Acquire write-locks for a ``write(tx, k, v)`` (Alg. 1 line 4).

        May acquire nothing (deferred policies lock at commit time).
        """

    @abstractmethod
    def read_locks(self, engine: "MVTLEngine", tx: Transaction,
                   key: Hashable) -> Version | None:
        """Acquire read-locks and choose the version to read (line 7).

        Must read-lock a contiguous interval starting immediately after the
        returned version's timestamp.  Return None to fail the read (which
        aborts the transaction — e.g. the needed version was purged).
        """

    @abstractmethod
    def commit_locks(self, engine: "MVTLEngine", tx: Transaction) -> None:
        """Acquire any commit-time locks (line 12)."""

    @abstractmethod
    def commit_ts(self, engine: "MVTLEngine", tx: Transaction,
                  candidates: IntervalSet) -> Timestamp | None:
        """Pick the commit timestamp from the engine-computed set ``T``.

        ``candidates`` is exactly Algorithm 1 line 13's set: timestamps
        locked (read or write) on every read key and write-locked on every
        written key.  Return None to abort.  The returned timestamp must be
        a member of ``candidates``; the engine verifies this.
        """

    @abstractmethod
    def commit_gc(self, engine: "MVTLEngine", tx: Transaction) -> bool:
        """Whether to garbage-collect the transaction's locks at commit."""

    def on_finish(self, engine: "MVTLEngine", tx: Transaction) -> None:
        """Notification after ``tx`` reached a terminal state.

        Called once per transaction, after the commit or abort completed
        (locks frozen/released, stats recorded) and outside the stripe
        locks.  Policies that adapt to observed outcomes (abort-reason mix,
        contention) override this; the default does nothing.  Must not
        issue further lock operations for ``tx``.
        """

    # -- narrow decision surface (introspection) -------------------------------

    def conflict_holders(self, tx: Transaction) -> tuple[Hashable, ...]:
        """Owners of the locks that defeated ``tx``'s last commit attempt.

        The policy-agnostic way for harnesses (e.g. the ghost-abort duel)
        to ask "who blocked this transaction?" without reaching into
        policy-private ``tx.state``.  Policies that record commit-time
        conflicts override the *storage*; callers only ever use this
        accessor.  Returns an empty tuple when the policy does not track
        conflicts.
        """
        return tuple(getattr(tx.state, "conflict_holders", ()))

    # -- shared helper ---------------------------------------------------------

    def read_lock_interval(self, engine: "MVTLEngine", tx: Transaction,
                           key: Hashable, upper: Timestamp, *,
                           version_below: Timestamp | None = None,
                           wait: bool = True) -> tuple[Version, IntervalSet] | None:
        """The read-lock retry loop shared by the §5 algorithms.

        Repeatedly: find ``tr`` = latest version strictly below
        ``version_below`` (default: ``upper``); try to read-lock
        ``(tr, upper]``, waiting on unfrozen write locks if ``wait``; on
        discovering a *frozen* write lock inside the range (a concurrent
        commit installed a newer version), release what was just acquired
        and retry with the new ``tr``.

        The range actually locked is pre-truncated at the first *frozen*
        write lock above ``tr`` (Algorithm 3 line 8's ``tmax`` computation):
        waiting for a frozen lock is futile, and a frozen write above the
        version-selection bound marks a committed version the caller's
        timestamp choice must stay below.

        Returns ``(version_read, locked_interval_set)`` on success, or None
        if the needed version was purged or the lock wait timed out.  When
        ``tr >= upper`` the read succeeds with an empty locked set (the
        interval ``(tr, upper]`` is empty; nothing needs locking).

        A read may also succeed with an empty locked set when frozen-write
        truncation leaves no lockable piece adjacent to ``tr`` (the two
        early returns below).  This is safe for commit-timestamp selection:
        the engine derives candidates exclusively from the lock table
        (``LockTable.held``), so a key read without locks simply contributes
        an empty cover and can never smuggle an unlocked timestamp into the
        candidate set (regression-tested in
        ``tests/core/test_read_lock_paths.py``).
        """
        below = version_below if version_below is not None else upper
        while True:
            version = engine.latest_before(key, below)
            if version is None:
                return None  # purged (§6): the transaction must abort
            if version.ts >= upper:
                # Nothing to lock: the interval (tr, upper] is empty.
                return version, IntervalSet.empty()
            want = TsInterval.open_closed(version.ts, upper)
            # Truncate at the first frozen write lock: the contiguous piece
            # starting just after tr.
            frozen = engine.frozen_write_ranges(key)
            available = IntervalSet.from_interval(want).subtract(frozen)
            if available.is_empty:
                return version, IntervalSet.empty()
            first = available.pieces[0]
            if not first.contains_just_after(version.ts):
                # A frozen write sits immediately above tr whose version is
                # outside our floor-lookup bound; we cannot lock a contiguous
                # interval adjacent to the version we read.
                return version, IntervalSet.empty()
            result = engine.acquire(tx, key, LockMode.READ, first,
                                    wait=wait, stop_on_frozen=True)
            if result.timed_out:
                engine.release(tx, key, LockMode.READ, result.acquired)
                return None
            if not result.frozen_conflicts:
                if first.hi < upper:
                    # The range was truncated at a frozen write — a version
                    # newer than the one we looked up committed in between.
                    # If it is visible within our lookup bound, retry so tr
                    # moves up and the coverage regains its full extent.
                    refreshed = engine.latest_before(key, below)
                    if refreshed is not None and refreshed.ts > version.ts:
                        engine.release(tx, key, LockMode.READ,
                                       result.acquired)
                        continue
                return version, result.acquired
            # A frozen write-lock appeared inside (tr, upper] while we were
            # acquiring: a concurrent transaction committed a newer version.
            # Release what we just took and retry (the new version moves tr
            # up, or the new frozen range shrinks the truncation point).
            engine.release(tx, key, LockMode.READ, result.acquired)
