"""Core MVTL machinery: timestamps, intervals, locks, versions, engine."""

from .collector import BackgroundCollector
from .engine import EngineAcquireResult, MVTLEngine
from .exceptions import (AbortReason, DeadlockError, LockTimeout, MVTLError,
                         PolicyError, TransactionAborted,
                         TransactionStateError)
from .intervals import EMPTY_SET, FULL_INTERVAL, IntervalSet, TsInterval
from .locks import (AcquireResult, Conflict, FrozenConflictError,
                    KeyLockState, LockMode, LockTable)
from .policy import MVTLPolicy
from .timestamp import BOTTOM, TS_INF, TS_ZERO, Bottom, Timestamp
from .transaction import Transaction, TxStatus
from .versions import PENDING, Pending, Version, VersionStore

__all__ = [
    "MVTLEngine", "EngineAcquireResult", "MVTLPolicy", "BackgroundCollector",
    "Transaction", "TxStatus",
    "Timestamp", "TS_ZERO", "TS_INF", "BOTTOM", "Bottom",
    "TsInterval", "IntervalSet", "EMPTY_SET", "FULL_INTERVAL",
    "LockMode", "LockTable", "KeyLockState", "AcquireResult", "Conflict",
    "FrozenConflictError",
    "VersionStore", "Version", "PENDING", "Pending",
    "AbortReason", "MVTLError", "TransactionAborted",
    "TransactionStateError", "DeadlockError", "LockTimeout", "PolicyError",
]
