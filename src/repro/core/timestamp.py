"""Timestamps for multiversion timestamp locking.

The paper (§4.1) draws timestamps from a dense, totally ordered domain: a
timestamp is a pair ``(value, pid)`` ordered lexicographically, where
``value`` is a real number (typically a clock reading) and ``pid`` is the id
of the process that produced it.  Appending the process id guarantees global
uniqueness of timestamps produced by distinct processes even when their clock
values collide.

Two distinguished timestamps bracket the domain:

* :data:`TS_ZERO` — the smallest timestamp; ``Values[k, TS_ZERO]`` holds the
  initial ``BOTTOM`` version of every key.
* :data:`TS_INF` — plus infinity, used by the pessimistic and prioritizer
  policies which lock "all timestamps up to +inf" (Algorithms 6 and 9).

Timestamps are immutable, hashable, and cheap; they are used pervasively as
dictionary keys and interval endpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["Timestamp", "TS_ZERO", "TS_INF", "BOTTOM", "Bottom"]


class Bottom:
    """The distinguished "no value" marker (the paper's ``⊥``).

    A singleton: ``Values[k, TS_ZERO] is BOTTOM`` for every key initially.
    Reading a key that only has its initial version returns :data:`BOTTOM`.
    """

    _instance: "Bottom | None" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOTTOM"

    def __reduce__(self) -> tuple[Any, ...]:
        return (Bottom, ())


#: Singleton instance of :class:`Bottom`.
BOTTOM = Bottom()


# pid values reserved for the distinguished endpoints so that TS_ZERO is
# strictly below every real timestamp with value 0.0 and TS_INF strictly
# above every real timestamp.
_PID_MIN = -(2**31)
_PID_MAX = 2**31


@dataclass(unsafe_hash=True, slots=True)
class Timestamp:
    """A globally unique point on the timestamp line.

    Ordered lexicographically by ``(value, pid)`` (§4.1).  ``value`` is a
    float (clock reading, simulated seconds in the DES); ``pid`` breaks ties
    between processes.

    Examples
    --------
    >>> Timestamp(1.0, 2) < Timestamp(1.0, 3) < Timestamp(2.0, 0)
    True
    >>> TS_ZERO < Timestamp(0.0, 0) < TS_INF
    True
    """

    value: float
    pid: int = 0

    def __post_init__(self) -> None:
        if math.isnan(self.value):
            raise ValueError("timestamp value may not be NaN")

    def _key(self) -> tuple[float, int]:
        return (self.value, self.pid)

    # Hand-rolled comparators: these run in the innermost loops of the lock
    # table, and avoiding per-comparison tuple allocation matters there.

    def __lt__(self, other: "Timestamp") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.pid < other.pid

    def __le__(self, other: "Timestamp") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.pid <= other.pid

    def __gt__(self, other: "Timestamp") -> bool:
        if self.value != other.value:
            return self.value > other.value
        return self.pid > other.pid

    def __ge__(self, other: "Timestamp") -> bool:
        if self.value != other.value:
            return self.value > other.value
        return self.pid >= other.pid

    @property
    def is_infinite(self) -> bool:
        """True for the +inf sentinel (and any other infinite-valued ts)."""
        return math.isinf(self.value)

    def __repr__(self) -> str:
        if self is TS_INF or (math.isinf(self.value) and self.value > 0):
            return "TS_INF"
        if self.value == 0.0 and self.pid == _PID_MIN:
            return "TS_ZERO"
        return f"ts({self.value:g},{self.pid})"


#: The smallest timestamp; holds the initial BOTTOM version of every key.
TS_ZERO = Timestamp(0.0, _PID_MIN)

#: Plus infinity; upper endpoint for "lock everything upward" policies.
TS_INF = Timestamp(math.inf, _PID_MAX)
