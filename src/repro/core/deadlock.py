"""Wait-for-graph deadlock detection.

Some MVTL policies wait for locks (ε-clock, pessimistic, prioritizer) and may
deadlock; the paper prescribes "standard techniques for deadlock detection
... (e.g., cycle detection in the wait-for graph, timeout)" (§4.3).  This
module provides the wait-for graph; the engine registers an edge set before
each wait and runs a DFS — if the new edges close a cycle through the waiter,
the waiter is the victim and receives :class:`~repro.core.exceptions.DeadlockError`.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["WaitForGraph"]


class WaitForGraph:
    """Who waits for whom.  Not thread-safe; guard externally."""

    __slots__ = ("_edges",)

    def __init__(self) -> None:
        self._edges: dict[Hashable, frozenset[Hashable]] = {}

    def set_waits(self, waiter: Hashable,
                  holders: Iterable[Hashable]) -> None:
        """Declare that ``waiter`` is blocked on ``holders`` (replaces any
        previous declaration)."""
        holders = frozenset(h for h in holders if h != waiter)
        if holders:
            self._edges[waiter] = holders
        else:
            self._edges.pop(waiter, None)

    def clear(self, waiter: Hashable) -> None:
        """``waiter`` is no longer blocked."""
        self._edges.pop(waiter, None)

    def find_cycle(self, start: Hashable) -> tuple[Hashable, ...] | None:
        """A wait-for cycle through ``start``, or None.

        Iterative DFS over the (small) blocked-transaction graph.
        """
        stack: list[tuple[Hashable, tuple[Hashable, ...]]] = [(start, (start,))]
        visited: set[Hashable] = set()
        while stack:
            node, path = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == start:
                    return path + (start,)
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + (nxt,)))
        return None

    def __contains__(self, waiter: Hashable) -> bool:
        return waiter in self._edges

    def __len__(self) -> int:
        return len(self._edges)
