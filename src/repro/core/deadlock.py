"""Wait-for-graph deadlock detection.

Some MVTL policies wait for locks (ε-clock, pessimistic, prioritizer) and may
deadlock; the paper prescribes "standard techniques for deadlock detection
... (e.g., cycle detection in the wait-for graph, timeout)" (§4.3).  This
module provides the wait-for graph; the engine registers an edge set before
each wait and runs a DFS — if the new edges close a cycle through the waiter,
the waiter is the victim and receives :class:`~repro.core.exceptions.DeadlockError`.

The graph carries its own mutex, so the striped engine can consult it from
any stripe without holding a global lock.  Detection under striping is
*eventually complete* rather than instantaneous: a cycle that forms between
two concurrent ``set_waits``/``find_cycle`` pairs is caught on one waiter's
next poll round (the engine re-runs detection every wait quantum).
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

__all__ = ["WaitForGraph"]


class WaitForGraph:
    """Who waits for whom.  Thread-safe: every operation holds the graph's
    own mutex, and that mutex is a leaf in the engine's lock order (no
    stripe lock is ever taken while holding it)."""

    __slots__ = ("_edges", "_mutex")

    def __init__(self) -> None:
        self._edges: dict[Hashable, frozenset[Hashable]] = {}
        self._mutex = threading.Lock()

    def set_waits(self, waiter: Hashable,
                  holders: Iterable[Hashable]) -> None:
        """Declare that ``waiter`` is blocked on ``holders`` (replaces any
        previous declaration)."""
        holders = frozenset(h for h in holders if h != waiter)
        with self._mutex:
            if holders:
                self._edges[waiter] = holders
            else:
                self._edges.pop(waiter, None)

    def clear(self, waiter: Hashable) -> None:
        """``waiter`` is no longer blocked."""
        with self._mutex:
            self._edges.pop(waiter, None)

    def find_cycle(self, start: Hashable) -> tuple[Hashable, ...] | None:
        """A wait-for cycle through ``start``, or None.

        Iterative DFS over the (small) blocked-transaction graph.
        """
        stack: list[tuple[Hashable, tuple[Hashable, ...]]] = [(start, (start,))]
        visited: set[Hashable] = set()
        with self._mutex:
            while stack:
                node, path = stack.pop()
                for nxt in self._edges.get(node, ()):
                    if nxt == start:
                        return path + (start,)
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, path + (nxt,)))
        return None

    def set_waits_and_check(self, waiter: Hashable,
                            holders: Iterable[Hashable]
                            ) -> tuple[Hashable, ...] | None:
        """Atomically register ``waiter``'s edges and look for a cycle.

        Doing both under one mutex hold closes the window in which two
        waiters register edges against each other and both miss the cycle.
        """
        holders = frozenset(h for h in holders if h != waiter)
        with self._mutex:
            if holders:
                self._edges[waiter] = holders
            else:
                self._edges.pop(waiter, None)
                return None
            stack: list[tuple[Hashable, tuple[Hashable, ...]]] = [
                (waiter, (waiter,))]
            visited: set[Hashable] = set()
            while stack:
                node, path = stack.pop()
                for nxt in self._edges.get(node, ()):
                    if nxt == waiter:
                        return path + (waiter,)
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, path + (nxt,)))
        return None

    def __contains__(self, waiter: Hashable) -> bool:
        with self._mutex:
            return waiter in self._edges

    def __len__(self) -> int:
        with self._mutex:
            return len(self._edges)
