"""Replicated placement of key groups: leaders, followers, fencing epochs.

Replaces the static :class:`repro.dist.partition.Partition` map.  The key
space is hashed into ``len(servers)`` groups exactly as before (group *g*'s
initial leader is ``servers[g]``, so with ``replication=1`` routing is
bit-identical to the old partition map); each group is additionally
assigned ``replication - 1`` followers in ring order.

The placement object is shared by clients, the failover controller and the
post-run scans.  It stands in for a consensus-backed configuration service
(the role etcd/ZooKeeper plays in real systems): promotions update it
atomically within one simulator event, and each promotion bumps the
group's *fencing epoch*.  Clients remember the epoch of every group they
touch and abort when it moves mid-transaction — the group-level analogue
of the per-server restart-epoch stamping of §H.
"""

from __future__ import annotations

import zlib
from typing import Hashable, Sequence

__all__ = ["ReplicatedPlacement", "group_index"]


def group_index(key: Hashable, num_groups: int) -> int:
    """Hash a key to its group id (the map shared by placement and the
    sync protocol's server-side filtering — one function, one answer)."""
    if isinstance(key, int):
        return key % num_groups
    return zlib.crc32(str(key).encode()) % num_groups


class ReplicatedPlacement:
    """Leader/follower assignment of hashed key groups with epochs."""

    def __init__(self, servers: Sequence[Hashable],
                 replication: int = 1) -> None:
        if not servers:
            raise ValueError("need at least one server")
        if not 1 <= replication <= len(servers):
            raise ValueError(f"replication must be in [1, {len(servers)}], "
                             f"got {replication}")
        self._servers = list(servers)
        self.replication = replication
        n = len(self._servers)
        self.num_groups = n
        self._members: list[tuple[Hashable, ...]] = [
            tuple(self._servers[(gid + i) % n] for i in range(replication))
            for gid in range(n)]
        self._leaders: list[Hashable] = [m[0] for m in self._members]
        self._epochs: list[int] = [0] * n
        #: (gid, server) -> simulated join time for members recruited after
        #: t=0.  Founding members have no entry: they are accountable for
        #: the full history, recruits only for commits at or after joining
        #: (earlier ones reach them via catch-up, audited by the stable
        #: floor + join-cutoff exemptions in ``scan_lost_commits``).
        self._joined: dict[tuple[int, Hashable], float] = {}

    # -- key routing --------------------------------------------------------

    def group_of(self, key: Hashable) -> int:
        """Hash a key to its group (same map as the old Partition)."""
        return group_index(key, self.num_groups)

    def leader_of(self, key: Hashable) -> Hashable:
        return self._leaders[self.group_of(key)]

    #: Old Partition API — single-copy callers route to the leader.
    server_of = leader_of

    def followers_of(self, key: Hashable) -> tuple[Hashable, ...]:
        gid = self.group_of(key)
        leader = self._leaders[gid]
        return tuple(s for s in self._members[gid] if s != leader)

    # -- group introspection ------------------------------------------------

    def leader(self, gid: int) -> Hashable:
        return self._leaders[gid]

    def members(self, gid: int) -> tuple[Hashable, ...]:
        return self._members[gid]

    def group_epoch(self, gid: int) -> int:
        return self._epochs[gid]

    def groups(self) -> range:
        return range(self.num_groups)

    # -- failover -----------------------------------------------------------

    def promote(self, gid: int, new_leader: Hashable) -> int:
        """Make ``new_leader`` the group's leader; returns the new epoch.

        Only an existing member may be promoted (a non-member has none of
        the group's mirrored state).  Bumping the epoch fences every
        transaction that touched the group under the old leadership.
        """
        if new_leader not in self._members[gid]:
            raise ValueError(f"{new_leader!r} is not a member of group "
                             f"{gid}")
        self._leaders[gid] = new_leader
        self._epochs[gid] += 1
        return self._epochs[gid]

    # -- dynamic membership (DESIGN.md §5h) ---------------------------------

    def replace_member(self, gid: int, old: Hashable, new: Hashable, *,
                       now: float = 0.0) -> int:
        """Swap follower ``old`` for recruit ``new``; returns the new epoch.

        The group's size (and so its write quorum) is invariant: a recruit
        joins only by taking a departing member's slot.  The current leader
        cannot be replaced — demote it first (``promote``) so the group
        always has a lock authority.  ``new`` must be a cluster server not
        already in the group.  The epoch bump fences in-flight transactions
        that mirrored onto ``old``, exactly as a promotion does.
        """
        if old not in self._members[gid]:
            raise ValueError(f"{old!r} is not a member of group {gid}")
        if old == self._leaders[gid]:
            raise ValueError(f"cannot replace the leader {old!r} of group "
                             f"{gid}; promote a successor first")
        if new in self._members[gid]:
            raise ValueError(f"{new!r} is already a member of group {gid}")
        if new not in self._servers:
            raise ValueError(f"{new!r} is not a cluster server")
        self._members[gid] = tuple(new if m == old else m
                                   for m in self._members[gid])
        self._joined[(gid, new)] = now
        self._epochs[gid] += 1
        return self._epochs[gid]

    def member_joined_at(self, gid: int, server: Hashable) -> float | None:
        """Join time of a recruited member; None for founding members."""
        return self._joined.get((gid, server))

    # -- Partition compatibility -------------------------------------------

    @property
    def servers(self) -> list[Hashable]:
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicatedPlacement({len(self._servers)} servers, "
                f"r={self.replication})")
