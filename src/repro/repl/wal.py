"""Write-ahead log: deterministic value codec + CRC-framed record stream.

The WAL models one server's disk.  Every record is framed as::

    <length: u32 LE> <crc32(payload): u32 LE> <payload>

and the payload is an arbitrary Python value (tuples of primitives,
timestamps, ...) serialised by a small deterministic codec — *not* pickle,
whose output can vary across interpreter versions and would poison the
byte-identical-replay guarantee the benches assert.

Torn tails: a crash may leave the log truncated at an arbitrary byte
offset.  :func:`replay_records` decodes frames until the first incomplete
or corrupt one and returns the clean prefix — a record (and therefore a
logged commit, which is always a single record covering all of the
transaction's keys on this server) is either fully recovered or fully
absent.  No partial transaction ever becomes visible.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from ..core.timestamp import BOTTOM, Timestamp

__all__ = ["encode_value", "decode_value", "frame", "replay_records",
           "WriteAheadLog"]

_HEADER = struct.Struct("<II")   # (payload length, crc32)
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

# One-byte type tags.  Ints use the 8-byte fixed form when they fit and a
# decimal-string escape otherwise (request counters can exceed 2**63 only
# in pathological tests, but the codec must not silently corrupt them).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_BIGINT = b"J"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_DICT = b"M"
_T_TS = b"P"
_T_BOTTOM = b"O"

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class WalCorruption(ValueError):
    """A frame or payload failed to decode (torn tail / corruption)."""


def _encode_into(out: bytearray, value: Any) -> None:
    # NOTE: bool before int — bool is an int subclass.
    if value is None:
        out += _T_NONE
    elif value is True:
        out += _T_TRUE
    elif value is False:
        out += _T_FALSE
    elif value is BOTTOM:
        out += _T_BOTTOM
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out += _T_INT
            out += _I64.pack(value)
        else:
            digits = str(value).encode("ascii")
            out += _T_BIGINT
            out += struct.pack("<I", len(digits))
            out += digits
    elif type(value) is float:
        out += _T_FLOAT
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out += _T_STR
        out += struct.pack("<I", len(raw))
        out += raw
    elif type(value) is bytes:
        out += _T_BYTES
        out += struct.pack("<I", len(value))
        out += value
    elif type(value) is Timestamp:
        out += _T_TS
        out += _F64.pack(value.value)
        out += _I64.pack(value.pid)
    elif type(value) is list or type(value) is tuple:
        out += _T_LIST if type(value) is list else _T_TUPLE
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is dict:
        # Insertion order is preserved — deterministic for the dicts the
        # engines build (they are populated in sorted fan-out order).
        out += _T_DICT
        out += struct.pack("<I", len(value))
        for k, v in value.items():
            _encode_into(out, k)
            _encode_into(out, v)
    else:
        raise TypeError(f"WAL codec cannot encode {type(value).__name__}: "
                        f"{value!r}")


def encode_value(value: Any) -> bytes:
    """Serialise ``value`` deterministically."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _decode_at(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise WalCorruption("truncated payload")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_BOTTOM:
        return BOTTOM, pos
    if tag == _T_INT:
        end = pos + 8
        if end > len(data):
            raise WalCorruption("truncated int")
        return _I64.unpack_from(data, pos)[0], end
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(data):
            raise WalCorruption("truncated float")
        return _F64.unpack_from(data, pos)[0], end
    if tag == _T_TS:
        end = pos + 16
        if end > len(data):
            raise WalCorruption("truncated timestamp")
        value = _F64.unpack_from(data, pos)[0]
        pid = _I64.unpack_from(data, pos + 8)[0]
        return Timestamp(value, pid), end
    if tag in (_T_STR, _T_BYTES, _T_BIGINT):
        if pos + 4 > len(data):
            raise WalCorruption("truncated length")
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4
        end = pos + length
        if end > len(data):
            raise WalCorruption("truncated body")
        raw = data[pos:end]
        if tag == _T_BYTES:
            return raw, end
        try:
            text = raw.decode("utf-8" if tag == _T_STR else "ascii")
        except UnicodeDecodeError as exc:
            raise WalCorruption("undecodable body") from exc
        return (text if tag == _T_STR else int(text)), end
    if tag in (_T_LIST, _T_TUPLE, _T_DICT):
        if pos + 4 > len(data):
            raise WalCorruption("truncated count")
        (count,) = struct.unpack_from("<I", data, pos)
        pos += 4
        if tag == _T_DICT:
            result: dict = {}
            for _ in range(count):
                k, pos = _decode_at(data, pos)
                v, pos = _decode_at(data, pos)
                result[k] = v
            return result, pos
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    raise WalCorruption(f"unknown tag {tag!r}")


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing garbage."""
    value, pos = _decode_at(data, 0)
    if pos != len(data):
        raise WalCorruption(f"{len(data) - pos} trailing bytes")
    return value


def frame(payload: bytes) -> bytes:
    """Wrap an encoded payload in the length+CRC frame."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def replay_records(data: bytes) -> list[Any]:
    """Decode the longest clean prefix of a (possibly torn) WAL image.

    Stops at the first incomplete frame, CRC mismatch or undecodable
    payload; everything before it is returned.  Truncating a log at any
    byte offset therefore yields a *prefix* of the original record list —
    the torn-tail property the hypothesis test in ``tests/repl`` checks.
    """
    records: list[Any] = []
    pos = 0
    total = len(data)
    while pos + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, pos)
        start = pos + _HEADER.size
        end = start + length
        if end > total:
            break  # torn tail: frame body incomplete
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame: stop at the last good record
        try:
            records.append(decode_value(payload))
        except WalCorruption:
            break
        pos = end
    return records


class WriteAheadLog:
    """An append-only byte log with framed records (one server's WAL file).

    The backing buffer survives simulated crashes by construction: the
    server object drops its *volatile* state on ``crash()`` but keeps the
    :class:`~repro.repl.checkpoint.DurableStore` (and thus this buffer),
    exactly as a real process keeps its disk.
    """

    __slots__ = ("_buf", "records_appended", "records_by_kind")

    def __init__(self) -> None:
        self._buf = bytearray()
        self.records_appended = 0
        #: Lifetime append counts per record kind (first tuple element) —
        #: survives :meth:`truncate` like ``records_appended``, so the obs
        #: layer can report how much of the log traffic was sync replay
        #: versus ordinary commits.
        self.records_by_kind: dict[Any, int] = {}

    def append(self, record: Any) -> None:
        self._buf += frame(encode_value(record))
        self.records_appended += 1
        kind = record[0] if isinstance(record, tuple) and record else None
        self.records_by_kind[kind] = self.records_by_kind.get(kind, 0) + 1

    def image(self) -> bytes:
        """The raw on-disk bytes (for tests and torn-tail simulation)."""
        return bytes(self._buf)

    def replay(self) -> list[Any]:
        return replay_records(self._buf)

    def truncate(self) -> None:
        """Discard all records (called after a checkpoint supersedes them)."""
        self._buf.clear()

    @property
    def size_bytes(self) -> int:
        return len(self._buf)

    def __len__(self) -> int:
        return self.records_appended

    def __iter__(self) -> Iterator[Any]:
        return iter(self.replay())
