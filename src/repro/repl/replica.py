"""Quorum rules, the failover controller and post-run replication scans.

Replication scheme (primary-copy; DESIGN.md §5e):

* the group **leader** is the sole lock/conflict authority — Theorem 8's
  serializability argument is untouched;
* a client holds a write lock at a **write quorum**: the leader grant plus
  acknowledged mirrors (``ReplicaHoldReq``) on a majority of the group.
  Mirrors carry the granted interval *and* the pending value, so any
  quorum member can finish the commit alone;
* commit records fan out to **every** member and each member applies the
  decision it reads from the shared :class:`CommitmentRegistry` — the
  commitment object is the replication consensus, not a new protocol;
* on leader death the :class:`FailoverController` promotes the most
  up-to-date live follower and bumps the group's fencing epoch.  The
  promoted follower's mirrored (still unfrozen) locks resolve through the
  ordinary write-lock-timeout machinery: decided commits install, the rest
  abort — zero committed writes are lost.

The controller is deliberately message-driven (heartbeats over the
simulated network, no peeking at server objects), so detection latency is
a real, measurable quantity: ``promotion time - crash time``.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from .placement import ReplicatedPlacement

__all__ = ["write_quorum", "FailoverController", "scan_lost_commits"]


def write_quorum(replication: int) -> int:
    """Members that must hold a write lock (leader included): a majority."""
    return replication // 2 + 1


class FailoverController:
    """Heartbeat-driven leader failure detection and follower promotion.

    Every ``interval`` seconds the controller pings all group members; a
    leader that misses ``miss_limit`` consecutive beats — or answers with a
    *changed* restart epoch, proving it crashed and lost its volatile lock
    state — is demoted.  The replacement is the live follower with the
    freshest applied-commit count (ties break on server id), preferring
    members that never restarted (a restarted member may have missed
    commit records while down; it stays a cold standby).
    """

    node_id = "__failover__"

    def __init__(self, sim: Any, net: Any, placement: ReplicatedPlacement,
                 *, interval: float = 0.05, miss_limit: int = 3) -> None:
        # Deferred import: repro.dist imports this package at module load.
        from ..dist.messages import HeartbeatReply, HeartbeatReq
        self._req_cls = HeartbeatReq
        self._reply_cls = HeartbeatReply
        self.sim = sim
        self.net = net
        self.placement = placement
        self.interval = interval
        self.miss_limit = miss_limit
        members: set[Hashable] = set()
        for gid in placement.groups():
            members.update(placement.members(gid))
        self._members = sorted(members, key=str)
        self._misses: dict[Hashable, int] = {m: 0 for m in self._members}
        self._outstanding: dict[Hashable, Any] = {}
        self._epoch_seen: dict[Hashable, int] = {}
        self._suspect: set[Hashable] = set()
        #: Last reported (applied_commits, dirty) per member.
        self._state: dict[Hashable, tuple[int, bool]] = {}
        #: ``(time, gid, old_leader, new_leader, new_epoch)`` per promotion.
        self.promotions: list[tuple[float, int, Hashable, Hashable, int]] = []
        self.heartbeats_sent = 0
        self._seq = 0
        net.register(self.node_id, self._on_message)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        # 1. Account a miss for every member whose last ping went unanswered.
        for sid in self._members:
            if self._outstanding.get(sid) is not None:
                self._misses[sid] += 1
        # 2. Demote dead or restarted leaders.
        for gid in self.placement.groups():
            leader = self.placement.leader(gid)
            if (self._misses.get(leader, 0) >= self.miss_limit
                    or leader in self._suspect):
                self._promote(gid, leader)
        self._suspect = {s for s in self._suspect
                         if any(self.placement.leader(g) == s
                                for g in self.placement.groups())}
        # 3. Ping everyone again.
        for sid in self._members:
            self._seq += 1
            req = self._req_cls(tx_id="__hb__", client=self.node_id,
                                req_id=self._seq)
            self._outstanding[sid] = self._seq
            self.heartbeats_sent += 1
            self.net.send(sid, req, src=self.node_id)
        self.sim.schedule(self.interval, self._tick)

    def _promote(self, gid: int, old_leader: Hashable) -> None:
        candidates = [sid for sid in self.placement.members(gid)
                      if sid != old_leader
                      and self._misses.get(sid, 0) == 0
                      and sid in self._state]
        if not candidates:
            return  # nobody alive and known: retry next tick
        # Prefer clean (never-restarted) members, then the freshest.
        def rank(sid: Hashable) -> tuple:
            applied, dirty = self._state[sid]
            return (dirty, -applied, str(sid))
        new_leader = min(candidates, key=rank)
        epoch = self.placement.promote(gid, new_leader)
        self.promotions.append((self.sim.now, gid, old_leader, new_leader,
                                epoch))
        self._suspect.discard(old_leader)

    # -- message handling ---------------------------------------------------

    def _on_message(self, msg: Any) -> None:
        if not isinstance(msg, self._reply_cls):
            return
        sid = msg.server
        if self._outstanding.get(sid) != msg.req_id:
            return  # stale or duplicated beat
        self._outstanding[sid] = None
        self._misses[sid] = 0
        self._state[sid] = (msg.applied, msg.dirty)
        prev = self._epoch_seen.get(sid)
        if prev is not None and msg.epoch != prev:
            # The member crashed and came back: its volatile locks are gone.
            # If it leads a group it must be fenced even though it answers.
            self._suspect.add(sid)
        self._epoch_seen[sid] = msg.epoch


def scan_lost_commits(history: Any, placement: ReplicatedPlacement,
                      servers: Mapping[Hashable, Any],
                      before: float | None = None) -> dict[str, int]:
    """Audit: is every committed write present where readers will look?

    ``lost_commits`` counts committed (key, ts) writes missing from the
    key's *current leader* — the zero-lost-writes assertion of the failover
    bench.  ``replica_missing`` additionally counts gaps on followers
    (weakened redundancy, not yet data loss).

    Versions at or below a server's stable purge floor are exempt on that
    server: the timestamp service legitimately discards overwritten
    versions below the floor (§6), keeping only each key's newest — absence
    there is garbage collection, not data loss.  ``before`` bounds the
    audit to commits whose timestamp precedes it: commits decided in the
    last instants before the simulation stops can have their (reliable)
    apply fan-out still in flight, which is an artifact of halting the
    world, not of the protocol.
    """
    checked = lost = replica_missing = 0

    def missing(srv: Any, key: Hashable, ts: Any) -> bool:
        if srv is None:
            return True
        floor = getattr(srv, "stable_floor", None)
        if floor is not None and ts <= floor:
            return False  # purge-eligible; absence proves nothing
        return srv.store.version_at(key, ts) is None

    for rec in history.committed():
        if rec.commit_ts is None or not rec.writes:
            continue
        if before is not None and rec.commit_ts.value >= before:
            continue
        for key in rec.writes:
            checked += 1
            gid = placement.group_of(key)
            if missing(servers.get(placement.leader(gid)), key,
                       rec.commit_ts):
                lost += 1
            for sid in placement.members(gid):
                if missing(servers.get(sid), key, rec.commit_ts):
                    replica_missing += 1
    return {"commits_checked": checked, "lost_commits": lost,
            "replica_missing": replica_missing}
