"""Quorum rules, the failover controller and post-run replication scans.

Replication scheme (primary-copy; DESIGN.md §5e):

* the group **leader** is the sole lock/conflict authority — Theorem 8's
  serializability argument is untouched;
* a client holds a write lock at a **write quorum**: the leader grant plus
  acknowledged mirrors (``ReplicaHoldReq``) on a majority of the group.
  Mirrors carry the granted interval *and* the pending value, so any
  quorum member can finish the commit alone;
* commit records fan out to **every** member and each member applies the
  decision it reads from the shared :class:`CommitmentRegistry` — the
  commitment object is the replication consensus, not a new protocol;
* on leader death the :class:`FailoverController` promotes the most
  up-to-date live follower and bumps the group's fencing epoch.  The
  promoted follower's mirrored (still unfrozen) locks resolve through the
  ordinary write-lock-timeout machinery: decided commits install, the rest
  abort — zero committed writes are lost.

The controller is deliberately message-driven (heartbeats over the
simulated network, no peeking at server objects), so detection latency is
a real, measurable quantity: ``promotion time - crash time``.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from .placement import ReplicatedPlacement

__all__ = ["write_quorum", "FailoverController", "scan_lost_commits"]


def write_quorum(replication: int) -> int:
    """Members that must hold a write lock (leader included): a majority."""
    return replication // 2 + 1


class FailoverController:
    """Heartbeat-driven leader failure detection and follower promotion.

    Every ``interval`` seconds the controller pings all group members; a
    leader that misses ``miss_limit`` consecutive beats — or answers with a
    *changed* restart epoch, proving it crashed and lost its volatile lock
    state — is demoted.  The replacement is the live follower with the
    freshest applied-commit count, preferring members that never restarted
    (a restarted member may have missed commit records while down; it
    stays a cold standby).  Full-rank draws — same dirtiness, same applied
    count — break on the string form of the server id: the controller owns
    no RNG stream, so every decision (promotion, recruitment, sync pokes)
    is a pure function of the heartbeat history and replays identically
    under a fixed seed.

    With ``anti_entropy`` the controller also drives the §5h self-healing
    loop: dirty members are poked to stream missing committed versions
    from their group leaders until they re-earn snapshot servability, and
    with ``recruit`` each demoted leader's slot is re-filled by catching
    up a clean outside server and flipping the placement (epoch bump).
    """

    node_id = "__failover__"

    def __init__(self, sim: Any, net: Any, placement: ReplicatedPlacement,
                 *, interval: float = 0.05, miss_limit: int = 3,
                 anti_entropy: bool = False, recruit: bool = False,
                 sync_batch: int = 64) -> None:
        # Deferred import: repro.dist imports this package at module load.
        from ..dist.messages import (HeartbeatReply, HeartbeatReq, SyncDone,
                                     SyncPoke)
        self._req_cls = HeartbeatReq
        self._reply_cls = HeartbeatReply
        self._poke_cls = SyncPoke
        self._done_cls = SyncDone
        self.sim = sim
        self.net = net
        self.placement = placement
        self.interval = interval
        self.miss_limit = miss_limit
        self.anti_entropy = anti_entropy
        self.recruit_enabled = recruit
        self.sync_batch = sync_batch
        members: set[Hashable] = set()
        for gid in placement.groups():
            members.update(placement.members(gid))
        self._members = sorted(members, key=str)
        #: Cluster servers recruitable as replacements (all of them — a
        #: non-member of one group is fair game even while serving others).
        self._pool = sorted(set(getattr(placement, "servers", [])) | members,
                            key=str)
        self._misses: dict[Hashable, int] = {m: 0 for m in self._pool}
        self._outstanding: dict[Hashable, Any] = {}
        self._epoch_seen: dict[Hashable, int] = {}
        self._suspect: set[Hashable] = set()
        #: Last reported (applied_commits, dirty) per member.
        self._state: dict[Hashable, tuple[int, bool]] = {}
        #: ``(time, gid, old_leader, new_leader, new_epoch)`` per promotion.
        self.promotions: list[tuple[float, int, Hashable, Hashable, int]] = []
        #: ``(time, gid, departed, recruit, new_epoch)`` per membership flip.
        self.recruitments: list[tuple[float, int, Hashable, Hashable,
                                      int]] = []
        #: gid -> in-flight recruitment ({"old", "cand", "stage"}); stages
        #: walk select -> dirtying -> syncing -> (flip on SyncDone).
        self._recruiting: dict[int, dict] = {}
        #: Smallest heartbeat-live member count any group ever showed
        #: (member not yet suspected by the detector = live).
        self.min_live_members: int | None = None
        self.heartbeats_sent = 0
        self.sync_pokes = 0
        self._seq = 0
        net.register(self.node_id, self._on_message)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        # 1. Account a miss for every server whose last ping went unanswered.
        for sid in self._pool:
            if self._outstanding.get(sid) is not None:
                self._misses[sid] += 1
        # 2. Demote dead or restarted leaders.
        for gid in self.placement.groups():
            leader = self.placement.leader(gid)
            if (self._misses.get(leader, 0) >= self.miss_limit
                    or leader in self._suspect):
                self._promote(gid, leader)
        self._suspect = {s for s in self._suspect
                         if any(self.placement.leader(g) == s
                                for g in self.placement.groups())}
        # 3. Record the detector-level liveness floor per group.
        live_min = None
        for gid in self.placement.groups():
            live = sum(1 for m in self.placement.members(gid)
                       if self._misses.get(m, 0) < self.miss_limit)
            live_min = live if live_min is None else min(live_min, live)
        if live_min is not None:
            self.min_live_members = (live_min if self.min_live_members is None
                                     else min(self.min_live_members,
                                              live_min))
        # 4. Self-healing: recruit replacements, then poke dirty members.
        if self.recruit_enabled:
            self._drive_recruitment()
        if self.anti_entropy:
            self._drive_sync()
        # 5. Ping everyone again.
        for sid in self._pool:
            self._seq += 1
            req = self._req_cls(tx_id="__hb__", client=self.node_id,
                                req_id=self._seq)
            self._outstanding[sid] = self._seq
            self.heartbeats_sent += 1
            self.net.send(sid, req, src=self.node_id)
        self.sim.schedule(self.interval, self._tick)

    # -- self-healing (DESIGN.md §5h) ---------------------------------------

    def _poke(self, sid: Hashable, sources: tuple, *, full: bool,
              mark_dirty: bool = False) -> None:
        self.sync_pokes += 1
        self.net.send(sid, self._poke_cls(sources=sources, full=full,
                                          mark_dirty=mark_dirty,
                                          num_groups=self.placement.num_groups,
                                          batch=self.sync_batch,
                                          origin=self.node_id),
                      src=self.node_id)

    def _drive_sync(self) -> None:
        """Poke every dirty, live member whose groups all have a clean,
        live source: the poke carries the *full* plan — one session per
        distinct leader — whose joint completion is the member's
        servability proof.  A group the member *itself leads* needs (and
        has) no external source: no commit in that group can be decided
        without the leader's own participation, in-flight fan-outs are
        redelivered by the at-least-once layer, and the post-run
        lost-commit audit checks leaders strictly — so the member's own
        durable state stands as that group's session, and a server that
        leads every group it belongs to gets an *empty* plan, which
        clears its flag at once.  Candidates mid-recruitment are skipped:
        their dirtiness is the membership-flip fence and must not be
        cleared against their *old* group set.
        """
        busy = {rec["cand"] for rec in self._recruiting.values()
                if rec["cand"] is not None}
        for sid in self._members:
            if sid in busy:
                continue
            st = self._state.get(sid)
            if st is None or not st[1] or self._misses.get(sid, 0) != 0:
                continue
            plan: dict[Hashable, list[int]] = {}
            ok = True
            for gid in self.placement.groups():
                if sid not in self.placement.members(gid):
                    continue
                leader = self.placement.leader(gid)
                if leader == sid:
                    continue  # own durable state is the authority here
                lst = self._state.get(leader)
                if (self._misses.get(leader, 0) != 0
                        or lst is None or lst[1]):
                    ok = False  # no clean live source for this group yet
                    break
                plan.setdefault(leader, []).append(gid)
            if not ok:
                continue
            sources = tuple((leader, tuple(sorted(plan[leader])))
                            for leader in sorted(plan, key=str))
            self._poke(sid, sources, full=True)

    def _select_recruit(self, members: set) -> Hashable | None:
        """Deterministic choice of a replacement: a live, clean outsider,
        freshest first, ties on server id — no RNG, same as promotion."""
        busy = {rec["cand"] for rec in self._recruiting.values()
                if rec["cand"] is not None}
        candidates = [sid for sid in self._pool
                      if sid not in members and sid not in busy
                      and self._misses.get(sid, 0) == 0
                      and sid in self._state and not self._state[sid][1]]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda sid: (-self._state[sid][0], str(sid)))

    def _drive_recruitment(self) -> None:
        """Advance each pending recruitment one deterministic step.

        Stage order is what makes the flip race-free: the candidate is
        marked dirty *first* (and the controller waits for a heartbeat to
        prove it took), so commits decided between its catch-up
        enumeration and the membership flip can never be served past —
        only the post-flip full sync, which covers them, re-earns
        servability.
        """
        for gid in sorted(self._recruiting):
            rec = self._recruiting[gid]
            members = set(self.placement.members(gid))
            leader = self.placement.leader(gid)
            if rec["old"] not in members or rec["old"] == leader:
                del self._recruiting[gid]  # membership moved on without us
                continue
            lst = self._state.get(leader)
            if (self._misses.get(leader, 0) != 0 or lst is None or lst[1]):
                continue  # no clean live sync source this tick
            cand = rec["cand"]
            if cand is not None and self._misses.get(cand, 0) != 0:
                rec["cand"] = None  # candidate died mid-recruitment
                rec["stage"] = "select"
                cand = None
            if cand is None:
                cand = self._select_recruit(members)
                if cand is None:
                    continue  # nobody recruitable this tick
                rec["cand"] = cand
                rec["stage"] = "dirtying"
            if rec["stage"] == "dirtying":
                st = self._state.get(cand)
                if st is not None and st[1]:
                    rec["stage"] = "syncing"  # heartbeat-confirmed dirty
                else:
                    self._poke(cand, (), full=False, mark_dirty=True)
                    continue
            if rec["stage"] == "syncing":
                self._poke(cand, ((leader, (gid,)),), full=False)

    def _promote(self, gid: int, old_leader: Hashable) -> None:
        candidates = [sid for sid in self.placement.members(gid)
                      if sid != old_leader
                      and self._misses.get(sid, 0) == 0
                      and sid in self._state]
        if not candidates:
            return  # nobody alive and known: retry next tick
        # Prefer clean (never-restarted) members, then the freshest.
        def rank(sid: Hashable) -> tuple:
            applied, dirty = self._state[sid]
            return (dirty, -applied, str(sid))
        new_leader = min(candidates, key=rank)
        epoch = self.placement.promote(gid, new_leader)
        self.promotions.append((self.sim.now, gid, old_leader, new_leader,
                                epoch))
        self._suspect.discard(old_leader)
        if self.recruit_enabled and gid not in self._recruiting:
            # The demoted leader's slot is marked for replacement: a clean
            # outsider will be caught up and swapped in, so the group's
            # quorum capacity survives repeated leader crashes.
            self._recruiting[gid] = {"old": old_leader, "cand": None,
                                     "stage": "select"}

    # -- message handling ---------------------------------------------------

    def _on_message(self, msg: Any) -> None:
        if isinstance(msg, self._done_cls):
            self._on_sync_done(msg)
            return
        if not isinstance(msg, self._reply_cls):
            return
        sid = msg.server
        if self._outstanding.get(sid) != msg.req_id:
            return  # stale or duplicated beat
        self._outstanding[sid] = None
        self._misses[sid] = 0
        self._state[sid] = (msg.applied, msg.dirty)
        prev = self._epoch_seen.get(sid)
        if prev is not None and msg.epoch != prev:
            # The member crashed and came back: its volatile locks are gone.
            # If it leads a group it must be fenced even though it answers.
            self._suspect.add(sid)
        self._epoch_seen[sid] = msg.epoch

    def _on_sync_done(self, msg: Any) -> None:
        """A recruitment catch-up finished: flip the membership.

        The flip only happens while the candidate is heartbeat-confirmed
        dirty and live — dirtiness is the fence that routes it through a
        post-flip full sync (covering the commits decided during the
        catch-up window) before it may serve snapshot reads.  The epoch
        bump fences transactions that mirrored onto the departing member.
        """
        if len(msg.gids) != 1:
            return
        gid = msg.gids[0]
        rec = self._recruiting.get(gid)
        if (rec is None or rec["cand"] != msg.server
                or rec["stage"] != "syncing"):
            return
        if self._misses.get(msg.server, 0) != 0:
            return  # candidate unreachable: let the tick re-select
        st = self._state.get(msg.server)
        if st is None or not st[1]:
            rec["stage"] = "dirtying"  # must be provably dirty to join
            return
        old = rec["old"]
        if (old not in self.placement.members(gid)
                or old == self.placement.leader(gid)):
            del self._recruiting[gid]
            return
        epoch = self.placement.replace_member(gid, old, msg.server,
                                              now=self.sim.now)
        self.recruitments.append((self.sim.now, gid, old, msg.server,
                                  epoch))
        del self._recruiting[gid]


def scan_lost_commits(history: Any, placement: ReplicatedPlacement,
                      servers: Mapping[Hashable, Any],
                      before: float | None = None) -> dict[str, int]:
    """Audit: is every committed write present where readers will look?

    ``lost_commits`` counts committed (key, ts) writes missing from the
    key's *current leader* — the zero-lost-writes assertion of the failover
    bench.  ``replica_missing`` additionally counts gaps on followers
    (weakened redundancy, not yet data loss).

    Versions at or below a server's stable purge floor are exempt on that
    server: the timestamp service legitimately discards overwritten
    versions below the floor (§6), keeping only each key's newest — absence
    there is garbage collection, not data loss.  ``before`` bounds the
    audit to commits whose timestamp precedes it: commits decided in the
    last instants before the simulation stops can have their (reliable)
    apply fan-out still in flight, which is an artifact of halting the
    world, not of the protocol.

    Recruited members get one more exemption (join cutoff): commits whose
    timestamp predates the member's join reached it only through the
    catch-up sync — possibly purged below the floor it adopted, possibly
    still streaming at scan time.  They are audited strictly on the leader
    and the founding members; flagging them on the recruit would turn
    healthy catch-up into phantom loss.  The leader check has *no* such
    exemption — a recruit is never promoted while dirty, and a clean
    recruit's store covers its adopted floor.
    """
    checked = lost = replica_missing = 0
    joined_at = getattr(placement, "member_joined_at", None)

    def missing(srv: Any, key: Hashable, ts: Any) -> bool:
        if srv is None:
            return True
        floor = getattr(srv, "stable_floor", None)
        if floor is not None and ts <= floor:
            return False  # purge-eligible; absence proves nothing
        return srv.store.version_at(key, ts) is None

    for rec in history.committed():
        if rec.commit_ts is None or not rec.writes:
            continue
        if before is not None and rec.commit_ts.value >= before:
            continue
        for key in rec.writes:
            checked += 1
            gid = placement.group_of(key)
            if missing(servers.get(placement.leader(gid)), key,
                       rec.commit_ts):
                lost += 1
            for sid in placement.members(gid):
                if joined_at is not None:
                    joined = joined_at(gid, sid)
                    if (joined is not None
                            and rec.commit_ts.value < joined):
                        continue  # pre-join commit: catch-up territory
                if missing(servers.get(sid), key, rec.commit_ts):
                    replica_missing += 1
    return {"commits_checked": checked, "lost_commits": lost,
            "replica_missing": replica_missing}
