"""Durability and replication layer (`repro.repl`).

The paper's §7 distributed protocol keeps every key on exactly one server
and treats that server's version store as magically crash-proof.  This
package replaces the magic with machinery:

* :mod:`repro.repl.wal` — a deterministic, CRC-framed write-ahead log; a
  restarting server recovers committed versions and commit decisions by
  replaying it (torn tails are truncated to the last complete record);
* :mod:`repro.repl.checkpoint` — version-store checkpoints that bound
  replay work, plus :class:`~repro.repl.checkpoint.DurableStore`, the
  per-server "disk" combining checkpoint + WAL tail;
* :mod:`repro.repl.placement` — leader/follower placement of key groups
  with fencing epochs, replacing the static ``dist/partition.py`` map;
* :mod:`repro.repl.replica` — write-quorum rules, the heartbeat-driven
  :class:`~repro.repl.replica.FailoverController` that promotes an
  up-to-date follower when a leader dies, and the post-run lost-commit
  scan the failover bench asserts on.

See DESIGN.md §5e for the WAL format, the quorum rules and why follower
reads at a locked (GC-frontier) timestamp are version-clean.
"""

from .checkpoint import DurableStore, RecoveredState, decode_snapshot, \
    encode_snapshot
from .placement import ReplicatedPlacement, group_index
from .replica import FailoverController, scan_lost_commits, write_quorum
from .wal import WriteAheadLog, decode_value, encode_value, replay_records

__all__ = [
    "WriteAheadLog", "encode_value", "decode_value", "replay_records",
    "DurableStore", "RecoveredState", "encode_snapshot", "decode_snapshot",
    "ReplicatedPlacement", "group_index",
    "FailoverController", "write_quorum", "scan_lost_commits",
]
