"""Checkpoint/restore of a server's durable state, and the DurableStore.

A checkpoint is a codec-serialised snapshot of the version store (all
chains + purge floors), the applied-request dedup set and the stable GC
floor.  Taking one lets the WAL be truncated: recovery becomes *checkpoint
load + tail replay* instead of replaying history from the beginning —
the standard ARIES-style contract, minus undo (the DES server installs
versions only for decided commits, so the log is redo-only).

:class:`DurableStore` bundles the latest checkpoint with the WAL tail and
is the single object a server treats as its disk: it survives ``crash()``
untouched while every volatile structure (lock table, pending buffer,
reply cache) is wiped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..core.timestamp import Timestamp
from ..core.versions import VersionStore
from .wal import WriteAheadLog, decode_value, encode_value

__all__ = ["encode_snapshot", "decode_snapshot", "RecoveredState",
           "DurableStore"]

#: Record kinds in the WAL (first element of each record tuple).
COMMIT = "commit"
PURGE = "purge"
SYNC = "sync"

_SNAPSHOT_VERSION = 1


def encode_snapshot(store: VersionStore,
                    dedup: "tuple[tuple[Any, Any], ...]",
                    stable_floor: "Timestamp | None") -> bytes:
    """Serialise a deep snapshot of the durable state."""
    chains = tuple((key, versions, floor)
                   for key, versions, floor in store.snapshot())
    return encode_value(("ckpt", _SNAPSHOT_VERSION, chains, tuple(dedup),
                         stable_floor))


def decode_snapshot(blob: bytes) -> tuple[VersionStore,
                                          "list[tuple[Any, Any]]",
                                          "Timestamp | None"]:
    """Rebuild ``(store, dedup, stable_floor)`` from snapshot bytes."""
    tag, version, chains, dedup, stable_floor = decode_value(blob)
    if tag != "ckpt" or version != _SNAPSHOT_VERSION:
        raise ValueError(f"bad snapshot header ({tag!r}, {version!r})")
    store = VersionStore()
    for key, versions, floor in chains:
        store.load_chain(key, versions, floor)
    return store, list(dedup), stable_floor


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` hands back to a restarting server."""

    store: VersionStore
    #: ``(client, req_id)`` pairs of already-applied commit requests, oldest
    #: first — the restart re-primes its dedup cache from these so a retried
    #: already-committed request cannot double-apply.
    dedup: list[tuple[Any, Any]] = field(default_factory=list)
    #: The highest GC purge bound the server had applied (its snapshot-read
    #: stability frontier), if any.
    stable_floor: "Timestamp | None" = None
    #: Committed version installs replayed from the WAL tail (diagnostics).
    replayed_installs: int = 0


class DurableStore:
    """One server's disk: latest checkpoint + WAL tail.

    ``checkpoint_every`` > 0 takes a checkpoint (and truncates the WAL)
    every that-many logged records; 0 disables checkpointing, leaving pure
    log replay.
    """

    __slots__ = ("wal", "checkpoint_every", "checkpoints", "_snapshot",
                 "_since_checkpoint")

    def __init__(self, *, checkpoint_every: int = 0) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.wal = WriteAheadLog()
        self.checkpoint_every = checkpoint_every
        self.checkpoints = 0
        self._snapshot: bytes | None = None
        self._since_checkpoint = 0

    # -- logging -----------------------------------------------------------

    def log_commit(self, tx_id: Any, ts: Timestamp,
                   entries: "tuple[tuple[Hashable, Any], ...]",
                   client: Any = None, req_id: Any = None) -> None:
        """Log a commit application: all of the tx's installs on this server.

        One record per commit keeps recovery atomic per transaction — a
        torn tail either replays the whole commit or none of it.  ``client``
        / ``req_id`` identify the CommitReq that caused the application (None
        for the write-lock-timeout recovery path) and seed the dedup cache
        on restart.
        """
        self.wal.append((COMMIT, tx_id, ts, entries, client, req_id))
        self._since_checkpoint += 1

    def log_purge(self, bound: Timestamp) -> None:
        self.wal.append((PURGE, bound))
        self._since_checkpoint += 1

    def log_sync(self,
                 entries: "tuple[tuple[Hashable, Timestamp, Any], ...]"
                 ) -> None:
        """Log one applied anti-entropy batch (DESIGN.md §5h).

        Versions installed by a sync session must be as durable as ones
        installed by a CommitReq — otherwise a crash after the session
        cleared ``snapshot_dirty`` (but before the next checkpoint) would
        recover a state the servability proof no longer covers.  Dirtiness
        itself is volatile: a restart always comes back dirty and re-earns
        servability through a fresh full sync.
        """
        self.wal.append((SYNC, entries))
        self._since_checkpoint += 1

    # -- checkpointing ------------------------------------------------------

    def maybe_checkpoint(self, store: VersionStore,
                         dedup: "tuple[tuple[Any, Any], ...]",
                         stable_floor: "Timestamp | None") -> bool:
        if (self.checkpoint_every
                and self._since_checkpoint >= self.checkpoint_every):
            self.checkpoint(store, dedup, stable_floor)
            return True
        return False

    def checkpoint(self, store: VersionStore,
                   dedup: "tuple[tuple[Any, Any], ...]",
                   stable_floor: "Timestamp | None") -> None:
        """Snapshot the live state and truncate the log it supersedes."""
        self._snapshot = encode_snapshot(store, dedup, stable_floor)
        self.wal.truncate()
        self._since_checkpoint = 0
        self.checkpoints += 1

    # -- recovery ----------------------------------------------------------

    def recover(self, *,
                aborted: "Callable[[Any], bool] | None" = None
                ) -> RecoveredState:
        """Checkpoint load + WAL tail replay -> a fresh committed state.

        ``aborted`` (optional) consults the commitment registry's decision
        tombstones: a logged commit whose transaction is known to have been
        decided ABORT is skipped.  This cannot happen for records this
        module writes (only decided commits are logged) but keeps recovery
        sound if a log is shared or hand-built.
        """
        if self._snapshot is not None:
            store, dedup, stable_floor = decode_snapshot(self._snapshot)
        else:
            store, dedup, stable_floor = VersionStore(), [], None
        seen = set(dedup)
        replayed = 0
        for record in self.wal.replay():
            kind = record[0]
            if kind == COMMIT:
                _, tx_id, ts, entries, client, req_id = record
                if aborted is not None and aborted(tx_id):
                    continue
                for key, value in entries:
                    # Guarded install: idempotent across checkpoint overlap
                    # and the timeout-then-CommitReq double-log case.
                    if store.version_at(key, ts) is None:
                        store.install(key, ts, value)
                        replayed += 1
                if client is not None and (client, req_id) not in seen:
                    seen.add((client, req_id))
                    dedup.append((client, req_id))
            elif kind == PURGE:
                _, bound = record
                store.purge_before(bound)
                if stable_floor is None or bound > stable_floor:
                    stable_floor = bound
            elif kind == SYNC:
                _, entries = record
                for key, ts, value in entries:
                    # Guarded like COMMIT replay: the same version may also
                    # arrive via a logged commit or checkpoint overlap.
                    if store.version_at(key, ts) is None:
                        store.install(key, ts, value)
                        replayed += 1
        return RecoveredState(store=store, dedup=dedup,
                              stable_floor=stable_floor,
                              replayed_installs=replayed)
