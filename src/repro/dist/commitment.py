"""Commitment objects: consensus on a transaction's outcome (§7, §H).

A failed coordinator can leave write locks unfrozen forever; a commitment
object per transaction lets coordinator and servers agree on the outcome —
"abort" or "commit at timestamp t" — with the standard uniform-consensus
properties (§H.2): validity (the decision was proposed), agreement (no two
participants decide differently), integrity, termination.

Two implementations:

:class:`CommitmentObject`
    The consensus state machine itself: first proposal wins.  Because the
    DES executes events sequentially, a shared in-sim instance is trivially
    linearizable — this models the §H.1 setting where storage is replicated
    and the commitment "logical entity" does not fail.

:class:`CommitmentRegistry`
    Creates/locates the object for a transaction and implements the §H.1
    *decision-point* optimization used by the message-based protocol: the
    first write-set server is designated the decision point, and proposals
    are RPCs to it (or local calls when the proposer *is* the decision
    server), so the failure-free commit path adds no extra round trips.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..core.timestamp import Timestamp
from ..sim.simulator import SimEvent, Simulator

__all__ = ["ABORT", "CommitmentObject", "CommitmentRegistry"]

#: The abort outcome (commit outcomes are the commit Timestamp itself).
ABORT = "abort"


class CommitmentObject:
    """Single-shot consensus: the first proposed outcome is decided.

    ``propose`` returns the decided outcome (which may differ from the
    proposal if someone else proposed first).  ``decision_event`` lets
    simulation processes await the decision.
    """

    __slots__ = ("tx_id", "_decision", "decision_event")

    def __init__(self, sim: Simulator, tx_id: Hashable) -> None:
        self.tx_id = tx_id
        self._decision: Any = None
        self.decision_event = SimEvent(sim)

    @property
    def decided(self) -> bool:
        return self._decision is not None

    @property
    def decision(self) -> Any:
        return self._decision

    def propose(self, outcome: Any) -> Any:
        """Propose ``outcome`` ("abort" or a commit Timestamp); returns the
        decision."""
        if outcome != ABORT and not isinstance(outcome, Timestamp):
            raise ValueError(f"invalid outcome {outcome!r}")
        if self._decision is None:
            self._decision = outcome
            self.decision_event.set(outcome)
        return self._decision


class CommitmentRegistry:
    """Per-transaction commitment objects plus decision-point bookkeeping."""

    #: How many finished-transaction decisions to remember (tombstones).
    #: They only need to outlive the servers' write-lock timeout, which at
    #: simulated throughputs is a few hundred transactions at most.
    _TOMBSTONE_MAX = 65536

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._objects: dict[Hashable, CommitmentObject] = {}
        #: Decisions of forgotten transactions.  Without these, a server
        #: whose write-lock timeout fires *after* the coordinator committed
        #: and forgot (e.g. the CommitReq to that server was lost) would
        #: propose abort to a brand-new object, win, and release locks the
        #: rest of the system believes are frozen — a partial commit.
        self._decided: dict[Hashable, Any] = {}
        #: tx -> node id of the designated decision-point server (§H.1).
        self.decision_point: dict[Hashable, Hashable] = {}

    def get(self, tx_id: Hashable) -> CommitmentObject:
        obj = self._objects.get(tx_id)
        if obj is None:
            obj = self._objects[tx_id] = CommitmentObject(self._sim, tx_id)
            decided = self._decided.get(tx_id)
            if decided is not None:
                obj.propose(decided)  # resurrect the tombstoned decision
        return obj

    def decision_of(self, tx_id: Hashable) -> Any:
        """The decided outcome of ``tx_id`` if known, else None.

        Consults live objects first, then the tombstones of forgotten
        transactions.  Recovery (WAL replay) uses this to skip logged
        commits of transactions that are known to have decided ABORT.
        """
        obj = self._objects.get(tx_id)
        if obj is not None and obj.decided:
            return obj.decision
        return self._decided.get(tx_id)

    def set_decision_point(self, tx_id: Hashable, server: Hashable) -> None:
        """Designate ``server`` as tx's decision point (first write server);
        later designations are ignored."""
        self.decision_point.setdefault(tx_id, server)

    def forget(self, tx_id: Hashable) -> None:
        """Drop state for a finished transaction (bounds registry growth).

        A decided outcome is kept as a tombstone so late proposals (a
        server's write-lock timeout racing a lost commit notification)
        still see it instead of deciding fresh.
        """
        obj = self._objects.pop(tx_id, None)
        if obj is not None and obj.decided:
            self._decided[tx_id] = obj.decision
            if len(self._decided) > self._TOMBSTONE_MAX:
                self._decided.pop(next(iter(self._decided)))
        self.decision_point.pop(tx_id, None)

    def __len__(self) -> int:
        return len(self._objects)
