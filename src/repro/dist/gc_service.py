"""The timestamp service (§8.1).

"A timestamp service periodically broadcasts a message with a time T in the
past, equal to the service's current time minus a constant K."  The broadcast
has two effects: servers purge versions (and their lock state) older than T,
and clients with slow clocks advance to T so they do not start transactions
that would need purged versions.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..core.timestamp import Timestamp
from ..sim.network import Network
from ..sim.simulator import Simulator
from .messages import ClockBroadcast, PurgeReq

__all__ = ["TimestampService"]

_PID_MIN = -(2**31)


class TimestampService:
    """Periodically broadcasts T = now - K to servers and clients."""

    def __init__(self, sim: Simulator, net: Network,
                 servers: Iterable[Hashable], clients: Iterable[Hashable],
                 *, horizon: float, period: float = 15.0,
                 enabled: bool = True) -> None:
        self.sim = sim
        self.net = net
        self.servers = list(servers)
        self.clients = list(clients)
        self.horizon = horizon
        self.period = period
        self.enabled = enabled
        self.broadcasts = 0

    def start(self) -> None:
        if self.enabled:
            self.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        t = self.sim.now - self.horizon
        if t > 0:
            bound = Timestamp(t, _PID_MIN)
            # Skip crashed nodes: broadcasting into the void would inflate
            # the message counters forever (a crashed client never comes
            # back; a crashed server purges on its own schedule once it
            # rejoins and the next tick reaches it).
            for server in self.servers:
                if self.net.is_up(server):
                    self.net.send(server, PurgeReq(
                        tx_id="__ts_service__", client="__ts_service__",
                        req_id=self.broadcasts, bound=bound))
            for client in self.clients:
                if self.net.is_up(client):
                    self.net.send(client, ClockBroadcast(t=t))
            self.broadcasts += 1
        self.sim.schedule(self.period, self._tick)
