"""Failure injection (§7, §H).

Coordinator (client) crashes are the failure mode the distributed algorithm
must survive: a crashed coordinator may leave unfrozen write locks behind,
and §H's liveness theorems say the servers' write-lock timeout + commitment
object eventually abort the orphaned transaction and release its locks, so
correct coordinators are never delayed forever (Theorems 9-10).

:class:`CrashInjector` crashes a client mid-transaction: the client's
process is cancelled (it never takes another step) and its network node is
unregistered (replies to it vanish) — exactly how a crash looks to the rest
of an asynchronous system.  It also schedules *server* crash/restart: a
fail-stop server drops everything in flight, and a restarted one rejoins
with empty volatile lock state (see
:meth:`repro.dist.server._ServerBase.restart`), forcing clients whose locks
evaporated onto the recovery path.

:class:`ChaosSchedule` is the scenario script: a deterministic, seeded
sequence of :class:`ChaosEvent` (client crashes and server crash/restart
pairs) generated from a :class:`ChaosConfig`, applied to a running cluster
through a :class:`CrashInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Sequence

import numpy as np

from ..core.locks import LockMode
from ..sim.network import Network
from ..sim.simulator import Process, Simulator

__all__ = ["ChaosConfig", "ChaosEvent", "ChaosSchedule", "CrashInjector",
           "orphaned_write_locks"]


class CrashInjector:
    """Crash simulated clients — and crash/restart servers — at chosen times."""

    def __init__(self, sim: Simulator, net: Network) -> None:
        self.sim = sim
        self.net = net
        self.crashed: list[Hashable] = []
        #: (time, "crash"|"restart", server_id) in application order.
        self.server_events: list[tuple[float, str, Hashable]] = []

    def crash_client_at(self, when: float, client_id: Hashable,
                        process: Process) -> None:
        """Schedule a crash of ``client_id`` (and its driver process)."""
        self.sim.schedule(max(0.0, when - self.sim.now), self._crash,
                          client_id, process)

    def _crash(self, client_id: Hashable, process: Process) -> None:
        process.cancel()
        self.net.unregister(client_id)
        self.crashed.append(client_id)

    def crash_server_at(self, when: float, server: Any,
                        *extras: Any) -> None:
        """Schedule a fail-stop crash of ``server`` (an object with a
        ``crash()`` method).  ``extras`` crash at the same instant — e.g.
        the Paxos acceptor co-located with a storage server."""
        self.sim.schedule(max(0.0, when - self.sim.now),
                          self._crash_server, server, extras)

    def _crash_server(self, server: Any, extras: tuple) -> None:
        server.crash()
        for extra in extras:
            extra.crash()
        self.server_events.append((self.sim.now, "crash", server.server_id))

    def restart_server_at(self, when: float, server: Any,
                          *extras: Any) -> None:
        """Schedule a restart of a crashed ``server`` (empty volatile
        state; see the server's ``restart``)."""
        self.sim.schedule(max(0.0, when - self.sim.now),
                          self._restart_server, server, extras)

    def _restart_server(self, server: Any, extras: tuple) -> None:
        server.restart()
        for extra in extras:
            extra.restart()
        self.server_events.append((self.sim.now, "restart",
                                   server.server_id))

    def crash_leader_at(self, when: float, gid: int, placement: Any,
                        servers: dict, downtime: float,
                        extras: dict | None = None) -> None:
        """Schedule a crash of whoever *leads* group ``gid`` at fire time.

        The leader is resolved when the event fires, not when it is
        scheduled — an earlier failover may already have moved the
        leadership.  The crashed server restarts ``downtime`` seconds
        later as a cold standby (its restart marks it dirty, so the
        failover controller will not promote it back until it is the only
        candidate left).
        """
        extras = extras or {}
        def fire() -> None:
            sid = placement.leader(gid)
            server = servers[sid]
            if server.crashed:
                return  # already down (overlapping scenario); skip
            co = (extras[sid],) if sid in extras else ()
            self._crash_server(server, co)
            self.sim.schedule(downtime, self._restart_server, server, co)
        self.sim.schedule(max(0.0, when - self.sim.now), fire)

    def crash_follower_at(self, when: float, gid: int, idx: int,
                          placement: Any, servers: dict,
                          downtime: float,
                          extras: dict | None = None) -> None:
        """Schedule a crash of one *follower* of group ``gid`` at fire time.

        Like :meth:`crash_leader_at`, the victim is resolved when the
        event fires: the group's current members minus its current leader,
        sorted by ``str`` for determinism, indexed by ``idx`` modulo the
        follower count.  If the group has no live follower to crash (all
        already down, or replication degenerated to the leader alone) the
        event is skipped rather than crashing a leader — follower restarts
        must never cost a group its write authority.
        """
        extras = extras or {}
        def fire() -> None:
            leader = placement.leader(gid)
            followers = sorted((m for m in placement.members(gid)
                                if m != leader), key=str)
            followers = [m for m in followers if not servers[m].crashed]
            if not followers:
                return  # nothing safe to crash; skip
            sid = followers[idx % len(followers)]
            server = servers[sid]
            co = (extras[sid],) if sid in extras else ()
            self._crash_server(server, co)
            self.sim.schedule(downtime, self._restart_server, server, co)
        self.sim.schedule(max(0.0, when - self.sim.now), fire)


@dataclass(frozen=True)
class ChaosConfig:
    """What a chaos scenario injects (fault *models* live on the Network)."""

    #: Coordinator crashes: this many distinct clients die at seeded times.
    client_crashes: int = 0
    #: Server crash/restart pairs: each picks a server, crashes it, and
    #: restarts it ``downtime`` seconds later with empty volatile state.
    server_restarts: int = 0
    #: How long a crashed server stays down before rejoining.
    downtime: float = 0.3
    #: Replication-mode failover scenario: this many times, crash whatever
    #: server currently *leads* a randomly drawn key group (resolved at
    #: fire time) and restart it ``leader_downtime`` seconds later as a
    #: cold standby.  Requires ``ClusterConfig.replication > 1`` — the
    #: failover controller must exist to promote a follower.
    leader_crashes: int = 0
    leader_downtime: float = 0.5
    #: Self-healing scenario: this many times, crash whatever server is
    #: currently a *follower* of a randomly drawn key group (resolved at
    #: fire time, never the leader) and restart it ``follower_downtime``
    #: seconds later.  The restarted follower comes back dirty and must
    #: re-earn snapshot-servability through anti-entropy sync.  Requires
    #: ``ClusterConfig.replication > 1``.
    follower_restarts: int = 0
    follower_downtime: float = 0.3

    def __post_init__(self) -> None:
        if (self.client_crashes < 0 or self.server_restarts < 0
                or self.leader_crashes < 0 or self.follower_restarts < 0):
            raise ValueError("event counts must be >= 0")
        if (self.downtime <= 0 or self.leader_downtime <= 0
                or self.follower_downtime <= 0):
            raise ValueError("downtime must be positive")

    @property
    def any(self) -> bool:
        return bool(self.client_crashes or self.server_restarts
                    or self.leader_crashes or self.follower_restarts)


@dataclass(frozen=True, order=True)
class ChaosEvent:
    """One scheduled injection: ``action`` is ``"crash-client"``,
    ``"crash-server"``, ``"restart-server"``, ``"crash-leader"`` (target is
    a group id) or ``"crash-follower"`` (target is ``(gid, idx)``)."""

    when: float
    action: str
    target: Hashable


class ChaosSchedule:
    """A deterministic scenario script: sorted :class:`ChaosEvent` list."""

    def __init__(self, events: Sequence[ChaosEvent],
                 leader_downtime: float = 0.5,
                 follower_downtime: float = 0.3) -> None:
        self.events = sorted(events)
        self.leader_downtime = leader_downtime
        self.follower_downtime = follower_downtime

    @classmethod
    def generate(cls, config: ChaosConfig, rng: np.random.Generator,
                 client_ids: Sequence[Hashable],
                 server_ids: Sequence[Hashable],
                 start: float, end: float,
                 num_groups: int | None = None) -> "ChaosSchedule":
        """Build a schedule from a seeded RNG stream — same stream, same
        scenario, so a chaos run is exactly reproducible.

        Client crashes hit distinct clients at uniform times in
        ``[start, end]``.  Server restarts are laid out one per disjoint
        time slot, so no two crash/restart windows overlap even when the
        same server is drawn twice.
        """
        if end <= start:
            raise ValueError("need end > start")
        events: list[ChaosEvent] = []
        span = end - start
        if config.client_crashes and len(client_ids):
            n = min(config.client_crashes, len(client_ids))
            picks = rng.choice(len(client_ids), size=n, replace=False)
            times = start + rng.random(n) * span
            for i, t in zip(picks, times):
                events.append(ChaosEvent(float(t), "crash-client",
                                         client_ids[int(i)]))
        if config.server_restarts:
            if not len(server_ids):
                # Silently generating no events would make the scenario a
                # no-op the caller thinks it ran.
                raise ValueError(
                    f"server_restarts={config.server_restarts} requested "
                    f"but no server_ids were given")
            n = config.server_restarts
            slot = span / n
            if config.downtime >= slot:
                # Each crash/restart pair needs its own disjoint slot of
                # more than ``downtime`` seconds, i.e. a measurement window
                # strictly longer than n * downtime.
                raise ValueError(
                    f"downtime {config.downtime} does not fit "
                    f"{n} restarts into a {span:.3f}s window: each restart "
                    f"needs a disjoint slot > {config.downtime}s, so the "
                    f"window must be longer than "
                    f"{n * config.downtime:.3f}s (n * downtime)")
            for k in range(n):
                sid = server_ids[int(rng.integers(len(server_ids)))]
                lo = start + k * slot
                t = lo + float(rng.random()) * (slot - config.downtime)
                events.append(ChaosEvent(t, "crash-server", sid))
                events.append(ChaosEvent(t + config.downtime,
                                         "restart-server", sid))
        if config.leader_crashes:
            # Drawn strictly after every pre-existing stream use, so seeds
            # of non-replicated scenarios keep their exact outcomes.
            if not num_groups:
                raise ValueError(
                    f"leader_crashes={config.leader_crashes} requires a "
                    f"replicated placement (num_groups)")
            n = config.leader_crashes
            slot = span / n
            if config.leader_downtime >= slot:
                raise ValueError(
                    f"leader_downtime {config.leader_downtime} does not "
                    f"fit {n} leader crashes into a {span:.3f}s window")
            for k in range(n):
                gid = int(rng.integers(num_groups))
                lo = start + k * slot
                t = lo + float(rng.random()) * (slot - config.leader_downtime)
                events.append(ChaosEvent(t, "crash-leader", gid))
        if config.follower_restarts:
            # Also drawn after every pre-existing stream use (including
            # leader crashes), so existing chaos seeds keep their outcomes.
            if not num_groups:
                raise ValueError(
                    f"follower_restarts={config.follower_restarts} requires "
                    f"a replicated placement (num_groups)")
            n = config.follower_restarts
            slot = span / n
            if config.follower_downtime >= slot:
                raise ValueError(
                    f"follower_downtime {config.follower_downtime} does not "
                    f"fit {n} follower restarts into a {span:.3f}s window")
            for k in range(n):
                gid = int(rng.integers(num_groups))
                idx = int(rng.integers(1 << 16))
                lo = start + k * slot
                t = lo + float(rng.random()) * (slot
                                                - config.follower_downtime)
                events.append(ChaosEvent(t, "crash-follower", (gid, idx)))
        return cls(events, leader_downtime=config.leader_downtime,
                   follower_downtime=config.follower_downtime)

    def apply(self, injector: CrashInjector,
              client_procs: dict[Hashable, Process],
              servers: dict[Hashable, Any],
              extras: dict[Hashable, Any] | None = None,
              placement: Any | None = None) -> None:
        """Arm every event on the injector.

        ``client_procs`` maps client id -> driver Process; ``servers`` maps
        server id -> server object; ``extras`` optionally maps server id to
        a co-located component that crashes/restarts with it (its Paxos
        acceptor); ``placement`` (a ReplicatedPlacement) is required for
        ``crash-leader`` events, whose victim is resolved at fire time.
        """
        extras = extras or {}
        for ev in self.events:
            if ev.action == "crash-client":
                injector.crash_client_at(ev.when, ev.target,
                                         client_procs[ev.target])
            elif ev.action == "crash-server":
                co = ((extras[ev.target],) if ev.target in extras else ())
                injector.crash_server_at(ev.when, servers[ev.target], *co)
            elif ev.action == "restart-server":
                co = ((extras[ev.target],) if ev.target in extras else ())
                injector.restart_server_at(ev.when, servers[ev.target], *co)
            elif ev.action == "crash-leader":
                if placement is None:
                    raise ValueError("crash-leader events need a placement")
                injector.crash_leader_at(ev.when, ev.target, placement,
                                         servers, self.leader_downtime,
                                         extras)
            elif ev.action == "crash-follower":
                if placement is None:
                    raise ValueError("crash-follower events need a placement")
                gid, idx = ev.target
                injector.crash_follower_at(ev.when, gid, idx, placement,
                                           servers, self.follower_downtime,
                                           extras)
            else:
                raise ValueError(f"unknown chaos action {ev.action!r}")


def orphaned_write_locks(servers: Sequence[Any],
                         crashed_clients: set) -> int:
    """Count unfrozen write locks (or leaked pending values) still owned by
    crashed coordinators, across leaders *and* follower replicas.

    Theorems 9-10: after the write-lock timeout (plus decision latency) an
    orphaned transaction's write locks must be gone — either released (the
    timeout abort won) or frozen (a racing commit won).  The same applies
    to mirrored holds on followers, which arm the same timeout.  A pending
    buffer entry without any unfrozen lock is counted too: it means the
    hold was resolved but its value leaked.  Any survivor is a liveness
    bug.
    """

    def coordinator_crashed(tx_id: Any) -> bool:
        return (isinstance(tx_id, tuple) and bool(tx_id)
                and tx_id[0] in crashed_clients)

    orphaned: set[tuple] = set()
    for server in servers:
        if not hasattr(server, "locks"):
            continue  # 2PL server: no MVTL lock table
        for tx_id in list(server.locks.owners()):
            if not coordinator_crashed(tx_id):
                continue
            for key in server.locks.keys_of(tx_id):
                state = server.locks.peek(key)
                if state is None:
                    continue
                held = state.held(tx_id, LockMode.WRITE)
                if held.is_empty:
                    continue
                if not held.subtract(
                        state.frozen(tx_id, LockMode.WRITE)).is_empty:
                    orphaned.add((str(server.server_id), tx_id, key))
        for tx_id, key in getattr(server, "pending", {}):
            if coordinator_crashed(tx_id):
                orphaned.add((str(server.server_id), tx_id, key))
    return len(orphaned)
