"""Failure injection (§7, §H).

Coordinator (client) crashes are the failure mode the distributed algorithm
must survive: a crashed coordinator may leave unfrozen write locks behind,
and §H's liveness theorems say the servers' write-lock timeout + commitment
object eventually abort the orphaned transaction and release its locks, so
correct coordinators are never delayed forever (Theorems 9-10).

:class:`CrashInjector` crashes a client mid-transaction: the client's
process is cancelled (it never takes another step) and its network node is
unregistered (replies to it vanish) — exactly how a crash looks to the rest
of an asynchronous system.
"""

from __future__ import annotations

from typing import Hashable

from ..sim.network import Network
from ..sim.simulator import Process, Simulator

__all__ = ["CrashInjector"]


class CrashInjector:
    """Crash simulated clients at chosen times."""

    def __init__(self, sim: Simulator, net: Network) -> None:
        self.sim = sim
        self.net = net
        self.crashed: list[Hashable] = []

    def crash_client_at(self, when: float, client_id: Hashable,
                        process: Process) -> None:
        """Schedule a crash of ``client_id`` (and its driver process)."""
        self.sim.schedule(max(0.0, when - self.sim.now), self._crash,
                          client_id, process)

    def _crash(self, client_id: Hashable, process: Process) -> None:
        process.cancel()
        self.net.unregister(client_id)
        self.crashed.append(client_id)
