"""Distributed MVTL (§7, §H) and the §8 prototype protocols over the DES."""

from .client import BaseClient, MVTILClient, MVTOClient, TwoPLClient
from .cluster import PROTOCOLS, ClusterConfig, ClusterResult, run_cluster
from .commitment import ABORT, CommitmentObject, CommitmentRegistry
from .failure import ChaosConfig, ChaosEvent, ChaosSchedule, CrashInjector
from .gc_service import TimestampService
from .partition import Partition
from .server import MVTLServer, TwoPLServer

__all__ = [
    "MVTILClient", "MVTOClient", "TwoPLClient", "BaseClient",
    "MVTLServer", "TwoPLServer", "Partition",
    "CommitmentObject", "CommitmentRegistry", "ABORT",
    "TimestampService", "CrashInjector",
    "ChaosConfig", "ChaosEvent", "ChaosSchedule",
    "ClusterConfig", "ClusterResult", "run_cluster", "PROTOCOLS",
]
