"""Single-decree Paxos over the simulated network (§H.1).

The commitment object of §7 is consensus on a transaction's outcome.  When
storage servers are replicated (the common production case) a trivially
linearizable in-sim object models it (:mod:`repro.dist.commitment`).  When
*servers themselves may fail*, §H.1 prescribes "a Paxos-like consensus
protocol ..., with all the servers in the system as participants".  This
module provides that substrate:

* :class:`PaxosAcceptor` — the acceptor role, one per participant node,
  keeping per-transaction ``(promised, accepted)`` state and answering
  prepare/accept messages;
* :class:`PaxosConsensus` — configuration (acceptor set, quorum) plus the
  learned-decision cache, and the proposer logic as a simulation coroutine:
  classic two-phase Paxos with ballot escalation and randomized backoff on
  conflict, tolerating any minority of crashed acceptors.

Decisions are per-transaction instances of the §7 outcome domain: the
string ``"abort"`` or a commit :class:`~repro.core.timestamp.Timestamp`.
Safety is Paxos's: once any value is chosen by a quorum, every later
proposal decides the same value, no matter which coordinators or servers
crash or duel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Generator, Hashable

import numpy as np

from ..sim.network import Network
from ..sim.simulator import RECV_TIMEOUT, Mailbox, Recv, Simulator

__all__ = ["Ballot", "PaxosAcceptor", "PaxosConsensus"]


@dataclass(frozen=True, slots=True, order=True)
class Ballot:
    """A totally ordered ballot number: (round, proposer id)."""

    round: int
    proposer: int


# -- wire messages -------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class _Prepare:
    tx_id: Hashable
    ballot: Ballot
    reply_to: Hashable


@dataclass(frozen=True, slots=True)
class _Promise:
    tx_id: Hashable
    ballot: Ballot
    accepted_ballot: Ballot | None
    accepted_value: Any
    acceptor: Hashable


@dataclass(frozen=True, slots=True)
class _PrepareNack:
    tx_id: Hashable
    ballot: Ballot
    promised: Ballot


@dataclass(frozen=True, slots=True)
class _Accept:
    tx_id: Hashable
    ballot: Ballot
    value: Any
    reply_to: Hashable


@dataclass(frozen=True, slots=True)
class _Accepted:
    tx_id: Hashable
    ballot: Ballot
    acceptor: Hashable


@dataclass(frozen=True, slots=True)
class _AcceptNack:
    tx_id: Hashable
    ballot: Ballot
    promised: Ballot


@dataclass(slots=True)
class _AcceptorSlot:
    promised: Ballot | None = None
    accepted_ballot: Ballot | None = None
    accepted_value: Any = None


class PaxosAcceptor:
    """The acceptor role for all transactions, at one network node."""

    def __init__(self, sim: Simulator, net: Network,
                 node_id: Hashable) -> None:
        self.sim = sim
        self.net = net
        self.node_id = node_id
        self.crashed = False
        self._slots: dict[Hashable, _AcceptorSlot] = {}
        net.register(node_id, self.on_message)

    def crash(self) -> None:
        """Fail-stop: stop answering (messages to us vanish)."""
        if self.crashed:
            return
        self.crashed = True
        self.net.unregister(self.node_id)

    def restart(self) -> None:
        """Rejoin.  Promises/accepts are durable (Paxos requires acceptors
        to persist them across crashes), so ``_slots`` survives."""
        if not self.crashed:
            return
        self.crashed = False
        self.net.register(self.node_id, self.on_message)

    def _slot(self, tx_id: Hashable) -> _AcceptorSlot:
        slot = self._slots.get(tx_id)
        if slot is None:
            slot = self._slots[tx_id] = _AcceptorSlot()
        return slot

    def on_message(self, msg: Any) -> None:
        if isinstance(msg, _Prepare):
            slot = self._slot(msg.tx_id)
            if slot.promised is None or msg.ballot > slot.promised:
                slot.promised = msg.ballot
                reply = _Promise(msg.tx_id, msg.ballot,
                                 slot.accepted_ballot, slot.accepted_value,
                                 self.node_id)
            else:
                reply = _PrepareNack(msg.tx_id, msg.ballot, slot.promised)
            self.net.send(msg.reply_to, reply, src=self.node_id)
        elif isinstance(msg, _Accept):
            slot = self._slot(msg.tx_id)
            if slot.promised is None or msg.ballot >= slot.promised:
                slot.promised = msg.ballot
                slot.accepted_ballot = msg.ballot
                slot.accepted_value = msg.value
                reply = _Accepted(msg.tx_id, msg.ballot, self.node_id)
            else:
                reply = _AcceptNack(msg.tx_id, msg.ballot, slot.promised)
            self.net.send(msg.reply_to, reply, src=self.node_id)
        # Unknown messages are ignored (stale replies etc.).

    def forget(self, tx_id: Hashable) -> None:
        """Drop per-transaction state (after the decision is durable)."""
        self._slots.pop(tx_id, None)


class PaxosConsensus:
    """Proposer logic + learned-decision cache over a set of acceptors."""

    def __init__(self, sim: Simulator, net: Network,
                 acceptors: list[Hashable],
                 rng: np.random.Generator | None = None, *,
                 phase_timeout: float = 0.05) -> None:
        if not acceptors:
            raise ValueError("need at least one acceptor")
        self.sim = sim
        self.net = net
        self.acceptors = list(acceptors)
        self.quorum = len(self.acceptors) // 2 + 1
        self.phase_timeout = phase_timeout
        self._rng = rng if rng is not None else np.random.default_rng()
        #: tx -> decided outcome, once learned by any proposer.
        self.learned: dict[Hashable, Any] = {}
        self._proposal_seq = count(1)
        #: decisions observed, for metrics/tests.
        self.stats = {"proposals": 0, "rounds": 0}

    def decided(self, tx_id: Hashable) -> Any | None:
        return self.learned.get(tx_id)

    def propose(self, tx_id: Hashable, value: Any, proposer_id: int,
                ) -> Generator[Any, Any, Any]:
        """Simulation coroutine: run Paxos for ``tx_id`` proposing ``value``.

        Returns the decided outcome (possibly another proposer's value).
        Terminates once a quorum of acceptors is reachable; with a crashed
        minority it still decides, with a crashed majority it retries
        forever (consensus is impossible then — the §H model assumes a
        correct majority).
        """
        cached = self.learned.get(tx_id)
        if cached is not None:
            return cached
        self.stats["proposals"] += 1
        node_id = f"paxos-proposer-{next(self._proposal_seq)}"
        mailbox = Mailbox(self.sim)
        self.net.register(node_id, mailbox.deliver)
        try:
            decision = yield from self._run(tx_id, value, proposer_id,
                                            node_id, mailbox)
        finally:
            self.net.unregister(node_id)
        self.learned[tx_id] = decision
        return decision

    def _run(self, tx_id: Hashable, value: Any, proposer_id: int,
             node_id: Hashable, mailbox: Mailbox
             ) -> Generator[Any, Any, Any]:
        round_no = 0
        while True:
            cached = self.learned.get(tx_id)
            if cached is not None:
                return cached
            round_no += 1
            self.stats["rounds"] += 1
            ballot = Ballot(round_no, proposer_id)

            # Phase 1: prepare / promise.
            for acceptor in self.acceptors:
                self.net.send(acceptor,
                              _Prepare(tx_id, ballot, node_id),
                              src=node_id)
            promises: list[_Promise] = []
            highest_nack = None
            deadline = self.sim.now + self.phase_timeout
            while (len(promises) < self.quorum
                   and self.sim.now < deadline):
                msg = yield Recv(mailbox, timeout=deadline - self.sim.now)
                if msg is RECV_TIMEOUT:
                    break
                if (isinstance(msg, _Promise) and msg.tx_id == tx_id
                        and msg.ballot == ballot):
                    promises.append(msg)
                elif (isinstance(msg, _PrepareNack) and msg.tx_id == tx_id
                      and msg.ballot == ballot):
                    highest_nack = (msg.promised if highest_nack is None
                                    else max(highest_nack, msg.promised))
            if len(promises) < self.quorum:
                round_no = max(round_no,
                               highest_nack.round if highest_nack else 0)
                yield from self._backoff(round_no)
                continue

            # Adopt the highest previously accepted value, if any.
            chosen = value
            best: Ballot | None = None
            for promise in promises:
                if (promise.accepted_ballot is not None
                        and (best is None or promise.accepted_ballot > best)):
                    best = promise.accepted_ballot
                    chosen = promise.accepted_value

            # Phase 2: accept / accepted.
            for acceptor in self.acceptors:
                self.net.send(acceptor,
                              _Accept(tx_id, ballot, chosen, node_id),
                              src=node_id)
            accepted = 0
            deadline = self.sim.now + self.phase_timeout
            while accepted < self.quorum and self.sim.now < deadline:
                msg = yield Recv(mailbox, timeout=deadline - self.sim.now)
                if msg is RECV_TIMEOUT:
                    break
                if (isinstance(msg, _Accepted) and msg.tx_id == tx_id
                        and msg.ballot == ballot):
                    accepted += 1
                elif (isinstance(msg, _AcceptNack) and msg.tx_id == tx_id
                      and msg.ballot == ballot):
                    round_no = max(round_no, msg.promised.round)
            if accepted >= self.quorum:
                return chosen
            yield from self._backoff(round_no)

    def _backoff(self, round_no: int) -> Generator[Any, Any, None]:
        from ..sim.simulator import Sleep
        base = self.phase_timeout * 0.5
        yield Sleep(float(self._rng.uniform(0.2, 1.0)) * base
                    * min(8, round_no))
