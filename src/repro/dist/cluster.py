"""Cluster assembly and experiment execution.

:func:`run_cluster` is the single entry point every benchmark and
integration test uses: it builds a simulated deployment — servers behind
service queues, closed-loop clients with per-client clocks, the timestamp
service, optional failure injection — runs warm-up plus measurement
(§8.3), and returns throughput, commit rate, state samples and (optionally)
the full history for serializability checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..clocks.clock import EpsilonSyncClock
from ..obs.metrics import MetricsRegistry, fold_trace, merge_conflict_counts
from ..obs.trace import Tracer
from ..sim.network import Network
from ..sim.rng import RngFactory
from ..sim.simulator import Simulator, Sleep
from ..sim.testbed import LOCAL_TESTBED, TestbedProfile
from ..verify.history import HistoryRecorder
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from ..workload.runner import closed_loop_client
from ..workload.stats import RunStats, StateSampler
from .client import MVTILClient, MVTOClient, TwoPLClient
from .commitment import CommitmentRegistry
from .gc_service import TimestampService
from .partition import Partition
from .server import MVTLServer, TwoPLServer

__all__ = ["ClusterConfig", "ClusterResult", "run_cluster", "PROTOCOLS"]

#: Protocols accepted by :class:`ClusterConfig`.
PROTOCOLS = ("mvtil-early", "mvtil-late", "mvto", "2pl")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one experiment run (one figure data point)."""

    protocol: str = "mvtil-early"
    profile: TestbedProfile = LOCAL_TESTBED
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    num_clients: int = 90
    num_servers: int | None = None  # None = profile default
    seed: int = 0
    warmup: float = 1.0
    measure: float = 4.0
    #: MVTIL interval width (paper: 5 ms).
    delta: float = 0.005
    #: MVTIL read-lock wait bound (deadlock resolution for waiting reads).
    read_timeout: float = 0.25
    #: 2PL lock-wait timeout (tuned for throughput, §8.4.1).
    lock_timeout: float = 0.05
    #: Server-side unfrozen-write-lock timeout (§H failure handling).
    write_lock_timeout: float = 2.0
    #: Restarts per transaction before giving up (§8.1).
    max_restarts: int = 2
    #: Commitment-object backend: "local" models replicated, non-failing
    #: decision state (§H.1's common case); "paxos" runs real single-decree
    #: consensus over per-server acceptors (§H.1's servers-may-fail case).
    commitment: str = "local"
    #: Batch commit-path lock messages per server (MVTIL defers writes and
    #: sends one MVTLBatchLockReq per server at commit; MVTO+ batches its
    #: commit-time point locks likewise; 2PL commit installs are always
    #: per-server).  Drops commit-path messages from O(written keys) to
    #: O(servers touched).  False reproduces the per-key wire protocol.
    batching: bool = True
    #: Run the timestamp service (version/lock purging + clock floor).
    gc_enabled: bool = True
    gc_period: float = 15.0
    #: Record the full history and check nothing with it here (the caller
    #: runs the MVSG checker); heavy for long runs.
    record_history: bool = False
    #: Sample lock/version counts every N seconds (0 = off).
    state_sample_period: float = 0.0
    #: Record per-completion timestamps for windowed series (Fig. 7).
    record_completions: bool = False
    #: Attach a recording tracer (repro.obs) to every client and server,
    #: and return the trace + folded metrics in the result.  The tracer
    #: never touches RNG streams or the event queue, so a traced run's
    #: outcome is bit-identical to the untraced run with the same seed.
    trace: bool = False
    #: Sample server queue depths every N simulated seconds into the
    #: metrics registry (0 = off; only meaningful with ``trace=True``).
    queue_sample_period: float = 0.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"expected one of {PROTOCOLS}")
        if self.commitment not in ("local", "paxos"):
            raise ValueError(f"unknown commitment backend "
                             f"{self.commitment!r}")


@dataclass
class ClusterResult:
    """Outcome of one run."""

    config: ClusterConfig
    throughput: float
    commit_rate: float
    committed: int
    aborted: int
    history: HistoryRecorder | None
    state_samples: list[Any]
    completions: list[tuple[float, bool]]
    messages_sent: int
    server_stats: list[dict]
    mean_latency: float = 0.0
    p95_latency: float = 0.0
    #: Network messages (all kinds, both directions, whole run) divided by
    #: committed transactions (whole run) — the wire cost of the protocol.
    #: Batching lowers it by collapsing per-key commit traffic.
    messages_per_commit: float = 0.0
    #: In-window abort-reason counts (attempt-level, str -> count).
    abort_reasons: dict = field(default_factory=dict)
    #: p50/p95/p99 + mean + count for committed and aborted attempts.
    latency_summary: dict = field(default_factory=dict)
    #: Recorded TraceEvents (``config.trace`` only; else None).
    trace: list | None = None
    #: Folded metrics dict (``config.trace`` only; else None) — counters /
    #: gauges / histograms plus a ``run`` section with the headline numbers.
    metrics: dict | None = None

    def summary(self) -> str:
        return (f"{self.config.protocol:12s} clients={self.config.num_clients:4d} "
                f"thr={self.throughput:8.1f} txs/s  commit_rate={self.commit_rate:.3f}")


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Build the simulated deployment described by ``config`` and run it."""
    sim = Simulator()
    rngs = RngFactory(config.seed)
    net = Network(sim, config.profile.latency, rngs.stream())
    registry = CommitmentRegistry(sim)
    history = HistoryRecorder() if config.record_history else None
    tracer = Tracer(now_fn=lambda: sim.now) if config.trace else None

    num_servers = (config.num_servers if config.num_servers is not None
                   else config.profile.num_servers)
    server_ids = [f"server-{i}" for i in range(num_servers)]
    consensus = None
    if config.commitment == "paxos" and config.protocol != "2pl":
        # One acceptor per storage server node ("all the servers in the
        # system as participants", §H.1).
        from .paxos import PaxosAcceptor, PaxosConsensus
        acceptor_ids = [f"{sid}-acceptor" for sid in server_ids]
        for aid in acceptor_ids:
            PaxosAcceptor(sim, net, aid)
        consensus = PaxosConsensus(sim, net, acceptor_ids,
                                   rng=rngs.stream())
    servers: list[Any] = []
    for sid in server_ids:
        if config.protocol == "2pl":
            servers.append(TwoPLServer(sim, net, sid, config.profile,
                                       rngs.stream()))
        else:
            servers.append(MVTLServer(
                sim, net, sid, config.profile, rngs.stream(), registry,
                write_lock_timeout=config.write_lock_timeout,
                consensus=consensus))
    if tracer is not None:
        for server in servers:
            server.tracer = tracer
    partition = Partition(server_ids)

    stats = RunStats(sim, config.warmup, config.measure)
    stats.record_completions = config.record_completions

    client_ids = []
    clients = []
    for i in range(config.num_clients):
        cid = f"client-{i}"
        client_ids.append(cid)
        pid = i + 1
        clock = EpsilonSyncClock(lambda: sim.now,
                                 config.profile.clock_skew,
                                 rng=rngs.stream(), fixed=True)
        common = dict(history=history, consensus=consensus, tracer=tracer)
        if config.protocol in ("mvtil-early", "mvtil-late"):
            client = MVTILClient(sim, net, cid, pid, partition, clock,
                                 registry, delta=config.delta,
                                 late=config.protocol.endswith("late"),
                                 read_timeout=config.read_timeout,
                                 defer_writes=config.batching,
                                 **common)
        elif config.protocol == "mvto":
            client = MVTOClient(sim, net, cid, pid, partition, clock,
                                registry, batch_commit=config.batching,
                                **common)
        else:
            client = TwoPLClient(sim, net, cid, pid, partition, clock,
                                 registry, lock_timeout=config.lock_timeout,
                                 **common)
        clients.append(client)
        workload = WorkloadGenerator(config.workload, rngs.stream())
        sim.spawn(closed_loop_client(
            client, workload, stats, rngs.stream(),
            client_overhead=config.profile.client_overhead,
            max_restarts=config.max_restarts), name=cid)

    service = TimestampService(sim, net, server_ids, client_ids,
                               horizon=config.profile.gc_horizon,
                               period=config.gc_period,
                               enabled=config.gc_enabled)
    service.start()

    sampler = None
    if config.state_sample_period > 0:
        sampler = StateSampler(sim, servers, config.state_sample_period)
        sim.spawn(sampler.process(), name="state-sampler")

    metrics_reg = MetricsRegistry() if config.trace else None
    if config.trace and config.queue_sample_period > 0:
        # Note: unlike the tracer, the sampler *does* schedule simulator
        # events, so queue-depth sampling is opt-in separately — it can
        # reorder same-time event ties against an unsampled run.
        def queue_sampler():
            depth = metrics_reg.gauge("server.queue_depth")
            busy = metrics_reg.gauge("server.busy_slots")
            while True:
                yield Sleep(config.queue_sample_period)
                depth.set(sum(s.queue.queue_length for s in servers))
                busy.set(sum(s.queue.busy_slots for s in servers))

        sim.spawn(queue_sampler(), name="queue-sampler")

    sim.run_until(config.warmup + config.measure)

    # Wire cost: every network message (requests, replies, fire-and-forget
    # notifications, maintenance) over every commit the whole run produced
    # (client stats cover warmup too, matching messages_sent's scope).
    total_commits = sum(c.stats["commits"] for c in clients)
    messages_per_commit = net.messages_sent / max(1, total_commits)

    metrics = None
    if config.trace:
        fold_trace(tracer.events, metrics_reg)
        for server in servers:
            merge_conflict_counts(metrics_reg, server.conflicts)
        metrics = metrics_reg.as_dict()
        metrics["run"] = {
            "protocol": config.protocol,
            "throughput": stats.throughput,
            "commit_rate": stats.commit_rate,
            "committed": stats.committed,
            "aborted": stats.aborted,
            "abort_reasons": dict(stats.abort_reasons),
            "latency": stats.latency_summary(),
            "messages_sent": net.messages_sent,
            "messages_per_commit": messages_per_commit,
        }

    return ClusterResult(
        config=config,
        throughput=stats.throughput,
        commit_rate=stats.commit_rate,
        committed=stats.committed,
        aborted=stats.aborted,
        history=history,
        state_samples=sampler.samples if sampler else [],
        completions=stats.completions,
        messages_sent=net.messages_sent,
        server_stats=[s.stats for s in servers],
        messages_per_commit=messages_per_commit,
        mean_latency=stats.mean_latency,
        p95_latency=stats.latency_percentile(95),
        abort_reasons=dict(stats.abort_reasons),
        latency_summary=stats.latency_summary(),
        trace=tracer.events if tracer is not None else None,
        metrics=metrics,
    )
