"""Cluster assembly and experiment execution.

:func:`run_cluster` is the single entry point every benchmark and
integration test uses: it builds a simulated deployment — servers behind
service queues, closed-loop clients with per-client clocks, the timestamp
service, optional failure injection — runs warm-up plus measurement
(§8.3), and returns throughput, commit rate, state samples and (optionally)
the full history for serializability checking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..clocks.clock import EpsilonSyncClock
from ..core.timestamp import BOTTOM
from ..obs.metrics import (MetricsRegistry, fold_trace,
                           merge_conflict_counts, merge_overload_counters,
                           merge_replication_counters,
                           merge_scenario_counters)
from ..obs.trace import Tracer
from ..repl.checkpoint import DurableStore
from ..repl.placement import ReplicatedPlacement
from ..repl.replica import FailoverController, scan_lost_commits
from ..sim.network import LinkFaults, Network
from ..sim.rng import RngFactory
from ..sim.simulator import Simulator, Sleep
from ..sim.testbed import LOCAL_TESTBED, TestbedProfile
from ..verify.history import HistoryRecorder
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from ..workload.runner import closed_loop_client
from ..workload.scenarios import SCENARIOS, make_scenario_generator
from ..workload.stats import RunStats, StateSampler
from .client import BohmClient, MVTILClient, MVTOClient, TwoPLClient
from .commitment import CommitmentRegistry
from .failure import (ChaosConfig, ChaosSchedule, CrashInjector,
                      orphaned_write_locks)
from .gc_service import TimestampService
from .partition import Partition
from .server import BohmSequencerServer, MVTLServer, TwoPLServer

__all__ = ["ClusterConfig", "ClusterResult", "run_cluster", "PROTOCOLS"]

#: Protocols accepted by :class:`ClusterConfig`.
PROTOCOLS = ("mvtil-early", "mvtil-late", "mvto", "2pl", "bohm")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one experiment run (one figure data point)."""

    protocol: str = "mvtil-early"
    profile: TestbedProfile = LOCAL_TESTBED
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    num_clients: int = 90
    num_servers: int | None = None  # None = profile default
    seed: int = 0
    warmup: float = 1.0
    measure: float = 4.0
    #: MVTIL interval width (paper: 5 ms).
    delta: float = 0.005
    #: MVTIL read-lock wait bound (deadlock resolution for waiting reads).
    read_timeout: float = 0.25
    #: 2PL lock-wait timeout (tuned for throughput, §8.4.1).
    lock_timeout: float = 0.05
    #: Server-side unfrozen-write-lock timeout (§H failure handling).
    write_lock_timeout: float = 2.0
    #: Restarts per transaction before giving up (§8.1).
    max_restarts: int = 2
    #: Commitment-object backend: "local" models replicated, non-failing
    #: decision state (§H.1's common case); "paxos" runs real single-decree
    #: consensus over per-server acceptors (§H.1's servers-may-fail case).
    commitment: str = "local"
    #: Batch commit-path lock messages per server (MVTIL defers writes and
    #: sends one MVTLBatchLockReq per server at commit; MVTO+ batches its
    #: commit-time point locks likewise; 2PL commit installs are always
    #: per-server).  Drops commit-path messages from O(written keys) to
    #: O(servers touched).  False reproduces the per-key wire protocol.
    batching: bool = True
    #: Run the timestamp service (version/lock purging + clock floor).
    gc_enabled: bool = True
    gc_period: float = 15.0
    #: Record the full history and check nothing with it here (the caller
    #: runs the MVSG checker); heavy for long runs.
    record_history: bool = False
    #: Sample lock/version counts every N seconds (0 = off).
    state_sample_period: float = 0.0
    #: Record per-completion timestamps for windowed series (Fig. 7).
    record_completions: bool = False
    #: Attach a recording tracer (repro.obs) to every client and server,
    #: and return the trace + folded metrics in the result.  The tracer
    #: never touches RNG streams or the event queue, so a traced run's
    #: outcome is bit-identical to the untraced run with the same seed.
    trace: bool = False
    #: Sample server queue depths every N simulated seconds into the
    #: metrics registry (0 = off; only meaningful with ``trace=True``).
    queue_sample_period: float = 0.0
    #: Per-link fault model applied to every link (loss / duplication /
    #: delay spikes), sampled from a dedicated RNG stream.  None = the
    #: perfect network of the paper's TCP transport.
    faults: LinkFaults | None = None
    #: Chaos scenario (client crashes, server crash/restart pairs),
    #: generated deterministically inside the measurement window.
    chaos: ChaosConfig | None = None
    #: Client RPC timeout (first attempt; backoff doubles it per retry).
    rpc_timeout: float = 5.0
    #: Client RPC retries (same req_id; servers dedup).  Keep 0 on a
    #: perfect network — with loss, 2-3 attempts ride out most drops.
    rpc_retries: int = 0
    #: Bound on each server's request queue (None = unbounded, the
    #: pre-overload-control behaviour).  When full, the newest normal-class
    #: request is shed with an explicit OVERLOADED reply; critical-class
    #: requests and control notifications are never shed.
    queue_capacity: int | None = None
    #: Per-transaction time budget (seconds).  Every transaction gets the
    #: absolute deadline ``begin + tx_budget``, carried on its data
    #: requests: servers drop expired requests instead of serving stale
    #: work, clients stop retrying into saturation.  None = no deadlines.
    tx_budget: float | None = None
    #: Per-server circuit breakers on the clients: consecutive overload
    #: signals (sheds, unanswered data RPCs) trip the breaker and new
    #: normal transactions against that server abort client-side until a
    #: half-open probe succeeds.  Critical transactions bypass the gate.
    admission_control: bool = False
    #: Consecutive failures that trip a client's per-server breaker.
    breaker_threshold: int = 8
    #: Seconds a tripped breaker stays open before its half-open probe.
    breaker_cooldown: float = 0.5
    #: Key-group replication factor (repro.repl).  1 = the paper's
    #: unreplicated deployment (plain partitioning, bit-identical seeds).
    #: r > 1 places every key group on r servers in ring order: the leader
    #: is the lock/conflict authority, write locks are mirrored onto a
    #: write quorum of followers, and commit records fan out to every
    #: member so a promoted follower already holds the committed data.
    replication: int = 1
    #: Per-server durability: "memory" = volatile stores that restart
    #: empty (the seed behaviour); "wal" = every commit apply is logged to
    #: a write-ahead log and ``restart()`` recovers versions + dedup
    #: decisions by checkpoint load + log replay (repro.repl.wal).
    durability: str = "memory"
    #: WAL records between checkpoints (0 = never checkpoint; replay the
    #: whole log on restart).  Only meaningful with ``durability="wal"``.
    checkpoint_every: int = 128
    #: Serve read-only transactions from follower replicas at a locked
    #: (GC-floor) snapshot timestamp instead of running the interval
    #: protocol.  Requires ``replication > 1``.
    follower_reads: bool = False
    #: Failover controller ping period; a leader missing
    #: ``heartbeat_miss_limit`` consecutive replies is declared dead and a
    #: follower is promoted.  Only runs when ``replication > 1``.
    heartbeat_interval: float = 0.05
    heartbeat_miss_limit: int = 3
    #: Self-healing anti-entropy (DESIGN.md §5h): the failover controller
    #: pokes dirty (restarted) members to stream missing committed
    #: versions from their group leaders; a member that completes its full
    #: sync plan clears ``snapshot_dirty`` and re-enters the follower-read
    #: rotation.  Off = the §5e baseline where a restarted follower never
    #: re-earns servability.  Requires ``replication > 1``.
    anti_entropy: bool = False
    #: Versions per SyncDelta batch (bounds sync message size/CPU).
    sync_batch: int = 64
    #: Dynamic membership: after every promotion the controller recruits a
    #: clean outside server through the catch-up path and swaps it into
    #: the demoted leader's slot (epoch bump), so repeated leader crashes
    #: do not bleed the group's live quorum.  Requires ``anti_entropy``.
    recruitment: bool = False
    #: Acked, retried commit fan-out to group members (CommitAck replies)
    #: instead of the paper's fire-and-forget notification.  The loss-
    #: hardening for LinkFaults runs; decided transactions never fail on
    #: the fan-out — exhausted retries are only counted.  Requires
    #: ``replication > 1``.
    reliable_fanout: bool = False
    #: Named scenario from the workload zoo (repro.workload.scenarios).
    #: When set, each client runs that scenario's generator instead of the
    #: knob-driven WorkloadGenerator (``workload`` still supplies the
    #: knobs), clients stop issuing new transactions at
    #: ``warmup + measure`` so the run can *drain to quiescence*, and the
    #: result carries ``final_state`` (authoritative latest committed value
    #: per key) plus a ``scenario_report`` for invariant checking.
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"expected one of {PROTOCOLS}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.tx_budget is not None and self.tx_budget <= 0:
            raise ValueError("tx_budget must be positive (or None)")
        if self.commitment not in ("local", "paxos"):
            raise ValueError(f"unknown commitment backend "
                             f"{self.commitment!r}")
        if self.protocol == "2pl" and (
                self.faults is not None
                or (self.chaos is not None and self.chaos.any)):
            # 2PL has no recovery protocol: its commit is fire-and-forget
            # with no commitment object or write-lock timeout behind it, so
            # a lost commit message silently diverges the servers.
            raise ValueError("fault injection requires a recovery protocol; "
                             "2pl does not have one")
        if self.protocol == "bohm":
            # The single sequencer is the one authority and its state is
            # volatile — link faults are fine (dedup + retries absorb
            # duplicates and losses), but there is no crash recovery.
            if self.chaos is not None and self.chaos.any:
                raise ValueError("crash chaos requires a recovery protocol; "
                                 "the bohm sequencer does not have one")
            if self.replication > 1 or self.follower_reads:
                raise ValueError("bohm runs unreplicated (single sequencer)")
            if self.durability == "wal":
                raise ValueError("wal durability requires the MVTL commit "
                                 "machinery; bohm has no per-key commit "
                                 "decisions to log")
            if self.commitment != "local":
                raise ValueError("bohm has no commitment objects; only the "
                                 "local backend is meaningful")
        if (self.commitment == "paxos" and self.chaos is not None
                and self.chaos.server_restarts > 0):
            # Epoch validation is race-free only under the local commitment
            # backend (reply handling and decision share one simulation
            # step).  With Paxos a restart can slip between the epoch check
            # and the multi-round decision; §H.1's servers-may-fail model
            # assumes replicated (durable) lock state instead of volatile
            # state that restarts empty.
            raise ValueError("server restarts are not supported with the "
                             "paxos commitment backend (volatile lock loss "
                             "can race the multi-round decision)")
        if self.durability not in ("memory", "wal"):
            raise ValueError(f"unknown durability mode {self.durability!r}; "
                             f"expected 'memory' or 'wal'")
        if self.durability == "wal" and self.protocol == "2pl":
            raise ValueError("wal durability requires the MVTL commit "
                             "machinery; 2pl has no commit decisions to "
                             "log or replay")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.heartbeat_interval <= 0 or self.heartbeat_miss_limit < 1:
            raise ValueError("heartbeat_interval must be positive and "
                             "heartbeat_miss_limit >= 1")
        if self.replication > 1:
            if self.protocol not in ("mvtil-early", "mvtil-late"):
                raise ValueError("replication > 1 requires an MVTIL "
                                 "protocol (mirrored holds carry the "
                                 "leader-granted interval locks)")
            if not self.batching:
                raise ValueError("replication > 1 requires batching "
                                 "(write locks are mirrored from the "
                                 "per-server batch grants)")
            if self.commitment != "local":
                raise ValueError("replication > 1 requires the local "
                                 "commitment backend (the registry is the "
                                 "replicated decision store)")
        if self.follower_reads and self.replication <= 1:
            raise ValueError("follower_reads requires replication > 1")
        if self.sync_batch < 1:
            raise ValueError("sync_batch must be >= 1")
        if (self.anti_entropy or self.reliable_fanout) \
                and self.replication <= 1:
            raise ValueError("anti_entropy and reliable_fanout require "
                             "replication > 1 (they harden the replica "
                             "machinery)")
        if self.recruitment and not self.anti_entropy:
            raise ValueError("recruitment requires anti_entropy (a recruit "
                             "joins through the catch-up sync path)")
        if (self.chaos is not None and self.chaos.leader_crashes > 0
                and self.replication <= 1):
            raise ValueError("chaos.leader_crashes requires replication > 1 "
                             "(a failover controller must exist to promote "
                             "a follower)")
        if (self.chaos is not None and self.chaos.follower_restarts > 0
                and self.replication <= 1):
            raise ValueError("chaos.follower_restarts requires "
                             "replication > 1 (an unreplicated group has "
                             "no followers to restart)")
        if self.scenario is not None and self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"expected one of {sorted(SCENARIOS)}")


@dataclass
class ClusterResult:
    """Outcome of one run."""

    config: ClusterConfig
    throughput: float
    commit_rate: float
    committed: int
    aborted: int
    history: HistoryRecorder | None
    state_samples: list[Any]
    completions: list[tuple[float, bool]]
    messages_sent: int
    server_stats: list[dict]
    mean_latency: float = 0.0
    p95_latency: float = 0.0
    #: Network messages (all kinds, both directions, whole run) divided by
    #: committed transactions (whole run) — the wire cost of the protocol.
    #: Batching lowers it by collapsing per-key commit traffic.
    messages_per_commit: float = 0.0
    #: In-window abort-reason counts (attempt-level, str -> count).
    abort_reasons: dict = field(default_factory=dict)
    #: p50/p95/p99 + mean + count for committed and aborted attempts.
    latency_summary: dict = field(default_factory=dict)
    #: Recorded TraceEvents (``config.trace`` only; else None).
    trace: list | None = None
    #: Folded metrics dict (``config.trace`` only; else None) — counters /
    #: gauges / histograms plus a ``run`` section with the headline numbers.
    metrics: dict | None = None
    #: Fault-injection outcome (``config.faults``/``config.chaos`` only):
    #: crashed clients, server crash/restart events, loss/duplication/retry
    #: counters, and ``orphaned_write_locks`` — unfrozen write locks still
    #: owned by a crashed coordinator after the settle period (Theorems
    #: 9-10 say this must be zero).
    chaos_report: dict | None = None
    #: Overload-control outcome (always populated): server shed/expired
    #: counts, client-side admission rejects and breaker trips, and the
    #: per-class (critical vs normal) goodput/latency summary.
    overload_report: dict = field(default_factory=dict)
    #: Scenario runs only: the authoritative latest committed value for
    #: every key (leaders' version stores after draining to quiescence) —
    #: what the per-scenario invariants (balance conservation, dense
    #: counters, index consistency) are checked against.
    final_state: dict | None = None
    #: Scenario runs only: {"scenario", "quiesced", "counters"} — whether
    #: every client drained before the deadline, plus the merged
    #: per-generator event counters.
    scenario_report: dict | None = None
    #: Replication/durability outcome (``replication > 1`` or
    #: ``durability="wal"`` only): failover promotions and latencies,
    #: quorum/snapshot-read counters, WAL record/checkpoint counts,
    #: follower-read staleness summary, and — with ``record_history`` — the
    #: ``scan_lost_commits`` audit (``lost_commits`` must be zero).
    replication_report: dict | None = None
    #: Simulator events processed during the run.  Deterministic for a
    #: given (config, seed); together with ``wall_s`` it yields the
    #: sim-events/s hot-path metric the perf harness records.
    sim_events: int = 0
    #: Host wall-clock seconds spent inside :func:`run_cluster`.  The one
    #: nondeterministic field — benchmark plumbing only; equivalence checks
    #: must compare everything *except* this.
    wall_s: float = 0.0

    def summary(self) -> str:
        return (f"{self.config.protocol:12s} clients={self.config.num_clients:4d} "
                f"thr={self.throughput:8.1f} txs/s  commit_rate={self.commit_rate:.3f}")


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Build the simulated deployment described by ``config`` and run it."""
    wall_start = time.perf_counter()
    sim = Simulator()
    rngs = RngFactory(config.seed)
    # Fault/chaos streams are drawn *conditionally* so that a run without
    # fault injection keeps exactly the seed->stream assignment (and hence
    # the exact outcome) it had before fault injection existed.
    fault_rng = rngs.stream() if config.faults is not None else None
    net = Network(sim, config.profile.latency, rngs.stream(),
                  fault_rng=fault_rng)
    if config.faults is not None:
        net.set_default_faults(config.faults)
    chaos_on = config.chaos is not None and config.chaos.any
    chaos_rng = rngs.stream() if chaos_on else None
    registry = CommitmentRegistry(sim)
    history = HistoryRecorder() if config.record_history else None
    tracer = Tracer(now_fn=lambda: sim.now) if config.trace else None

    num_servers = (config.num_servers if config.num_servers is not None
                   else config.profile.num_servers)
    if config.protocol == "bohm":
        # One sequencer node: Bohm's total order *is* its concurrency
        # control, and a single arrival point defines it.
        num_servers = 1
    if config.replication > num_servers:
        raise ValueError(f"replication={config.replication} needs at least "
                         f"that many servers (have {num_servers})")
    server_ids = [f"server-{i}" for i in range(num_servers)]
    consensus = None
    acceptors_by_sid: dict[str, Any] = {}
    if config.commitment == "paxos" and config.protocol != "2pl":
        # One acceptor per storage server node ("all the servers in the
        # system as participants", §H.1).
        from .paxos import PaxosAcceptor, PaxosConsensus
        acceptor_ids = [f"{sid}-acceptor" for sid in server_ids]
        for sid, aid in zip(server_ids, acceptor_ids):
            acceptors_by_sid[sid] = PaxosAcceptor(sim, net, aid)
        consensus = PaxosConsensus(sim, net, acceptor_ids,
                                   rng=rngs.stream())
    servers: list[Any] = []
    for sid in server_ids:
        if config.protocol == "2pl":
            servers.append(TwoPLServer(sim, net, sid, config.profile,
                                       rngs.stream(),
                                       queue_capacity=config.queue_capacity))
        elif config.protocol == "bohm":
            servers.append(BohmSequencerServer(
                sim, net, sid, config.profile, rngs.stream(),
                history=history, queue_capacity=config.queue_capacity))
        else:
            durable = (DurableStore(checkpoint_every=config.checkpoint_every)
                       if config.durability == "wal" else None)
            servers.append(MVTLServer(
                sim, net, sid, config.profile, rngs.stream(), registry,
                write_lock_timeout=config.write_lock_timeout,
                consensus=consensus, history=history,
                queue_capacity=config.queue_capacity,
                durable=durable, replicated=config.replication > 1))
    if tracer is not None:
        for server in servers:
            server.tracer = tracer
    # ReplicatedPlacement routes exactly like Partition at any replication
    # factor (same group hash, leader = the group's ring head); keeping
    # Partition for the unreplicated path preserves the seed object graph.
    partition = (ReplicatedPlacement(server_ids,
                                     replication=config.replication)
                 if config.replication > 1 else Partition(server_ids))

    stats = RunStats(sim, config.warmup, config.measure)
    stats.record_completions = config.record_completions

    client_ids = []
    clients = []
    client_procs: dict[str, Any] = {}
    scenario_gens: list[Any] = []
    # Scenario clients stop issuing new transactions at the end of the
    # measurement window so the run drains to quiescence for final-state
    # invariant checks; plain runs keep the run-forever closed loop.
    stop_after = (config.warmup + config.measure
                  if config.scenario is not None else None)
    # A restarted server rejoins with empty volatile lock state; epoch
    # validation makes committing clients re-confirm every touched server
    # before deciding, closing the lost-lock window.
    validate = chaos_on and (config.chaos.server_restarts > 0
                             or config.chaos.leader_crashes > 0
                             or config.chaos.follower_restarts > 0)
    for i in range(config.num_clients):
        cid = f"client-{i}"
        client_ids.append(cid)
        pid = i + 1
        clock = EpsilonSyncClock(lambda: sim.now,
                                 config.profile.clock_skew,
                                 rng=rngs.stream(), fixed=True)
        common = dict(history=history, consensus=consensus, tracer=tracer,
                      rpc_timeout=config.rpc_timeout,
                      rpc_retries=config.rpc_retries,
                      validate_epochs=validate,
                      tx_budget=config.tx_budget,
                      admission_control=config.admission_control,
                      breaker_threshold=config.breaker_threshold,
                      breaker_cooldown=config.breaker_cooldown)
        if config.protocol in ("mvtil-early", "mvtil-late"):
            client = MVTILClient(sim, net, cid, pid, partition, clock,
                                 registry, delta=config.delta,
                                 late=config.protocol.endswith("late"),
                                 read_timeout=config.read_timeout,
                                 defer_writes=config.batching,
                                 follower_reads=config.follower_reads,
                                 reliable_fanout=config.reliable_fanout,
                                 **common)
        elif config.protocol == "mvto":
            client = MVTOClient(sim, net, cid, pid, partition, clock,
                                registry, batch_commit=config.batching,
                                **common)
        elif config.protocol == "bohm":
            # History is recorded inside the sequencer's engine — the one
            # place that knows versions and commit timestamps.
            client = BohmClient(sim, net, cid, pid, partition, clock,
                                registry,
                                **{**common, "history": None})
        else:
            client = TwoPLClient(sim, net, cid, pid, partition, clock,
                                 registry, lock_timeout=config.lock_timeout,
                                 **common)
        clients.append(client)
        # Scenario generators replace the WorkloadGenerator *in place* —
        # the same single stream draw at the same position — so seeds for
        # scenario-less configs are bit-for-bit unchanged.
        if config.scenario is not None:
            workload: Any = make_scenario_generator(
                config.scenario, config.workload, rngs.stream(),
                client_index=i, num_clients=config.num_clients)
            scenario_gens.append(workload)
        else:
            workload = WorkloadGenerator(config.workload, rngs.stream())
        client_procs[cid] = sim.spawn(closed_loop_client(
            client, workload, stats, rngs.stream(),
            client_overhead=config.profile.client_overhead,
            max_restarts=config.max_restarts,
            stop_after=stop_after), name=cid)
    # Retry-jitter streams are drawn *after* the loop above so the
    # clock/workload/runner stream assignments — and hence every outcome of
    # a pre-overload-control seed — stay exactly as they were.
    for client in clients:
        client.rng = rngs.stream()

    injector = None
    if chaos_on:
        injector = CrashInjector(sim, net)
        schedule = ChaosSchedule.generate(
            config.chaos, chaos_rng, client_ids, server_ids,
            start=config.warmup, end=config.warmup + config.measure,
            num_groups=(partition.num_groups
                        if config.replication > 1 else None))
        schedule.apply(injector, client_procs,
                       {s.server_id: s for s in servers},
                       extras=acceptors_by_sid, placement=partition)

    controller = None
    if config.replication > 1:
        # The failover controller draws from no RNG stream and (until a
        # promotion) only exchanges heartbeats, so enabling replication
        # perturbs nothing else about the run.
        controller = FailoverController(
            sim, net, partition,
            interval=config.heartbeat_interval,
            miss_limit=config.heartbeat_miss_limit,
            anti_entropy=config.anti_entropy,
            recruit=config.recruitment,
            sync_batch=config.sync_batch)
        controller.start()

    service = TimestampService(sim, net, server_ids, client_ids,
                               horizon=config.profile.gc_horizon,
                               period=config.gc_period,
                               enabled=config.gc_enabled)
    service.start()

    sampler = None
    if config.state_sample_period > 0:
        sampler = StateSampler(sim, servers, config.state_sample_period)
        sim.spawn(sampler.process(), name="state-sampler")

    metrics_reg = MetricsRegistry() if config.trace else None
    if config.trace and config.queue_sample_period > 0:
        # Note: unlike the tracer, the sampler *does* schedule simulator
        # events, so queue-depth sampling is opt-in separately — it can
        # reorder same-time event ties against an unsampled run.
        def queue_sampler():
            depth = metrics_reg.gauge("server.queue_depth")
            busy = metrics_reg.gauge("server.busy_slots")
            while True:
                yield Sleep(config.queue_sample_period)
                depth.set(sum(s.queue.queue_length for s in servers))
                busy.set(sum(s.queue.busy_slots for s in servers))

        sim.spawn(queue_sampler(), name="queue-sampler")

    sim.run_until(config.warmup + config.measure)

    if chaos_on or config.faults is not None or config.replication > 1:
        # Settle: run past the measurement window long enough for every
        # server-side write-lock timeout armed inside it to fire and its
        # decision to be applied (Theorems 9-10 liveness), so the orphan
        # scan below observes the steady state.  Replicated runs settle
        # too: the lost-commits scan needs every in-window commit's
        # fan-out to have drained onto all group members.  RunStats only
        # counts completions inside [warmup, warmup + measure], so the
        # extra time does not perturb the reported numbers.
        settle = config.write_lock_timeout + 0.5
        if config.commitment == "paxos":
            settle += config.write_lock_timeout  # consensus rounds + backoff
        sim.run_until(config.warmup + config.measure + settle)

    final_state = None
    scenario_report = None
    if config.scenario is not None:
        # Drain to quiescence: clients stop issuing at warmup + measure
        # (stop_after); run on until every client process has finished its
        # in-flight transaction (restarts and overload backoffs included),
        # bounded by a generous deadline so a wedged run still returns.
        drain_deadline = config.warmup + config.measure + 12.0
        while (sim.now < drain_deadline
               and not all(p.done for p in client_procs.values())):
            sim.run_until(min(sim.now + 0.25, drain_deadline))
        # Client completion means the commit *decision* was observed, not
        # that every server applied the install fan-out — give the last
        # notifications time to land before reading the stores.
        sim.run_until(sim.now + 1.0)
        final_state = {}
        authority = (partition.leader_of if hasattr(partition, "leader_of")
                     else partition.server_of)
        for server in servers:
            store = getattr(server, "store", None)
            if store is None:
                continue
            for key, versions, _floor in store.snapshot():
                if authority(key) != server.server_id or not versions:
                    continue
                _ts, value = versions[-1]
                if value is not BOTTOM:
                    final_state[key] = value
        counters: dict[str, int] = {}
        for gen in scenario_gens:
            for cname, n in gen.counters.items():
                counters[cname] = counters.get(cname, 0) + n
        scenario_report = {
            "scenario": config.scenario,
            "quiesced": all(p.done for p in client_procs.values()),
            "counters": counters,
        }

    # Wire cost: every network message (requests, replies, fire-and-forget
    # notifications, maintenance) over every commit the whole run produced
    # (client stats cover warmup too, matching messages_sent's scope).
    total_commits = sum(c.stats["commits"] for c in clients)
    messages_per_commit = net.messages_sent / max(1, total_commits)

    chaos_report = None
    if chaos_on or config.faults is not None:
        crashed = list(injector.crashed) if injector else []
        chaos_report = {
            "crashed_clients": crashed,
            "server_events": list(injector.server_events) if injector else [],
            "server_restarts": sum(s.stats.get("restarts", 0)
                                   for s in servers),
            "orphaned_write_locks": orphaned_write_locks(servers,
                                                         set(crashed)),
            "messages_lost": net.messages_lost,
            "messages_duplicated": net.messages_duplicated,
            "delay_spikes": net.delay_spikes,
            "rpc_retries": sum(c.stats["rpc_retries"] for c in clients),
            "dup_requests": sum(s.stats.get("dup_requests", 0)
                                for s in servers),
        }

    replication_report = None
    if config.replication > 1 or config.durability == "wal":
        promotions = list(controller.promotions) if controller else []
        failover_latencies = []
        if controller is not None and injector is not None:
            # Latency = promotion time minus the old leader's most recent
            # crash before it (epoch-change promotions follow a restart, so
            # a prior crash event always exists).
            for when, gid, old, new, epoch in promotions:
                crashes = [t for (t, kind, sid) in injector.server_events
                           if kind == "crash" and sid == old and t <= when]
                if crashes:
                    failover_latencies.append(when - crashes[-1])
        staleness = sorted(s for c in clients for s in c.read_staleness)
        resync_latencies = sorted(
            lat for s in servers
            for lat in getattr(s, "resync_latencies", []))
        replication_report = {
            "replication": config.replication,
            "durability": config.durability,
            "promotions": [(t, gid, str(old), str(new), ep)
                           for (t, gid, old, new, ep) in promotions],
            "failover_latencies": failover_latencies,
            "heartbeats_sent": (controller.heartbeats_sent
                                if controller else 0),
            "holds_mirrored": sum(s.stats.get("holds_mirrored", 0)
                                  for s in servers),
            "follower_reads": sum(c.stats.get("follower_reads", 0)
                                  for c in clients),
            "snapshot_fallbacks": sum(c.stats.get("snapshot_fallbacks", 0)
                                      for c in clients),
            "snapshot_commits": sum(c.stats.get("snapshot_commits", 0)
                                    for c in clients),
            "snapshot_reads": sum(s.stats.get("snapshot_reads", 0)
                                  for s in servers),
            "snapshot_refused": sum(s.stats.get("snapshot_refused", 0)
                                    for s in servers),
            # Satellite: refusals broken down by first failing guard, so
            # anti-entropy progress is observable ("dirty" must go to zero
            # once every restarted member completed its full sync plan).
            "snapshot_refused_by_reason": {
                reason: sum(s.stats.get(f"snapshot_refused_{reason}", 0)
                            for s in servers)
                for reason in ("dirty", "floor", "unfrozen", "missing")},
            "snapshot_served_resynced_by_server": {
                str(s.server_id): s.stats.get("snapshot_served_resynced", 0)
                for s in servers
                if s.stats.get("resyncs", 0) > 0},
            # Self-healing (DESIGN.md §5h).
            "sync_pokes": controller.sync_pokes if controller else 0,
            "sync_sessions": sum(s.stats.get("sync_sessions", 0)
                                 for s in servers),
            "sync_rounds": sum(s.stats.get("sync_deltas", 0)
                               for s in servers),
            "sync_installs": sum(s.stats.get("sync_installs", 0)
                                 for s in servers),
            "sync_aborted": sum(s.stats.get("sync_aborted", 0)
                                for s in servers),
            "resyncs": sum(s.stats.get("resyncs", 0) for s in servers),
            "resyncs_by_server": {
                str(s.server_id): s.stats.get("resyncs", 0)
                for s in servers if s.stats.get("resyncs", 0) > 0},
            "resync_latencies": resync_latencies,
            "recruitments": [
                (t, gid, str(old), str(new), ep)
                for (t, gid, old, new, ep) in
                (controller.recruitments if controller else [])],
            "min_live_members": (controller.min_live_members
                                 if controller else None),
            "dirty_at_end": sorted(
                str(s.server_id) for s in servers
                if getattr(s, "snapshot_dirty", False)),
            "fanout_acked": sum(c.stats.get("fanout_acked", 0)
                                for c in clients),
            "fanout_unacked": sum(c.stats.get("fanout_unacked", 0)
                                  for c in clients),
            "wal_records": sum(s.durable.wal.records_appended
                               for s in servers
                               if getattr(s, "durable", None) is not None),
            "wal_sync_records": sum(
                s.durable.wal.records_by_kind.get("sync", 0)
                for s in servers
                if getattr(s, "durable", None) is not None),
            "checkpoints": sum(s.durable.checkpoints for s in servers
                               if getattr(s, "durable", None) is not None),
            "read_staleness": {
                "count": len(staleness),
                "mean": (sum(staleness) / len(staleness)
                         if staleness else 0.0),
                "p95": (staleness[int(0.95 * (len(staleness) - 1))]
                        if staleness else 0.0),
                "max": staleness[-1] if staleness else 0.0,
            },
        }
        if history is not None and config.replication > 1:
            # Audit the measurement window only: the settle period drains
            # its commit fan-outs, but commits decided *during* settle can
            # be mid-flight when the simulation halts.
            replication_report.update(scan_lost_commits(
                history, partition, {s.server_id: s for s in servers},
                before=config.warmup + config.measure))

    overload_report = {
        "shed": sum(s.stats.get("shed", 0) for s in servers),
        "expired": sum(s.stats.get("expired", 0) for s in servers),
        "overloaded_replies": sum(c.stats["overloaded"] for c in clients),
        "admission_rejects": sum(c.stats["admission_rejects"]
                                 for c in clients),
        "breaker_trips": sum(b.trips for c in clients
                             for b in (c._breakers or {}).values()),
        "class_summary": stats.class_summary(),
        "class_attempt_aborts": dict(stats.class_attempt_aborts),
    }

    metrics = None
    if config.trace:
        fold_trace(tracer.events, metrics_reg)
        for server in servers:
            merge_conflict_counts(metrics_reg, server.conflicts)
        merge_overload_counters(metrics_reg, servers)
        if replication_report is not None:
            merge_replication_counters(metrics_reg, servers, clients)
        if scenario_report is not None:
            merge_scenario_counters(metrics_reg, scenario_report)
        metrics = metrics_reg.as_dict()
        metrics["run"] = {
            "protocol": config.protocol,
            "throughput": stats.throughput,
            "commit_rate": stats.commit_rate,
            "committed": stats.committed,
            "aborted": stats.aborted,
            "abort_reasons": dict(stats.abort_reasons),
            "latency": stats.latency_summary(),
            "messages_sent": net.messages_sent,
            "messages_per_commit": messages_per_commit,
            "overload": overload_report,
        }

    return ClusterResult(
        config=config,
        throughput=stats.throughput,
        commit_rate=stats.commit_rate,
        committed=stats.committed,
        aborted=stats.aborted,
        history=history,
        state_samples=sampler.samples if sampler else [],
        completions=stats.completions,
        messages_sent=net.messages_sent,
        server_stats=[s.stats for s in servers],
        messages_per_commit=messages_per_commit,
        mean_latency=stats.mean_latency,
        p95_latency=stats.latency_percentile(95),
        abort_reasons=dict(stats.abort_reasons),
        latency_summary=stats.latency_summary(),
        trace=tracer.events if tracer is not None else None,
        metrics=metrics,
        chaos_report=chaos_report,
        overload_report=overload_report,
        final_state=final_state,
        scenario_report=scenario_report,
        replication_report=replication_report,
        sim_events=sim.events_processed,
        wall_s=time.perf_counter() - wall_start,
    )
