"""Wire messages of the distributed MVTL protocol (Algorithms 11-13) and of
the baseline client protocols (§8.1).

Every request carries the issuing transaction, the client's node id (for the
reply) and a client-chosen request id so the client coroutine can match
replies to requests and discard stale ones (e.g. a reply arriving after the
client timed out and moved on).

Delivery contract: the transport is **at-least-once** once clients retry —
a request may reach the server zero times (lost), once, or several times
(retry or link-level duplication).  Servers therefore deduplicate by
``(client, req_id)``: the first arrival is processed, later arrivals of an
already-answered request just get the cached reply re-sent, and arrivals of
a request still in progress (parked) are dropped.  Replies carry the
server's ``epoch`` (bumped on every restart) so clients can detect that a
server lost its volatile lock state mid-transaction and abort instead of
committing on locks that no longer exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..core.intervals import IntervalSet
from ..core.timestamp import Timestamp

__all__ = [
    "Request", "Reply", "OverloadedReply", "SHEDDABLE_REQUESTS",
    "MVTLReadReq", "MVTLReadReply",
    "MVTLWriteLockReq", "MVTLWriteLockReply",
    "MVTLBatchLockReq", "MVTLBatchLockReply",
    "FreezeWriteReq", "FreezeReadReq", "ReleaseReq", "GcReq", "CommitReq",
    "EpochReq", "EpochReply",
    "TwoPLLockReq", "TwoPLLockReply", "TwoPLCommitReq", "TwoPLReleaseReq",
    "BohmSubmitReq", "BohmSubmitReply",
    "PurgeReq", "ClockBroadcast",
    "ProposeReq", "DecisionReply",
    "ReplicaHoldReq", "ReplicaHoldReply",
    "SnapshotReadReq", "SnapshotReadReply",
    "HeartbeatReq", "HeartbeatReply",
    "CommitAck", "SyncPoke", "SyncReq", "SyncDelta", "SyncDone",
]


@dataclass(unsafe_hash=True, slots=True)
class Request:
    """Base: fields common to every client->server request.

    ``deadline`` is the transaction's *absolute* deadline (simulated
    seconds): a saturated server drops data requests whose deadline has
    already passed instead of serving stale work (the client has moved on).
    Clients only stamp it on requests that are safe to drop — reads and
    lock acquisitions, whose loss the client maps to an abort — never on
    commit/release/GC notifications, which free resources and must always
    be applied.  ``critical`` marks requests of critical (MVTL-Prio-class)
    transactions: served ahead of normals and never shed (Theorem 3's
    guarantee, carried into the distributed layer).
    """

    tx_id: Hashable
    client: Hashable
    req_id: int
    deadline: float | None = field(default=None, kw_only=True)
    critical: bool = field(default=False, kw_only=True)


@dataclass(unsafe_hash=True, slots=True)
class Reply:
    """Base: every server->client reply echoes the request id."""

    req_id: int


@dataclass(unsafe_hash=True, slots=True)
class OverloadedReply(Reply):
    """Explicit load-shed rejection: the server's bounded queue was full.

    Sent instead of silently parking work a saturated server will never
    get to.  The client maps it to ``AbortReason.OVERLOADED`` (and feeds
    its per-server circuit breaker) rather than retrying into the same
    saturated server.
    """


# -- MVTL family (MVTIL and MVTO+ run the same server ops, §8.1) -------------

@dataclass(unsafe_hash=True, slots=True)
class MVTLReadReq(Request):
    """Read ``key`` and read-lock a contiguous interval below ``upper``.

    ``wait`` selects the blocking idiom ("waiting if write-locked but not
    frozen"): with ``wait=True`` the request parks while the contiguous
    grantable prefix cannot reach ``floor`` (default: ``upper``).  MVTO+
    needs the full range up to its timestamp (``floor`` unset); an MVTIL
    client only needs the prefix to reach into its interval ``I``, so it
    passes ``floor = min I`` and *shrinks* instead of waiting whenever some
    of ``I`` is still reachable (§8.1).  ``wait=False`` never parks.
    """

    key: Hashable = None
    upper: Timestamp = None
    wait: bool = True
    floor: Timestamp | None = None


@dataclass(unsafe_hash=True, slots=True)
class MVTLReadReply(Reply):
    """``tr``/``value`` is the version read; ``locked`` the granted range.

    ``tr is None`` means the read failed permanently (version purged).
    """

    tr: Timestamp | None = None
    value: Any = None
    locked: IntervalSet = field(default_factory=IntervalSet)
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class MVTLWriteLockReq(Request):
    """Write-lock some of ``want`` on ``key`` and buffer ``value`` (Alg. 13).

    ``wait=False`` grants the conflict-free subset immediately (MVTIL);
    ``wait=True`` parks until all of ``want`` is grantable or a frozen
    conflict makes that impossible (TO's commit-time point lock uses
    ``wait=False`` too — it *fails* on any conflict).
    ``all_or_nothing`` makes a partially-grantable request fail instead of
    shrinking.
    """

    key: Hashable = None
    value: Any = None
    want: IntervalSet = field(default_factory=IntervalSet)
    wait: bool = False
    all_or_nothing: bool = False


@dataclass(unsafe_hash=True, slots=True)
class MVTLWriteLockReply(Reply):
    acquired: IntervalSet = field(default_factory=IntervalSet)
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class MVTLBatchLockReq(Request):
    """Write-lock several keys of one server in a single message.

    ``items`` is a tuple of ``(key, value, want)`` triples — each the
    payload of one :class:`MVTLWriteLockReq` — applied independently in
    order, always without waiting (parking a multi-key request would couple
    unrelated keys' wait lists).  ``all_or_nothing`` applies per item, as in
    the single-key message.  Batching is what drops a commit-time lock pass
    from O(written keys) to O(servers touched) round trips: the client
    groups its write set by the partition and sends one of these per server
    (the paper's Thrift prototype pays per-server, not per-key, RPCs).
    Server-side CPU cost still scales with ``len(items)`` — batching saves
    messages, not lock work.
    """

    items: tuple = ()  # ((key, value, IntervalSet want), ...)
    all_or_nothing: bool = False


@dataclass(unsafe_hash=True, slots=True)
class MVTLBatchLockReply(Reply):
    """Per-key grant map for a :class:`MVTLBatchLockReq` (key -> granted
    IntervalSet; empty set = refused)."""

    acquired: dict = field(default_factory=dict)
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class FreezeWriteReq(Request):
    """Commit notification: freeze tx's write lock at ``ts`` and expose the
    buffered value (Alg. 13 receive-freeze-write-lock).  No reply needed."""

    key: Hashable = None
    ts: Timestamp = None


@dataclass(unsafe_hash=True, slots=True)
class FreezeReadReq(Request):
    """GC: freeze tx's read locks on ``key`` over ``span`` (Alg. 11 gc)."""

    key: Hashable = None
    span: IntervalSet = field(default_factory=IntervalSet)


@dataclass(unsafe_hash=True, slots=True)
class ReleaseReq(Request):
    """Release tx's unfrozen locks on this server (abort / gc tail).

    ``write_only=True`` releases only write locks — the MVTO+ abort path,
    whose persistent read-timestamps (kept read locks) are the source of its
    ghost aborts (§3, §5.5).
    """

    key: Hashable = None  # None = all keys tx touched on this server
    write_only: bool = False


@dataclass(unsafe_hash=True, slots=True)
class GcReq(Request):
    """Commit-time GC, batched per server (Alg. 11 ``gc``): freeze the given
    read-lock spans, then (if ``release``) release every other unfrozen lock
    of tx.  ``release=False`` freezes only — the no-collection ablation that
    lets lock state accumulate (Fig. 6)."""

    spans: dict = field(default_factory=dict)  # key -> IntervalSet
    release: bool = True


@dataclass(unsafe_hash=True, slots=True)
class CommitReq(Request):
    """Commit notification, batched per server: atomically propose commit to
    the transaction's commitment object and — on a commit decision — freeze
    write locks at ``ts`` and expose the buffered values for ``write_keys``,
    freeze the read-lock ``spans``, and (if ``release``) release the
    transaction's remaining unfrozen locks.

    Batching freeze+install+GC into one server-side step closes the window
    where a separately-delivered GC could release a commit-point write lock
    before its freeze was processed (the prototype holds the key's latch
    across this sequence, §8.1).

    ``values`` repeats the written values keyed by key.  The server
    normally installs from its ``pending`` buffer (filled at write-lock
    time), but a server that crashed and restarted between lock install and
    commit has lost that buffer — the notification itself must carry
    everything needed to apply the commit (like a redo record).
    """

    ts: Timestamp = None
    write_keys: tuple = ()
    spans: dict = field(default_factory=dict)  # key -> IntervalSet
    release: bool = True
    values: dict = field(default_factory=dict)  # key -> written value
    #: Ask for a :class:`CommitAck` reply.  The default fan-out is
    #: fire-and-forget (the mirrored-hold timeout + commitment registry
    #: self-heal a lost notification); the reliable fan-out used under
    #: lossy links sets this so the client can retry unacked members.
    ack: bool = False


@dataclass(unsafe_hash=True, slots=True)
class CommitAck(Reply):
    """Acknowledges an ``ack=True`` :class:`CommitReq` was applied."""

    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class EpochReq(Request):
    """Pre-commit epoch probe: "are you still the server I locked on?".

    Sent to every touched server just before the coordinator proposes
    commit (when epoch validation is enabled).  The reply's epoch is
    compared against the epoch of the transaction's first contact with that
    server; a mismatch means the server restarted — and silently dropped
    the transaction's volatile locks — so the coordinator must abort.
    """


@dataclass(unsafe_hash=True, slots=True)
class EpochReply(Reply):
    epoch: int = 0


# -- 2PL family ---------------------------------------------------------------

@dataclass(unsafe_hash=True, slots=True)
class TwoPLLockReq(Request):
    """Acquire the per-key readers-writer lock (exclusive if ``write``).

    The server parks the request while the lock is unavailable; the *client*
    enforces the deadlock-prevention timeout by giving up and aborting.
    A read lock reply carries the current value.
    """

    key: Hashable = None
    write: bool = False


@dataclass(unsafe_hash=True, slots=True)
class TwoPLLockReply(Reply):
    granted: bool = True
    value: Any = None
    version_ts: Timestamp | None = None


@dataclass(unsafe_hash=True, slots=True)
class TwoPLCommitReq(Request):
    """Install ``writes`` at ``commit_ts`` and release all of tx's locks on
    this server (batched per server, like a real unlock piggyback)."""

    writes: dict = field(default_factory=dict)   # key -> value
    release_keys: tuple = ()                     # read-locked keys
    commit_ts: Timestamp = None


@dataclass(unsafe_hash=True, slots=True)
class TwoPLReleaseReq(Request):
    """Release tx's locks on ``keys`` without writing (abort path)."""

    keys: tuple = ()


# -- replication (repro.repl layer, DESIGN.md §5e) ---------------------------

@dataclass(unsafe_hash=True, slots=True)
class ReplicaHoldReq(Request):
    """Mirror granted write locks + pending values onto a follower.

    Sent by the *client* after the group leader granted its write locks:
    ``items`` is a tuple of ``(key, value, granted IntervalSet)`` triples,
    exactly the leader's grant.  The follower installs the same spans in
    its lock table (best effort — the leader already serialized them, so
    they are conflict-free unless the follower was just promoted), buffers
    the value, and arms the ordinary write-lock timeout.  A write lock is
    *held at a write quorum* once the leader grant plus a majority of
    mirrors acknowledge — from then on any quorum member can finish the
    commit alone (the mirror carries the redo value).
    """

    items: tuple = ()  # ((key, value, IntervalSet granted), ...)


@dataclass(unsafe_hash=True, slots=True)
class ReplicaHoldReply(Reply):
    """``mirrored`` is False when some span could not be installed (the
    follower was promoted meanwhile and granted conflicting locks); the
    client does not count such an ack toward the write quorum."""

    mirrored: bool = True
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class SnapshotReadReq(Request):
    """Read ``key`` at the locked (GC-frontier) timestamp ``ts``.

    Unlike :class:`MVTLReadReq` this takes **no lock**: the timestamp
    service's broadcast floor already write-locks the whole key space below
    the frontier (no new transaction can begin — let alone install — below
    it), so a floor read at ``ts`` on any replica that has applied the
    frontier's purge is version-clean.  Served by followers; read-only
    transactions use it to bypass the leader entirely.
    """

    key: Hashable = None
    ts: Timestamp = None


@dataclass(unsafe_hash=True, slots=True)
class SnapshotReadReply(Reply):
    """``ok=False``: the replica cannot vouch for the snapshot (restarted
    since, frontier not yet applied, or an in-flight write straddles the
    timestamp) — the client falls back to the leader."""

    ok: bool = False
    tr: Timestamp | None = None
    value: Any = None
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class HeartbeatReq(Request):
    """Failover-controller ping; cheap control traffic, never shed."""


@dataclass(unsafe_hash=True, slots=True)
class HeartbeatReply(Reply):
    """Liveness + freshness report used to pick promotion candidates."""

    server: Hashable = None
    epoch: int = 0
    #: Total commit applications since boot (freshness proxy).
    applied: int = 0
    #: True once the server has restarted: it may have missed commit
    #: records while down and must not be preferred for promotion (nor
    #: serve snapshot reads).
    dirty: bool = False


@dataclass(unsafe_hash=True, slots=True)
class SyncPoke:
    """Failover-controller nudge driving anti-entropy (DESIGN.md §5h).

    Not a :class:`Request`: the controller fires one per tick at each dirty
    member and relies on the *next* tick — not dedup/retry — for loss
    recovery, exactly like its heartbeats.  ``sources`` maps the catch-up
    work: ``((leader, (gid, ...)), ...)`` — for each entry the receiver
    runs one sync session against ``leader`` covering those placement
    groups.  ``full=True`` marks the set as a complete servability plan
    (every group the receiver is a member of): only completing *all* of a
    full plan's sessions clears ``snapshot_dirty``.  ``mark_dirty`` is the
    recruitment prologue: drop servability *now* (and any stale full plan)
    before membership changes land.  ``origin`` is where to report
    :class:`SyncDone` for non-full (recruitment) sessions.
    """

    sources: tuple = ()  # ((leader, (gid, ...)), ...)
    full: bool = False
    mark_dirty: bool = False
    num_groups: int = 1
    batch: int = 64
    origin: Hashable = None


@dataclass(unsafe_hash=True, slots=True)
class SyncReq(Request):
    """Pull one batch of committed versions from a group leader.

    ``session`` is a follower-chosen nonce: the leader materializes its
    committed state for ``gids`` once per session (a stable enumeration —
    concurrent commits land via the ordinary fan-out, not the sync) and
    serves ``batch`` entries from ``cursor``.  At-least-once safe: the
    request rides the ordinary dedup layer, and a duplicated/stale delta
    is dropped by the follower's (session, cursor) match.
    """

    gids: tuple = ()
    session: int = 0
    cursor: int = 0
    batch: int = 64
    num_groups: int = 1


@dataclass(unsafe_hash=True, slots=True)
class SyncDelta(Reply):
    """One batch of a sync session: ``entries`` is ``((key, ts, value),
    ...)`` committed versions; ``floor`` is the leader's stable GC floor at
    session start (``None`` = leader never purged, i.e. the session ships
    its *entire* committed state).  ``done`` marks the last batch."""

    gids: tuple = ()
    session: int = 0
    cursor: int = 0
    next_cursor: int = 0
    entries: tuple = ()
    done: bool = False
    floor: Timestamp | None = None
    epoch: int = 0


@dataclass(unsafe_hash=True, slots=True)
class SyncDone:
    """Follower -> controller: a recruitment sync session finished.

    Re-sent on every later poke for the same completed session, so a lost
    notification only delays — never wedges — the membership flip.
    """

    server: Hashable = None
    gids: tuple = ()
    session: int = 0


# -- Bohm baseline (deterministic batched MVCC) --------------------------------

@dataclass(unsafe_hash=True, slots=True)
class BohmSubmitReq(Request):
    """Ship a whole pre-declared transaction to the Bohm sequencer.

    Bohm's precondition is a statically known write set, so the client
    sends the entire :class:`~repro.workload.generator.TxSpec` (ops in
    order, ``compute`` closures included — the simulated network passes
    objects by reference) in one message instead of running an interactive
    op-by-op protocol.  The sequencer assigns the total-order timestamp on
    arrival; arrival order *is* the serialization order.
    """

    spec: Any = None


@dataclass(unsafe_hash=True, slots=True)
class BohmSubmitReply(Reply):
    """Outcome of a sequenced transaction, sent when its batch executes."""

    committed: bool = False
    commit_ts: Timestamp | None = None
    abort_reason: str | None = None
    epoch: int = 0


# -- maintenance ---------------------------------------------------------------

@dataclass(unsafe_hash=True, slots=True)
class PurgeReq(Request):
    """From the timestamp service: purge versions/locks older than ``bound``."""

    bound: Timestamp = None


@dataclass(unsafe_hash=True, slots=True)
class ClockBroadcast:
    """Timestamp-service broadcast to clients: advance your clock to ``t``."""

    t: float = 0.0


# -- commitment object (consensus) ----------------------------------------------

@dataclass(unsafe_hash=True, slots=True)
class ProposeReq(Request):
    """Propose an outcome for tx to its commitment object.

    ``outcome`` is either the string "abort" or a commit Timestamp.
    """

    outcome: Any = None


@dataclass(unsafe_hash=True, slots=True)
class DecisionReply(Reply):
    outcome: Any = None  # "abort" or the decided commit Timestamp


#: Request types a saturated server may shed (bounded queue) or expire
#: (deadline passed): data-path acquisitions whose rejection the client
#: handles as a clean abort.  Control notifications (commit, freeze,
#: release, GC, purge) are never shed — they *free* resources, are cheap
#: (see the servers' control-message weight), and dropping them would leak
#: locks until the write-lock timeout (or, for 2PL, forever).
SHEDDABLE_REQUESTS = (MVTLReadReq, MVTLWriteLockReq, MVTLBatchLockReq,
                      EpochReq, TwoPLLockReq)
