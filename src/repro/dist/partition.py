"""Key -> server partitioning (§7: "clients know how to find the server
responsible for a key, e.g. by hashing the key").

Kept for the unreplicated (``replication=1``) path and for API
compatibility.  Replicated clusters route through
``repro.repl.placement.ReplicatedPlacement``, which hashes keys into the
same groups (bit-identical ``server_of`` at replication 1) but adds
follower membership, leadership and epoch fencing — see DESIGN.md §5e.
"""

from __future__ import annotations

import zlib
from typing import Hashable, Sequence

__all__ = ["Partition"]


class Partition:
    """Deterministic hash partitioning of keys over a fixed server list."""

    def __init__(self, servers: Sequence[Hashable]) -> None:
        if not servers:
            raise ValueError("need at least one server")
        self._servers = tuple(servers)
        # key -> server memo: every client op hashes its key, workloads
        # reuse a bounded keyspace, and crc32-of-str is pure.
        self._cache: dict[Hashable, Hashable] = {}

    @property
    def servers(self) -> tuple[Hashable, ...]:
        return self._servers

    def server_of(self, key: Hashable) -> Hashable:
        server = self._cache.get(key)
        if server is None:
            if isinstance(key, int):
                idx = key % len(self._servers)
            else:
                idx = zlib.crc32(str(key).encode()) % len(self._servers)
            server = self._cache[key] = self._servers[idx]
        return server

    def __len__(self) -> int:
        return len(self._servers)
