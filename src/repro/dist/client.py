"""Transaction coordinators — the client side of the distributed protocols.

Three client protocols over the simulated network, mirroring §8.1 ("our
implementations of MVTO+ and 2PL use the same framework, but run a different
client protocol and keep a different server state"):

* :class:`MVTILClient` — the paper's prototype (Alg. 11/12 with the §8
  interval policy): interval ``I = [t, t+delta]``, shrink on partial grants,
  commit at min/max of ``I`` via the commitment object, fire-and-forget
  freeze + GC.  One round trip per read, two per written key.
* :class:`MVTOClient` — MVTO+ over the same servers: single timestamp,
  server-side waiting reads, no-wait commit-time point write locks; aborts
  release only write locks (read-timestamps persist — ghost aborts and all).
* :class:`TwoPLClient` — strict 2PL: lock per access, client-side lock
  timeout as deadlock prevention (the paper tunes this timeout for
  throughput), commit installs values and releases.

Client methods that talk to servers are **generators** — simulation
coroutines to be driven with ``yield from`` inside a process (see
:mod:`repro.workload.runner`).  A coordinator failure is simulated by simply
not running the rest of the generator (see :mod:`repro.dist.failure`); the
servers' write-lock timeout then aborts the orphaned transaction via its
commitment object.
"""

from __future__ import annotations

from itertools import count
from types import SimpleNamespace
from typing import Any, Generator, Hashable

import numpy as np

from ..clocks.clock import Clock
from ..core.exceptions import AbortReason, TransactionAborted
from ..core.intervals import EMPTY_SET, IntervalSet, TsInterval
from ..core.timestamp import Timestamp
from ..obs.trace import NULL_TRACER
from ..policies.registry import policy_spec
from ..sim.network import Network
from ..sim.simulator import RECV_TIMEOUT, Mailbox, Recv, Simulator
from ..repl.replica import write_quorum
from .commitment import ABORT, CommitmentRegistry
from .messages import (BohmSubmitReq, ClockBroadcast, CommitReq, EpochReq,
                       MVTLBatchLockReq,
                       MVTLReadReq, MVTLWriteLockReq, OverloadedReply,
                       ReleaseReq, ReplicaHoldReq, Reply, SnapshotReadReq,
                       TwoPLCommitReq, TwoPLLockReq, TwoPLReleaseReq)
from .partition import Partition

#: pid component of GC purge bounds / snapshot timestamps (sorts below
#: every real client pid at the same clock value) — see gc_service.
_PID_MIN = -(2**31)

__all__ = ["BaseClient", "BohmClient", "CircuitBreaker", "MVTILClient",
           "MVTOClient", "TwoPLClient"]


class CircuitBreaker:
    """Per-server admission gate: closed -> open -> half-open -> closed.

    Counts consecutive overload signals (OVERLOADED replies, RPC timeouts)
    against one server.  At ``threshold`` the breaker *opens*: the client
    stops sending new normal-transaction work to that server for
    ``cooldown`` seconds — backing off instead of feeding a saturated
    queue.  After the cooldown one *probe* request is admitted (half-open);
    its success closes the breaker, its failure re-opens it for another
    cooldown.  Any success closes the breaker and clears the failure count.
    """

    __slots__ = ("threshold", "cooldown", "failures", "opened_until",
                 "state", "trips")

    def __init__(self, threshold: int = 8, cooldown: float = 0.5) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_until = 0.0
        self.state = "closed"
        self.trips = 0

    def allow(self, now: float) -> bool:
        """May a new normal request be sent to this server right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now >= self.opened_until:
                self.state = "half-open"  # admit exactly one probe
                return True
            return False
        return False  # half-open: the probe is in flight, hold the rest

    def record_failure(self, now: float) -> None:
        if self.state == "half-open":
            # The recovery probe failed: the server is still saturated.
            self._open(now)
            return
        self.failures += 1
        if self.state == "closed" and self.failures >= self.threshold:
            self._open(now)

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def _open(self, now: float) -> None:
        self.state = "open"
        self.opened_until = now + self.cooldown
        self.trips += 1


class BaseClient:
    """Shared client wiring: mailbox, RPC with timeout, clock, history."""

    def __init__(self, sim: Simulator, net: Network, client_id: Hashable,
                 pid: int, partition: Partition, clock: Clock,
                 registry: CommitmentRegistry, *,
                 history: Any | None = None,
                 rpc_timeout: float = 5.0,
                 rpc_retries: int = 0,
                 validate_epochs: bool = False,
                 consensus: Any | None = None,
                 tracer: Any | None = None,
                 tx_budget: float | None = None,
                 admission_control: bool = False,
                 breaker_threshold: int = 8,
                 breaker_cooldown: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        self.sim = sim
        self.net = net
        self.client_id = client_id
        self.pid = pid
        self.partition = partition
        self.clock = clock
        self.registry = registry
        #: Optional PaxosConsensus backend for transaction outcomes (§H.1
        #: "servers may fail" mode); None = the shared in-sim object.
        self.consensus = consensus
        self.history = history
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rpc_timeout = rpc_timeout
        #: Default number of times an unanswered RPC is re-sent (same
        #: request object, same ``req_id`` — the server's dedup log absorbs
        #: the duplicates).  Each attempt doubles the previous attempt's
        #: timeout (exponential backoff).  0 = at-most-once, the original
        #: behaviour.
        self.rpc_retries = rpc_retries
        #: Re-check every touched server's epoch just before proposing
        #: commit.  Closes the restart window: a server that crashed and
        #: rejoined with empty volatile lock state after granting us a lock
        #: is detected and the transaction aborted instead of committing on
        #: locks that no longer exist.  Enabled by run_cluster for chaos
        #: scenarios with server restarts.
        self.validate_epochs = validate_epochs
        #: Per-transaction time budget: every transaction begun gets the
        #: absolute deadline ``now + tx_budget``, propagated on its data
        #: requests (servers drop expired ones) and enforced client-side as
        #: ``AbortReason.DEADLINE_EXCEEDED``.  None = no deadlines.
        self.tx_budget = tx_budget
        #: Per-server circuit breakers (admission control); None = off.
        self._breakers: dict[Hashable, CircuitBreaker] | None = (
            {} if admission_control else None)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: Seeded stream for retry-backoff jitter (None = no jitter —
        #: synchronized clients then retry in lockstep, the storm the
        #: jitter exists to break).
        self.rng = rng
        #: Replication factor of the key placement (1 = the classic static
        #: partition; > 1 = a ReplicatedPlacement with leader/follower
        #: groups, quorum write mirroring and group-epoch fencing).
        self.replication = getattr(partition, "replication", 1)
        #: Latest GC frontier T received via ClockBroadcast — the locked
        #: timestamp snapshot (follower) reads run at.
        self._snap_floor = 0.0
        #: Staleness samples of served snapshot reads: now - snapshot ts.
        self.read_staleness: list[float] = []
        self.mailbox = Mailbox(sim)
        net.register(client_id, self._on_message)
        self._req_counter = count(1)
        self._tx_counter = count(1)
        self.stats = {"commits": 0, "aborts": 0, "rpc_timeouts": 0,
                      "rpc_retries": 0, "msgs_sent": 0, "overloaded": 0,
                      "admission_rejects": 0, "follower_reads": 0,
                      "snapshot_fallbacks": 0, "snapshot_commits": 0,
                      "fanout_acked": 0, "fanout_unacked": 0}

    # -- messaging ------------------------------------------------------------

    def _on_message(self, msg: Any) -> None:
        if not isinstance(msg, Reply) and self._handle_oob(msg):
            return
        self.mailbox.deliver(msg)

    def _handle_oob(self, msg: Any) -> bool:
        """Handle out-of-band (non-RPC-reply) traffic; True if consumed.

        Called both on direct delivery and from the RPC receive loops, so a
        broadcast that lands in the mailbox while an RPC is pending is still
        processed instead of being silently dropped.
        """
        if isinstance(msg, ClockBroadcast):
            # Timestamp-service effect 2 (§8.1): slow clocks advance to T.
            # T is also the stability frontier snapshot reads lock onto:
            # no transaction can begin below it once every clock is
            # floored, so a read at T needs no lock of its own.
            if msg.t > self._snap_floor:
                self._snap_floor = msg.t
            self.clock.advance_floor(msg.t)
            return True
        return False

    def _send(self, server: Hashable, msg: Any) -> None:
        self.stats["msgs_sent"] += 1
        self.net.send(server, msg, src=self.client_id)

    def _backoff_window(self, base: float, attempt: int) -> float:
        """Per-attempt listening window: exponential with seeded jitter.

        The window doubles per attempt; retries (attempt > 0) additionally
        draw a jitter factor in [1.0, 2.0) from the client's seeded stream,
        so clients that timed out together do not re-arrive at the server
        in lockstep retry storms.  Attempt 0 is exact — the first timeout
        is a tuned semantic bound, not a retry.
        """
        window = base * (2 ** attempt)
        if attempt and self.rng is not None:
            window *= 1.0 + float(self.rng.random())
        return window

    def _breaker_for(self, server: Hashable) -> CircuitBreaker | None:
        if self._breakers is None:
            return None
        breaker = self._breakers.get(server)
        if breaker is None:
            breaker = self._breakers[server] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown)
        return breaker

    def _rpc(self, server: Hashable, msg: Any,
             timeout: float | None = None, retries: int | None = None,
             breaker_timeouts: bool = True
             ) -> Generator[Any, Any, Reply | None]:
        """Send and await the matching reply; None after all attempts fail.

        The request is re-sent up to ``retries`` times (default: the
        client's ``rpc_retries``) with per-attempt timeouts doubling each
        time, jittered by the client's seeded stream (see
        :meth:`_backoff_window`).  The same message object — and hence the
        same ``req_id`` — goes out every attempt, so the server's
        request-dedup log makes the call at-least-once safe: a retried lock
        install is applied once and the cached reply is resent.  Pass
        ``retries=0`` for semantic timeouts (lock-wait deadlock prevention)
        where re-sending would defeat the timeout's purpose;
        ``breaker_timeouts=False`` additionally keeps those semantic
        timeouts out of the circuit breaker (a lock wait lost to contention
        is not evidence the server is saturated).

        Overload control: a request carrying a transaction deadline never
        waits — or retries — past it (retrying into a saturated server just
        deepens its queue).  An OVERLOADED reply is returned to the caller
        (who aborts) and ends the attempt loop immediately.  Outcomes feed
        the per-server circuit breaker when admission control is on.

        Stale replies (from earlier timed-out requests) are discarded by
        request id; non-Reply traffic is routed to :meth:`_handle_oob`.
        """
        base = timeout if timeout is not None else self.rpc_timeout
        attempts = 1 + (retries if retries is not None else self.rpc_retries)
        msg_deadline = getattr(msg, "deadline", None)
        breaker = self._breaker_for(server)
        sent = False
        for attempt in range(attempts):
            if msg_deadline is not None and self.sim.now >= msg_deadline:
                break  # budget exhausted: stop feeding the queue
            if attempt:
                self.stats["rpc_retries"] += 1
            self._send(server, msg)
            sent = True
            deadline = self.sim.now + self._backoff_window(base, attempt)
            if msg_deadline is not None:
                deadline = min(deadline, msg_deadline)
            while True:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    break
                reply = yield Recv(self.mailbox, timeout=remaining)
                if reply is RECV_TIMEOUT:
                    break
                if not isinstance(reply, Reply):
                    self._handle_oob(reply)
                    continue
                if reply.req_id == msg.req_id:
                    if isinstance(reply, OverloadedReply):
                        self.stats["overloaded"] += 1
                        if breaker is not None:
                            breaker.record_failure(self.sim.now)
                    elif breaker is not None:
                        breaker.record_success()
                    return reply
                # Stale reply from an earlier timed-out request: drop it.
            self.stats["rpc_timeouts"] += 1
        if sent and breaker is not None and breaker_timeouts:
            breaker.record_failure(self.sim.now)
        return None

    def _rpc_many(self, msgs: dict[Hashable, Any], timeout: float | None = None,
                  retries: int | None = None
                  ) -> Generator[Any, Any, dict[Hashable, Reply]]:
        """Send one message per server, then await every matching reply.

        All messages go out before any reply is awaited, so the round trips
        overlap — the whole fan-out costs one RTT plus queueing, not one
        RTT per server.  Unanswered requests are re-sent like :meth:`_rpc`
        (only the missing ones; answered servers are not bothered again).

        Returns ``{server: reply}`` with whatever arrived — **possibly
        partial**.  Callers must compare ``len(replies)`` against
        ``len(msgs)``: a partial map still tells the abort path exactly
        which servers granted locks, so it can release them instead of
        leaving them to the server-side write-lock timeout.  A reply may
        also be an :class:`OverloadedReply` (the server shed the request);
        callers must check before touching protocol fields.
        """
        base = timeout if timeout is not None else self.rpc_timeout
        attempts = 1 + (retries if retries is not None else self.rpc_retries)
        pending = dict(msgs)
        replies: dict[Hashable, Reply] = {}
        contacted: set[Hashable] = set()
        msg_deadline: float | None = None
        for msg in msgs.values():
            d = getattr(msg, "deadline", None)
            if d is not None:
                msg_deadline = d if msg_deadline is None else min(
                    msg_deadline, d)
        for attempt in range(attempts):
            if not pending:
                break
            if msg_deadline is not None and self.sim.now >= msg_deadline:
                break  # budget exhausted: stop feeding the queues
            for server, msg in pending.items():
                if attempt:
                    self.stats["rpc_retries"] += 1
                self._send(server, msg)
                contacted.add(server)
            wanted = {msg.req_id: server for server, msg in pending.items()}
            deadline = self.sim.now + self._backoff_window(base, attempt)
            if msg_deadline is not None:
                deadline = min(deadline, msg_deadline)
            while wanted:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    break
                reply = yield Recv(self.mailbox, timeout=remaining)
                if reply is RECV_TIMEOUT:
                    break
                if not isinstance(reply, Reply):
                    self._handle_oob(reply)
                    continue
                if reply.req_id in wanted:
                    server = wanted.pop(reply.req_id)
                    del pending[server]
                    replies[server] = reply
                    breaker = self._breaker_for(server)
                    if isinstance(reply, OverloadedReply):
                        self.stats["overloaded"] += 1
                        if breaker is not None:
                            breaker.record_failure(self.sim.now)
                    elif breaker is not None:
                        breaker.record_success()
            if wanted:
                self.stats["rpc_timeouts"] += 1
        if self._breakers is not None:
            for server in pending:
                if server in contacted:
                    self._breaker_for(server).record_failure(self.sim.now)
        return replies

    def _next_req(self) -> int:
        return next(self._req_counter)

    # -- overload control --------------------------------------------------

    def _tx_deadline(self) -> float | None:
        """Absolute deadline for a transaction begun now (None = no budget)."""
        if self.tx_budget is None:
            return None
        return self.sim.now + self.tx_budget

    def _check_deadline(self, tx: SimpleNamespace
                        ) -> Generator[Any, Any, None]:
        """Abort (releasing locks) once the transaction's deadline passed.

        Called at the top of data-path ops: a late transaction stops
        issuing work instead of adding stale requests to the very queues
        that made it late.
        """
        if tx.deadline is not None and self.sim.now >= tx.deadline:
            yield from self._fail(tx, AbortReason.DEADLINE_EXCEEDED)

    def _timeout_reason(self, tx: SimpleNamespace,
                        default: AbortReason) -> AbortReason:
        """Abort reason for an unanswered RPC: deadline-aware.

        If the transaction's deadline expired while the RPC waited (or
        kept the RPC from being (re)sent at all), the timeout is really
        deadline exhaustion — report it as such so retry policy and stats
        distinguish overload from packet loss.
        """
        if tx.deadline is not None and self.sim.now >= tx.deadline:
            return AbortReason.DEADLINE_EXCEEDED
        return default

    def _expect(self, tx: SimpleNamespace, reply: Reply | None,
                timeout_reason: AbortReason) -> Generator[Any, Any, Reply]:
        """Abort on the two overload outcomes of an RPC; pass the rest.

        ``None`` (all attempts timed out / deadline expired) aborts with
        ``timeout_reason`` mapped through :meth:`_timeout_reason`; an
        :class:`OverloadedReply` (the server shed us) aborts with
        ``AbortReason.OVERLOADED``.  Anything else is a protocol reply and
        is returned for the caller to interpret.
        """
        if reply is None:
            yield from self._fail(tx, self._timeout_reason(
                tx, timeout_reason))
        if isinstance(reply, OverloadedReply):
            yield from self._fail(tx, AbortReason.OVERLOADED)
        return reply

    def _admit(self, tx: SimpleNamespace,
               server: Hashable) -> Generator[Any, Any, None]:
        """Admission control: refuse new work against a tripped server.

        Critical transactions bypass the gate entirely — Theorem 3's
        guarantee (criticals are never starved by normals) carried into
        the distributed layer; the bounded server queue never sheds them
        either.  In the open state everything normal is rejected up front
        (cheap client-side abort instead of a doomed round trip); after
        the cooldown :meth:`CircuitBreaker.allow` admits a single probe
        whose outcome decides whether the breaker closes.
        """
        if self._breakers is None or tx.priority:
            return
        breaker = self._breakers.get(server)
        if breaker is not None and not breaker.allow(self.sim.now):
            self.stats["admission_rejects"] += 1
            yield from self._fail(tx, AbortReason.OVERLOADED)

    # -- epoch fencing -----------------------------------------------------

    def _check_epoch(self, tx: SimpleNamespace, server: Hashable,
                     epoch: int) -> Generator[Any, Any, None]:
        """Abort if ``server`` restarted since this tx first talked to it.

        Servers stamp every reply with their epoch (bumped on restart).  A
        restarted server rejoined with empty volatile lock state, so any
        lock this transaction installed there before the crash is gone —
        committing anyway could serialize against readers/writers the lost
        lock was supposed to exclude.
        """
        first = tx.epochs.setdefault(server, epoch)
        if first != epoch:
            yield from self._fail(tx, AbortReason.SERVER_RESTART)

    def _validate_epochs(self, tx: SimpleNamespace
                         ) -> Generator[Any, Any, None]:
        """Pre-commit epoch round: confirm no touched server restarted.

        One EpochReq per touched server, fanned out in parallel.  Under the
        local (shared-object) commitment backend the reply handling, the
        commit proposal and the commit messages all happen in one
        simulation step, so no restart can slip between validation and
        decision.
        """
        reqs = {server: EpochReq(tx.id, self.client_id, self._next_req(),
                                 deadline=tx.deadline, critical=tx.priority)
                for server in sorted(tx.touched, key=str)}
        replies = yield from self._rpc_many(reqs)
        if any(isinstance(r, OverloadedReply) for r in replies.values()):
            yield from self._fail(tx, AbortReason.OVERLOADED)
        if len(replies) < len(reqs):
            yield from self._fail(tx, self._timeout_reason(
                tx, AbortReason.RPC_TIMEOUT))
        for server, reply in replies.items():
            yield from self._check_epoch(tx, server, reply.epoch)

    # -- group-epoch fencing (replication) ---------------------------------

    def _check_group(self, tx: SimpleNamespace,
                     key: Hashable) -> Generator[Any, Any, None]:
        """Abort if ``key``'s group failed over since this tx first used it.

        The group analogue of :meth:`_check_epoch`: a promotion bumps the
        group's fencing epoch in the shared placement (which models a
        consensus-backed configuration service), so a transaction that
        acquired locks under the old leadership is fenced instead of
        committing on state the new leader may not have.
        """
        if self.replication <= 1:
            return
        gid = self.partition.group_of(key)
        epoch = self.partition.group_epoch(gid)
        first = tx.group_epochs.setdefault(gid, epoch)
        if first != epoch:
            yield from self._fail(tx, AbortReason.REPLICATION_QUORUM)

    def _validate_groups(self, tx: SimpleNamespace
                         ) -> Generator[Any, Any, None]:
        """Pre-commit fence: no touched group failed over mid-transaction."""
        if self.replication <= 1:
            return
        for gid in sorted(tx.group_epochs):
            if self.partition.group_epoch(gid) != tx.group_epochs[gid]:
                yield from self._fail(tx, AbortReason.REPLICATION_QUORUM)

    # -- bookkeeping -------------------------------------------------------------

    def _begin_record(self, tx: SimpleNamespace) -> None:
        if self.history is not None:
            self.history.record_begin(tx.id)
        if self.tracer.enabled:
            self.tracer.begin(tx.id, pid=self.pid)

    def _abort(self, tx: SimpleNamespace, reason: str) -> None:
        reason = AbortReason.of(reason)
        tx.aborted = True
        tx.abort_reason = reason
        self.stats["aborts"] += 1
        if self.history is not None:
            self.history.record_abort(tx.id, reason)
        if self.tracer.enabled:
            self.tracer.abort(tx.id, reason=reason)

    def _propose(self, tx_id: Hashable,
                 outcome: Any) -> "Generator[Any, Any, Any]":
        """Decide the transaction outcome via the configured backend."""
        if self.consensus is not None:
            decision = yield from self.consensus.propose(
                tx_id, outcome, proposer_id=self.pid)
            return decision
        return self.registry.get(tx_id).propose(outcome)

    def server_of(self, key: Hashable) -> Hashable:
        return self.partition.server_of(key)


class MVTILClient(BaseClient):
    """The MVTIL coordinator (§8, Alg. 11/12)."""

    def __init__(self, *args: Any, delta: float = 0.005, late: bool = False,
                 gc_on_commit: bool = True, read_timeout: float = 0.25,
                 defer_writes: bool = False, follower_reads: bool = False,
                 reliable_fanout: bool = False, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.delta = delta
        self.late = late
        self.gc_on_commit = gc_on_commit
        #: Acked commit fan-out: each group member's CommitReq asks for a
        #: CommitAck and unanswered members are retried (at-least-once).
        #: Off = the paper's fire-and-forget notification, which assumes
        #: loss-free links; under LinkFaults a lost CommitReq to a
        #: non-mirrored member would otherwise permanently miss a version
        #: there.  The decision is already made when the fan-out runs, so
        #: retry exhaustion never fails the transaction — it is counted
        #: (``fanout_unacked``) and left to the mirrored-hold timeout.
        self.reliable_fanout = reliable_fanout
        #: Serve read-only transactions as lock-free snapshot reads at the
        #: GC frontier, preferring follower replicas (needs replication>1).
        self.follower_reads = follower_reads
        #: Bound on a read's server-side lock wait.  Waiting reads can form
        #: wait cycles with writers (the deadlock risk §4.3 notes for
        #: waiting policies); timing out and restarting the transaction is
        #: the standard resolution.
        self.read_timeout = read_timeout
        #: Batched write locking: buffer writes locally and acquire the
        #: whole write-lock set at commit with one MVTLBatchLockReq per
        #: server — O(servers touched) commit-path messages instead of
        #: O(written keys).  Off by default: the eager per-key path is
        #: Alg. 12 as written (and what the failure tests exercise —
        #: a crashed coordinator's eagerly-placed locks must be timed out
        #: server-side); :func:`repro.dist.cluster.run_cluster` turns it on
        #: via ``ClusterConfig.batching``.
        self.defer_writes = defer_writes
        self.name = "mvtil-late" if late else "mvtil-early"
        #: How much wider a critical transaction's interval is, declared by
        #: the policy registry (the MVTL-Prio capability this protocol maps
        #: onto finite intervals) rather than reached out of a policy
        #: module's private constant.
        self.critical_delta_factor = policy_spec(
            self.name).critical_delta_factor

    def begin(self, priority: bool = False,
              read_only: bool = False) -> SimpleNamespace:
        now = self.clock.now()
        # Critical transactions get a wider interval — more timestamps to
        # survive shrinking, the finite-delta analogue of MVTL-Prio's
        # lock-everything (the registry's critical_delta_factor capability).
        delta = self.delta * (self.critical_delta_factor
                              if priority else 1.0)
        interval = TsInterval.closed(Timestamp(now, self.pid),
                                     Timestamp(now + delta, self.pid))
        # A read-only transaction under follower_reads runs in snapshot
        # mode: every read happens at the locked GC-frontier timestamp T
        # (no locks taken — the broadcast floor already guarantees no new
        # transaction can run below T), served by a follower replica when
        # possible.  Before the first broadcast there is no frontier yet
        # and the transaction runs the normal interval protocol.
        snapshot_ts = None
        if (read_only and self.follower_reads and self.replication > 1
                and self._snap_floor > 0.0):
            snapshot_ts = Timestamp(self._snap_floor, _PID_MIN)
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            interval=IntervalSet.from_interval(interval),
            readset=[], writeset={}, touched=set(), epochs={},
            group_epochs={}, snapshot_ts=snapshot_ts,
            deadline=self._tx_deadline(), priority=priority,
            aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    # Each op is a simulation coroutine; drive with ``yield from``.

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        if tx.snapshot_ts is not None:
            value = yield from self._snapshot_read(tx, key)
            return value
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        # Guards inlined (see MVTOClient.read): skip the throwaway helper
        # generators on the no-op path of this hot coroutine.
        if tx.deadline is not None and self.sim.now >= tx.deadline:
            yield from self._fail(tx, AbortReason.DEADLINE_EXCEEDED)
        server = self.server_of(key)
        if self.replication > 1:
            yield from self._check_group(tx, key)
        if self._breakers is not None and not tx.priority:
            yield from self._admit(tx, server)
        req = MVTLReadReq(tx.id, self.client_id, self._next_req(), key=key,
                          upper=tx.interval.pick_high(), wait=True,
                          floor=tx.interval.pick_low(),
                          deadline=tx.deadline, critical=tx.priority)
        tx.touched.add(server)
        requested = tx.interval
        # retries=0: the read timeout is semantic (waiting reads can form
        # wait cycles with writers; timing out breaks them) — re-sending
        # would just park a duplicate behind the same writer.
        # breaker_timeouts=False for the same reason: a read wait lost to
        # a writer is contention, not server saturation.
        reply = yield from self._rpc(server, req,
                                     timeout=self.read_timeout, retries=0,
                                     breaker_timeouts=False)
        if reply is None or isinstance(reply, OverloadedReply):
            yield from self._expect(tx, reply,
                                    AbortReason.READ_LOCK_TIMEOUT)
        if reply.tr is None:
            yield from self._fail(tx, AbortReason.PURGED_VERSION)
        if tx.epochs.setdefault(server, reply.epoch) != reply.epoch:
            yield from self._fail(tx, AbortReason.SERVER_RESTART)
        tx.interval = tx.interval.intersect(reply.locked)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "read",
                                     requested=requested,
                                     granted=tx.interval)
            self.tracer.read(tx.id, key, ts=reply.tr)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        tx.readset.append((key, reply.tr))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.tr)
        return reply.value

    def _snapshot_read(self, tx: SimpleNamespace,
                       key: Hashable) -> Generator[Any, Any, Any]:
        """Lock-free read at the locked frontier timestamp (§5e).

        Tries a follower of the key's group first (spreading read load off
        leaders, pid-rotated for balance), then the leader.  A replica
        refuses when it cannot prove the frontier stable locally (it
        restarted, or has not applied the frontier's purge yet); both
        refusing means the version is genuinely unavailable and the
        read-only transaction aborts — the closed-loop workload retries it
        at a fresher frontier.
        """
        yield from self._check_deadline(tx)
        yield from self._check_group(tx, key)
        ts = tx.snapshot_ts
        gid = self.partition.group_of(key)
        followers = self.partition.followers_of(key)
        targets: list[Hashable] = []
        if followers:
            targets.append(followers[self.pid % len(followers)])
        targets.append(self.partition.leader(gid))
        for i, server in enumerate(targets):
            req = SnapshotReadReq(tx.id, self.client_id, self._next_req(),
                                  key=key, ts=ts, deadline=tx.deadline,
                                  critical=tx.priority)
            reply = yield from self._rpc(server, req)
            if (reply is None or isinstance(reply, OverloadedReply)
                    or not reply.ok):
                self.stats["snapshot_fallbacks"] += 1
                continue
            if i == 0 and followers:
                self.stats["follower_reads"] += 1
            self.read_staleness.append(self.sim.now - ts.value)
            tx.readset.append((key, reply.tr))
            if self.history is not None:
                self.history.record_read(tx.id, key, reply.tr)
            if self.tracer.enabled:
                self.tracer.read(tx.id, key, ts=reply.tr)
            return reply.value
        yield from self._fail(tx, AbortReason.READ_FAILED)

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        if tx.snapshot_ts is not None:
            raise TypeError("snapshot (read-only) transactions cannot write")
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        if self.defer_writes:
            # Buffer locally; the whole write-lock set is acquired at
            # commit, one batch message per server.
            tx.writeset[key] = value
            if self.tracer.enabled:
                self.tracer.write(tx.id, key)
            return
        # Guards inlined (see MVTOClient.read).
        if tx.deadline is not None and self.sim.now >= tx.deadline:
            yield from self._fail(tx, AbortReason.DEADLINE_EXCEEDED)
        server = self.server_of(key)
        if self.replication > 1:
            yield from self._check_group(tx, key)
        if self._breakers is not None and not tx.priority:
            yield from self._admit(tx, server)
        req = MVTLWriteLockReq(tx.id, self.client_id, self._next_req(),
                               key=key, value=value, want=tx.interval,
                               wait=False,
                               deadline=tx.deadline, critical=tx.priority)
        tx.touched.add(server)
        if not tx.writeset:
            # First written key's server is the decision point (§H.1).
            self.registry.set_decision_point(tx.id, server)
        requested = tx.interval
        reply = yield from self._rpc(server, req)
        if reply is None or isinstance(reply, OverloadedReply):
            yield from self._expect(tx, reply, AbortReason.RPC_TIMEOUT)
        if tx.epochs.setdefault(server, reply.epoch) != reply.epoch:
            yield from self._fail(tx, AbortReason.SERVER_RESTART)
        tx.interval = tx.interval.intersect(reply.acquired)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "write",
                                     requested=requested,
                                     granted=tx.interval)
            self.tracer.write(tx.id, key)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        tx.writeset[key] = value

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        if tx.snapshot_ts is not None:
            # Read-only snapshot transaction: it took no locks and wrote
            # nothing, so there is nothing to decide or send — it commits
            # locally at its locked frontier timestamp.  Serializable by
            # construction: every version it read is the latest below T
            # and no transaction can ever commit between those versions
            # and T (the broadcast floor forbids new intervals below T).
            if self.history is not None:
                self.history.record_commit(tx.id, tx.snapshot_ts, ())
            self.stats["commits"] += 1
            self.stats["snapshot_commits"] += 1
            self.registry.forget(tx.id)
            tx.committed = True
            if self.tracer.enabled:
                self.tracer.commit(tx.id, ts=tx.snapshot_ts)
            return True
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        if self.defer_writes and tx.writeset:
            yield from self._batch_write_locks(tx)
        if self.validate_epochs and tx.touched:
            yield from self._validate_epochs(tx)
        yield from self._validate_groups(tx)
        ts = (tx.interval.pick_high() if self.late
              else tx.interval.pick_low())
        decision = yield from self._propose(tx.id, ts)
        if decision == ABORT:
            yield from self._fail(tx, AbortReason.COMMITMENT_ABORT)
        ts = decision
        # One CommitReq per touched server: freeze+install the write keys,
        # freeze the read-lock prefixes (they seal the serialization
        # decision), and — if gc_on_commit — release the rest.  The server
        # applies all of it atomically under the key latches (§8.1).
        yield from self._send_commit(tx, ts, release=self.gc_on_commit)
        if self.history is not None:
            self.history.record_commit(tx.id, ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        self.registry.forget(tx.id)
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=ts)
        return True

    def _batch_write_locks(self, tx: SimpleNamespace
                           ) -> Generator[Any, Any, None]:
        """Deferred write-lock pass: one MVTLBatchLockReq per server.

        All batches fly in parallel (:meth:`_rpc_many`), so the whole pass
        costs one round trip regardless of how many servers the write set
        spans — and O(servers) messages instead of O(written keys).
        """
        by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            yield from self._check_group(tx, key)
            by_server.setdefault(self.server_of(key), []).append(key)
        servers = list(by_server)
        # The first write server becomes the decision point (§H.1) —
        # before any lock lands, so a server that times out our orphaned
        # write lock reaches the same commitment object we propose to.
        self.registry.set_decision_point(tx.id, servers[0])
        requested = tx.interval
        reqs: dict[Hashable, MVTLBatchLockReq] = {}
        for server in servers:
            tx.touched.add(server)
            items = tuple((key, tx.writeset[key], requested)
                          for key in by_server[server])
            reqs[server] = MVTLBatchLockReq(tx.id, self.client_id,
                                            self._next_req(), items=items,
                                            deadline=tx.deadline,
                                            critical=tx.priority)
        replies = yield from self._rpc_many(reqs)
        if any(isinstance(r, OverloadedReply) for r in replies.values()):
            # A saturated server shed the batch; _fail releases whatever
            # the other servers did install.
            yield from self._fail(tx, AbortReason.OVERLOADED)
        if len(replies) < len(reqs):
            # Partial grant: _fail releases on every touched server —
            # including the ones that did reply and installed locks.
            yield from self._fail(tx, self._timeout_reason(
                tx, AbortReason.RPC_TIMEOUT))
        for server in servers:
            yield from self._check_epoch(tx, server, replies[server].epoch)
            acquired = replies[server].acquired
            for key in by_server[server]:
                tx.interval = tx.interval.intersect(
                    acquired.get(key, EMPTY_SET))
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=requested,
                                             granted=tx.interval)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        if self.replication > 1:
            grants = []
            for server in servers:
                acquired = replies[server].acquired
                for key in by_server[server]:
                    got = acquired.get(key, EMPTY_SET)
                    if not got.is_empty:
                        grants.append((key, tx.writeset[key], got))
            yield from self._mirror_write_locks(tx, grants)

    def _mirror_write_locks(self, tx: SimpleNamespace,
                            grants: list) -> Generator[Any, Any, None]:
        """Quorum write mirroring: ship leader-granted locks to followers.

        Each follower of a written group receives the exact interval its
        leader granted plus the pending value (so any quorum member can
        finish the commit alone) and arms the ordinary write-lock timeout
        on it.  A group counts as quorum-held when the leader (1) plus
        acknowledged mirrors reach ``write_quorum(replication)``; anything
        less aborts — committing on a sub-quorum hold could lose the write
        in a later failover.
        """
        items_by_follower: dict[Hashable, list] = {}
        group_followers: dict[int, set[Hashable]] = {}
        for key, value, granted in grants:
            gid = self.partition.group_of(key)
            flw = self.partition.followers_of(key)
            group_followers.setdefault(gid, set()).update(flw)
            for server in flw:
                items_by_follower.setdefault(server, []).append(
                    (key, value, granted))
        if not items_by_follower:
            return
        reqs: dict[Hashable, ReplicaHoldReq] = {}
        for server in sorted(items_by_follower, key=str):
            tx.touched.add(server)
            reqs[server] = ReplicaHoldReq(
                tx.id, self.client_id, self._next_req(),
                items=tuple(items_by_follower[server]),
                deadline=tx.deadline, critical=tx.priority)
        replies = yield from self._rpc_many(reqs)
        for server in sorted(replies, key=str):
            reply = replies[server]
            if not isinstance(reply, OverloadedReply):
                yield from self._check_epoch(tx, server, reply.epoch)
        need = write_quorum(self.replication)
        for gid in sorted(group_followers):
            acks = 1  # the leader's own grant
            for server in group_followers[gid]:
                reply = replies.get(server)
                if (reply is not None
                        and not isinstance(reply, OverloadedReply)
                        and getattr(reply, "mirrored", False)):
                    acks += 1
            if acks < need:
                yield from self._fail(tx, AbortReason.REPLICATION_QUORUM)

    def _key_destinations(self, key: Hashable) -> tuple[Hashable, ...]:
        """Servers a key's commit-time state must reach.

        Unreplicated: its partition server.  Replicated: every member of
        its group — the CommitReq fan-out to followers IS the commit-record
        replication (each member applies the decision it reads from the
        shared commitment registry), and read spans must freeze on
        followers too so a promoted follower still excludes writers from
        committed readers' pasts.
        """
        if self.replication > 1:
            return self.partition.members(self.partition.group_of(key))
        return (self.server_of(key),)

    def _send_commit(self, tx: SimpleNamespace, ts: Timestamp,
                     release: bool = True) -> Generator[Any, Any, None]:
        """Alg. 11 commit tail + gc, batched per server (per member when
        replicated).

        A generator either way: the default path sends fire-and-forget and
        yields nothing (byte-identical to the historical behaviour), the
        ``reliable_fanout`` path awaits CommitAcks and re-sends to
        unanswered members through :meth:`_rpc_many`.
        """
        spans_by_server: dict[Hashable, dict[Hashable, IntervalSet]] = {}
        for key, tr in tx.readset:
            if tr < ts:
                span = IntervalSet.from_interval(
                    TsInterval.open_closed(tr, ts))
            else:
                span = EMPTY_SET
            for server in self._key_destinations(key):
                spans_by_server.setdefault(server, {})[key] = span
            if self.tracer.enabled:
                self.tracer.freeze(tx.id, key, "read", span=span)
        if self.tracer.enabled:
            for key in tx.writeset:
                self.tracer.freeze(tx.id, key, "write", span=None, ts=ts)
        writes_by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            for server in self._key_destinations(key):
                writes_by_server.setdefault(server, []).append(key)
        targets = set(tx.touched)
        targets.update(spans_by_server)
        targets.update(writes_by_server)
        use_ack = self.reliable_fanout and self.replication > 1
        # Sorted fan-out: tx.touched is a set, and set order over string
        # ids varies per process (hash randomization) — send order must
        # not, or the network RNG draws diverge between identical runs.
        reqs: dict[Hashable, CommitReq] = {}
        for server in sorted(targets, key=str):
            keys = tuple(writes_by_server.get(server, ()))
            reqs[server] = CommitReq(
                tx.id, self.client_id, self._next_req(), ts=ts,
                write_keys=keys,
                spans=spans_by_server.get(server, {}),
                release=release,
                # Redo payload: lets a server that lost its pending buffer
                # in a crash still install the right values.
                values={k: tx.writeset[k] for k in keys},
                ack=use_ack)
        if not use_ack:
            for server, req in reqs.items():
                self._send(server, req)
            return
        # The decision is final: exhaustion weakens redundancy on the
        # unanswered members (counted, audited by scan_lost_commits) but
        # never un-commits — the mirrored-hold timeout is the backstop.
        replies = yield from self._rpc_many(reqs)
        self.stats["fanout_acked"] += len(replies)
        if len(replies) < len(reqs):
            self.stats["fanout_unacked"] += len(reqs) - len(replies)

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        """Abort: agree on the outcome, release our locks everywhere.

        No consensus round is needed on this path: we release our locks
        explicitly, and nobody else will ever propose commit for us (only
        the coordinator does, §H Lemma 2).  In local mode we still record
        the abort in the shared object so late server proposals see it.
        """
        if self.consensus is None:
            self.registry.get(tx.id).propose(ABORT)
        for server in sorted(tx.touched, key=str):
            self._send(server, ReleaseReq(tx.id, self.client_id,
                                          self._next_req()))
        self.registry.forget(tx.id)
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover - makes this a generator


class MVTOClient(BaseClient):
    """MVTO+ coordinator over the MVTL servers (§8.1 baseline)."""

    name = "mvto+"

    def __init__(self, *args: Any, batch_commit: bool = False,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Batch the commit-time point write locks per server (one
        #: MVTLBatchLockReq each) instead of one RPC per written key.  Off
        #: by default for protocol fidelity with the per-key pseudo-code;
        #: ``ClusterConfig.batching`` turns it on.
        self.batch_commit = batch_commit

    def begin(self, priority: bool = False,
              read_only: bool = False) -> SimpleNamespace:
        # read_only is accepted for interface uniformity; MVTO+ has no
        # snapshot-read path (reads already never wait on read locks).
        # MVTO+ has no protocol-level shield for criticals (that is the
        # paper's point, Theorem 3) — but they still ride the overload
        # machinery: priority service class, never shed, admission bypass.
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            ts=Timestamp(self.clock.now(), self.pid),
            readset=[], writeset={}, touched=set(), write_servers=set(),
            epochs={}, deadline=self._tx_deadline(), priority=priority,
            aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        # The guards below are _check_deadline/_admit/_expect/_check_epoch
        # inlined: this is the hottest coroutine in the closed loop, and a
        # ``yield from helper()`` that usually does nothing still builds
        # and drives a throwaway generator per call.
        if tx.deadline is not None and self.sim.now >= tx.deadline:
            yield from self._fail(tx, AbortReason.DEADLINE_EXCEEDED)
        server = self.server_of(key)
        if self._breakers is not None and not tx.priority:
            yield from self._admit(tx, server)
        req = MVTLReadReq(tx.id, self.client_id, self._next_req(), key=key,
                          upper=tx.ts, wait=True,
                          deadline=tx.deadline, critical=tx.priority)
        tx.touched.add(server)
        reply = yield from self._rpc(server, req)
        if reply is None or isinstance(reply, OverloadedReply):
            yield from self._expect(tx, reply, AbortReason.RPC_TIMEOUT)
        if reply.tr is None:
            yield from self._fail(tx, AbortReason.PURGED_VERSION)
        if tx.epochs.setdefault(server, reply.epoch) != reply.epoch:
            yield from self._fail(tx, AbortReason.SERVER_RESTART)
        tx.readset.append((key, reply.tr))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.tr)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=reply.tr)
        return reply.value

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        tx.writeset[key] = value  # lock only at commit (like MVTL-TO)
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)
        return
        yield  # pragma: no cover - generator for interface uniformity

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        point = IntervalSet.point(tx.ts)
        if self.batch_commit and tx.writeset:
            yield from self._batch_commit_locks(tx, point)
        else:
            for key in tx.writeset:
                server = self.server_of(key)
                tx.touched.add(server)
                tx.write_servers.add(server)
                if len(tx.write_servers) == 1:
                    self.registry.set_decision_point(tx.id, server)
                req = MVTLWriteLockReq(tx.id, self.client_id,
                                       self._next_req(),
                                       key=key, value=tx.writeset[key],
                                       want=point, wait=False,
                                       all_or_nothing=True,
                                       deadline=tx.deadline,
                                       critical=tx.priority)
                reply = yield from self._rpc(server, req)
                if reply is None or isinstance(reply, OverloadedReply):
                    yield from self._expect(tx, reply,
                                            AbortReason.RPC_TIMEOUT)
                if tx.epochs.setdefault(server, reply.epoch) != reply.epoch:
                    yield from self._fail(tx, AbortReason.SERVER_RESTART)
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=point,
                                             granted=reply.acquired)
                if reply.acquired.is_empty:
                    # Read-timestamp conflict: abort, releasing write locks
                    # only.  Read locks persist — MVTO+'s read-timestamps
                    # are never rolled back (§3), hence ghost aborts.
                    yield from self._fail(tx, AbortReason.WRITE_CONFLICT)
        if self.validate_epochs and tx.touched:
            yield from self._validate_epochs(tx)
        decision = yield from self._propose(tx.id, tx.ts)
        if decision == ABORT:
            yield from self._fail(tx, AbortReason.COMMITMENT_ABORT)
        writes_by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            writes_by_server.setdefault(self.server_of(key), []).append(key)
        for server, keys in writes_by_server.items():
            # Freeze write locks only; read locks stay held-unfrozen forever
            # (MVTO+'s persistent read-timestamps), hence release=False and
            # no read spans.
            self._send(server, CommitReq(
                tx.id, self.client_id, self._next_req(), ts=tx.ts,
                write_keys=tuple(keys), spans={}, release=False,
                values={k: tx.writeset[k] for k in keys}))
        if self.history is not None:
            self.history.record_commit(tx.id, tx.ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        self.registry.forget(tx.id)
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=tx.ts)
        return True

    def _batch_commit_locks(self, tx: SimpleNamespace, point: IntervalSet
                            ) -> Generator[Any, Any, None]:
        """Commit-time point write locks, one batch message per server.

        Same all-or-nothing semantics as the per-key loop — any refused
        key aborts the transaction (write locks released, read-timestamps
        kept) — but the messages drop from O(written keys) to O(servers)
        and the round trips overlap.
        """
        by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            by_server.setdefault(self.server_of(key), []).append(key)
        servers = list(by_server)
        self.registry.set_decision_point(tx.id, servers[0])
        reqs: dict[Hashable, MVTLBatchLockReq] = {}
        for server in servers:
            tx.touched.add(server)
            tx.write_servers.add(server)
            items = tuple((key, tx.writeset[key], point)
                          for key in by_server[server])
            reqs[server] = MVTLBatchLockReq(tx.id, self.client_id,
                                            self._next_req(), items=items,
                                            all_or_nothing=True,
                                            deadline=tx.deadline,
                                            critical=tx.priority)
        replies = yield from self._rpc_many(reqs)
        if any(isinstance(r, OverloadedReply) for r in replies.values()):
            yield from self._fail(tx, AbortReason.OVERLOADED)
        if len(replies) < len(reqs):
            # Partial grant: _fail write-releases on every write server,
            # including the responders that installed point locks.
            yield from self._fail(tx, self._timeout_reason(
                tx, AbortReason.RPC_TIMEOUT))
        refused = False
        for server in servers:
            yield from self._check_epoch(tx, server, replies[server].epoch)
            acquired = replies[server].acquired
            for key in by_server[server]:
                got = acquired.get(key, EMPTY_SET)
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=point, granted=got)
                if got.is_empty:
                    refused = True
        if refused:
            yield from self._fail(tx, AbortReason.WRITE_CONFLICT)

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        if self.consensus is None:
            self.registry.get(tx.id).propose(ABORT)
        for server in sorted(tx.write_servers, key=str):
            self._send(server, ReleaseReq(tx.id, self.client_id,
                                          self._next_req(), write_only=True))
        self.registry.forget(tx.id)
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover


class TwoPLClient(BaseClient):
    """Strict-2PL coordinator (§8.1 baseline).

    The lock-wait timeout is the deadlock-prevention mechanism, and the
    paper tunes it per deployment ("we set the timeout such as to maximize
    total throughput").  We automate that tuning: the client keeps an EWMA
    of granted-lock round-trip times (which includes server queueing) and
    times out at ``rtt_multiple`` times it — long enough that deep server
    queues and ordinary waits behind a writer don't abort transactions
    spuriously, short enough that genuine deadlocks break quickly.
    ``lock_timeout`` is the floor.
    """

    name = "2pl"

    def __init__(self, *args: Any, lock_timeout: float = 0.05,
                 rtt_multiple: float = 3.0, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.lock_timeout = lock_timeout
        self.rtt_multiple = rtt_multiple
        self._rtt_ewma: float | None = None

    def _observe_rtt(self, rtt: float) -> None:
        if self._rtt_ewma is None:
            self._rtt_ewma = rtt
        else:
            self._rtt_ewma = 0.9 * self._rtt_ewma + 0.1 * rtt

    def _current_timeout(self) -> float:
        # Until the EWMA is calibrated (first granted lock), honour the
        # configured timeout as-is: a fresh client must still break
        # deadlocks within ``lock_timeout``, not some larger default.
        if self._rtt_ewma is None:
            return self.lock_timeout
        return min(2.0, max(self.lock_timeout,
                            self.rtt_multiple * self._rtt_ewma))

    def begin(self, priority: bool = False,
              read_only: bool = False) -> SimpleNamespace:
        # read_only: interface uniformity only (2PL has no snapshot path).
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            readset=[], writeset={}, locked_keys=set(),
            deadline=self._tx_deadline(), priority=priority,
            aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        reply = yield from self._lock(tx, key, write=False)
        tx.readset.append((key, reply.version_ts))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.version_ts)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=reply.version_ts)
        return reply.value

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        yield from self._lock(tx, key, write=True)
        tx.writeset[key] = value
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)

    def _lock(self, tx: SimpleNamespace, key: Hashable,
              write: bool) -> Generator[Any, Any, Any]:
        yield from self._check_deadline(tx)
        server = self.server_of(key)
        yield from self._admit(tx, server)
        req = TwoPLLockReq(tx.id, self.client_id, self._next_req(), key=key,
                           write=write,
                           deadline=tx.deadline, critical=tx.priority)
        tx.locked_keys.add(key)
        sent_at = self.sim.now
        # retries=0: the lock-wait timeout IS the deadlock prevention;
        # re-sending would re-queue behind the same conflicting holder.
        # breaker_timeouts=False: a wait lost to a lock holder is
        # contention, not saturation — only OVERLOADED sheds trip the
        # breaker here.
        reply = yield from self._rpc(server, req,
                                     timeout=self._current_timeout(),
                                     retries=0, breaker_timeouts=False)
        if reply is None:
            # Lock-wait timeout: the paper's deadlock prevention.  Abort and
            # release everything (the server drops our queued request too).
            yield from self._fail(tx, self._timeout_reason(
                tx, AbortReason.LOCK_TIMEOUT))
        if isinstance(reply, OverloadedReply):
            yield from self._fail(tx, AbortReason.OVERLOADED)
        self._observe_rtt(self.sim.now - sent_at)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "write" if write else "read",
                                     rtt=self.sim.now - sent_at)
        return reply

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        commit_ts = Timestamp(self.sim.now, self.pid)
        by_server: dict[Hashable, tuple[dict, list]] = {}
        # Sorted: locked_keys is a set; see the MVTIL commit fan-out.
        for key in sorted(tx.locked_keys, key=str):
            server = self.server_of(key)
            writes, releases = by_server.setdefault(server, ({}, []))
            if key in tx.writeset:
                writes[key] = tx.writeset[key]
            else:
                releases.append(key)
        for server, (writes, releases) in by_server.items():
            self._send(server, TwoPLCommitReq(
                tx.id, self.client_id, self._next_req(), writes=writes,
                release_keys=tuple(releases), commit_ts=commit_ts))
        if self.history is not None:
            self.history.record_commit(tx.id, commit_ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=commit_ts)
        return True
        yield  # pragma: no cover

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        by_server: dict[Hashable, list] = {}
        for key in sorted(tx.locked_keys, key=str):
            by_server.setdefault(self.server_of(key), []).append(key)
        for server, keys in by_server.items():
            self._send(server, TwoPLReleaseReq(
                tx.id, self.client_id, self._next_req(), keys=tuple(keys)))
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover


class BohmClient(BaseClient):
    """Coordinator for the Bohm baseline: one submit RPC per transaction.

    Bohm is non-interactive by design — the whole pre-declared
    :class:`~repro.workload.generator.TxSpec` ships to the sequencer in a
    single :class:`~repro.dist.messages.BohmSubmitReq`, and the reply (sent
    when the transaction's batch executes) carries the outcome.  The runner
    drives this through :meth:`run_spec` instead of the op-by-op
    begin/read/write/commit protocol; there are no locks to release and no
    commitment object, so the failure paths reduce to aborting locally on
    an unanswered or overloaded RPC.  History recording happens inside the
    sequencer's engine (the one place that knows versions and timestamps).
    """

    name = "bohm"

    def run_spec(self, spec: Any) -> Generator[Any, Any, bool]:
        """Execute one pre-declared transaction; True on commit.

        Raises :class:`TransactionAborted` otherwise, like
        :func:`repro.workload.runner.run_tx`.
        """
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            deadline=self._tx_deadline(), priority=spec.critical,
            touched=set(), aborted=False, abort_reason=None)
        # Single sequencer: every key routes to the same server, so any
        # key (or none) picks it.
        server = self.partition.servers[0]
        yield from self._admit(tx, server)
        req = BohmSubmitReq(tx.id, self.client_id, self._next_req(),
                            deadline=tx.deadline, critical=spec.critical,
                            spec=spec)
        reply = yield from self._rpc(server, req)
        reply = yield from self._expect(tx, reply, AbortReason.RPC_TIMEOUT)
        if reply.committed:
            self.stats["commits"] += 1
            if self.tracer.enabled:
                self.tracer.commit(tx.id, ts=reply.commit_ts)
            return True
        yield from self._fail(tx, reply.abort_reason
                              or AbortReason.USER_ABORT)
        return False  # pragma: no cover - _fail always raises

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        # No locks anywhere and no commitment object: the sequencer is the
        # single authority, so failing is purely client-local bookkeeping.
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover - makes this a generator
