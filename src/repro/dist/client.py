"""Transaction coordinators — the client side of the distributed protocols.

Three client protocols over the simulated network, mirroring §8.1 ("our
implementations of MVTO+ and 2PL use the same framework, but run a different
client protocol and keep a different server state"):

* :class:`MVTILClient` — the paper's prototype (Alg. 11/12 with the §8
  interval policy): interval ``I = [t, t+delta]``, shrink on partial grants,
  commit at min/max of ``I`` via the commitment object, fire-and-forget
  freeze + GC.  One round trip per read, two per written key.
* :class:`MVTOClient` — MVTO+ over the same servers: single timestamp,
  server-side waiting reads, no-wait commit-time point write locks; aborts
  release only write locks (read-timestamps persist — ghost aborts and all).
* :class:`TwoPLClient` — strict 2PL: lock per access, client-side lock
  timeout as deadlock prevention (the paper tunes this timeout for
  throughput), commit installs values and releases.

Client methods that talk to servers are **generators** — simulation
coroutines to be driven with ``yield from`` inside a process (see
:mod:`repro.workload.runner`).  A coordinator failure is simulated by simply
not running the rest of the generator (see :mod:`repro.dist.failure`); the
servers' write-lock timeout then aborts the orphaned transaction via its
commitment object.
"""

from __future__ import annotations

from itertools import count
from types import SimpleNamespace
from typing import Any, Generator, Hashable

from ..clocks.clock import Clock
from ..core.exceptions import AbortReason, TransactionAborted
from ..core.intervals import EMPTY_SET, IntervalSet, TsInterval
from ..core.timestamp import Timestamp
from ..obs.trace import NULL_TRACER
from ..sim.network import Network
from ..sim.simulator import RECV_TIMEOUT, Mailbox, Recv, Simulator
from .commitment import ABORT, CommitmentRegistry
from .messages import (ClockBroadcast, CommitReq, EpochReq, MVTLBatchLockReq,
                       MVTLReadReq, MVTLWriteLockReq, ReleaseReq, Reply,
                       TwoPLCommitReq, TwoPLLockReq, TwoPLReleaseReq)
from .partition import Partition

__all__ = ["BaseClient", "MVTILClient", "MVTOClient", "TwoPLClient"]


class BaseClient:
    """Shared client wiring: mailbox, RPC with timeout, clock, history."""

    def __init__(self, sim: Simulator, net: Network, client_id: Hashable,
                 pid: int, partition: Partition, clock: Clock,
                 registry: CommitmentRegistry, *,
                 history: Any | None = None,
                 rpc_timeout: float = 5.0,
                 rpc_retries: int = 0,
                 validate_epochs: bool = False,
                 consensus: Any | None = None,
                 tracer: Any | None = None) -> None:
        self.sim = sim
        self.net = net
        self.client_id = client_id
        self.pid = pid
        self.partition = partition
        self.clock = clock
        self.registry = registry
        #: Optional PaxosConsensus backend for transaction outcomes (§H.1
        #: "servers may fail" mode); None = the shared in-sim object.
        self.consensus = consensus
        self.history = history
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rpc_timeout = rpc_timeout
        #: Default number of times an unanswered RPC is re-sent (same
        #: request object, same ``req_id`` — the server's dedup log absorbs
        #: the duplicates).  Each attempt doubles the previous attempt's
        #: timeout (exponential backoff).  0 = at-most-once, the original
        #: behaviour.
        self.rpc_retries = rpc_retries
        #: Re-check every touched server's epoch just before proposing
        #: commit.  Closes the restart window: a server that crashed and
        #: rejoined with empty volatile lock state after granting us a lock
        #: is detected and the transaction aborted instead of committing on
        #: locks that no longer exist.  Enabled by run_cluster for chaos
        #: scenarios with server restarts.
        self.validate_epochs = validate_epochs
        self.mailbox = Mailbox(sim)
        net.register(client_id, self._on_message)
        self._req_counter = count(1)
        self._tx_counter = count(1)
        self.stats = {"commits": 0, "aborts": 0, "rpc_timeouts": 0,
                      "rpc_retries": 0, "msgs_sent": 0}

    # -- messaging ------------------------------------------------------------

    def _on_message(self, msg: Any) -> None:
        if not isinstance(msg, Reply) and self._handle_oob(msg):
            return
        self.mailbox.deliver(msg)

    def _handle_oob(self, msg: Any) -> bool:
        """Handle out-of-band (non-RPC-reply) traffic; True if consumed.

        Called both on direct delivery and from the RPC receive loops, so a
        broadcast that lands in the mailbox while an RPC is pending is still
        processed instead of being silently dropped.
        """
        if isinstance(msg, ClockBroadcast):
            # Timestamp-service effect 2 (§8.1): slow clocks advance to T.
            self.clock.advance_floor(msg.t)
            return True
        return False

    def _send(self, server: Hashable, msg: Any) -> None:
        self.stats["msgs_sent"] += 1
        self.net.send(server, msg, src=self.client_id)

    def _rpc(self, server: Hashable, msg: Any,
             timeout: float | None = None, retries: int | None = None
             ) -> Generator[Any, Any, Reply | None]:
        """Send and await the matching reply; None after all attempts fail.

        The request is re-sent up to ``retries`` times (default: the
        client's ``rpc_retries``) with per-attempt timeouts doubling each
        time.  The same message object — and hence the same ``req_id`` —
        goes out every attempt, so the server's request-dedup log makes the
        call at-least-once safe: a retried lock install is applied once and
        the cached reply is resent.  Pass ``retries=0`` for semantic
        timeouts (lock-wait deadlock prevention) where re-sending would
        defeat the timeout's purpose.

        Stale replies (from earlier timed-out requests) are discarded by
        request id; non-Reply traffic is routed to :meth:`_handle_oob`.
        """
        base = timeout if timeout is not None else self.rpc_timeout
        attempts = 1 + (retries if retries is not None else self.rpc_retries)
        for attempt in range(attempts):
            if attempt:
                self.stats["rpc_retries"] += 1
            self._send(server, msg)
            deadline = self.sim.now + base * (2 ** attempt)
            while True:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    break
                reply = yield Recv(self.mailbox, timeout=remaining)
                if reply is RECV_TIMEOUT:
                    break
                if not isinstance(reply, Reply):
                    self._handle_oob(reply)
                    continue
                if reply.req_id == msg.req_id:
                    return reply
                # Stale reply from an earlier timed-out request: drop it.
            self.stats["rpc_timeouts"] += 1
        return None

    def _rpc_many(self, msgs: dict[Hashable, Any], timeout: float | None = None,
                  retries: int | None = None
                  ) -> Generator[Any, Any, dict[Hashable, Reply]]:
        """Send one message per server, then await every matching reply.

        All messages go out before any reply is awaited, so the round trips
        overlap — the whole fan-out costs one RTT plus queueing, not one
        RTT per server.  Unanswered requests are re-sent like :meth:`_rpc`
        (only the missing ones; answered servers are not bothered again).

        Returns ``{server: reply}`` with whatever arrived — **possibly
        partial**.  Callers must compare ``len(replies)`` against
        ``len(msgs)``: a partial map still tells the abort path exactly
        which servers granted locks, so it can release them instead of
        leaving them to the server-side write-lock timeout.
        """
        base = timeout if timeout is not None else self.rpc_timeout
        attempts = 1 + (retries if retries is not None else self.rpc_retries)
        pending = dict(msgs)
        replies: dict[Hashable, Reply] = {}
        for attempt in range(attempts):
            if not pending:
                break
            for server, msg in pending.items():
                if attempt:
                    self.stats["rpc_retries"] += 1
                self._send(server, msg)
            wanted = {msg.req_id: server for server, msg in pending.items()}
            deadline = self.sim.now + base * (2 ** attempt)
            while wanted:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    break
                reply = yield Recv(self.mailbox, timeout=remaining)
                if reply is RECV_TIMEOUT:
                    break
                if not isinstance(reply, Reply):
                    self._handle_oob(reply)
                    continue
                if reply.req_id in wanted:
                    server = wanted.pop(reply.req_id)
                    del pending[server]
                    replies[server] = reply
            if wanted:
                self.stats["rpc_timeouts"] += 1
        return replies

    def _next_req(self) -> int:
        return next(self._req_counter)

    # -- epoch fencing -----------------------------------------------------

    def _check_epoch(self, tx: SimpleNamespace, server: Hashable,
                     epoch: int) -> Generator[Any, Any, None]:
        """Abort if ``server`` restarted since this tx first talked to it.

        Servers stamp every reply with their epoch (bumped on restart).  A
        restarted server rejoined with empty volatile lock state, so any
        lock this transaction installed there before the crash is gone —
        committing anyway could serialize against readers/writers the lost
        lock was supposed to exclude.
        """
        first = tx.epochs.setdefault(server, epoch)
        if first != epoch:
            yield from self._fail(tx, AbortReason.SERVER_RESTART)

    def _validate_epochs(self, tx: SimpleNamespace
                         ) -> Generator[Any, Any, None]:
        """Pre-commit epoch round: confirm no touched server restarted.

        One EpochReq per touched server, fanned out in parallel.  Under the
        local (shared-object) commitment backend the reply handling, the
        commit proposal and the commit messages all happen in one
        simulation step, so no restart can slip between validation and
        decision.
        """
        reqs = {server: EpochReq(tx.id, self.client_id, self._next_req())
                for server in sorted(tx.touched, key=str)}
        replies = yield from self._rpc_many(reqs)
        if len(replies) < len(reqs):
            yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
        for server, reply in replies.items():
            yield from self._check_epoch(tx, server, reply.epoch)

    # -- bookkeeping -------------------------------------------------------------

    def _begin_record(self, tx: SimpleNamespace) -> None:
        if self.history is not None:
            self.history.record_begin(tx.id)
        if self.tracer.enabled:
            self.tracer.begin(tx.id, pid=self.pid)

    def _abort(self, tx: SimpleNamespace, reason: str) -> None:
        reason = AbortReason.of(reason)
        tx.aborted = True
        tx.abort_reason = reason
        self.stats["aborts"] += 1
        if self.history is not None:
            self.history.record_abort(tx.id, reason)
        if self.tracer.enabled:
            self.tracer.abort(tx.id, reason=reason)

    def _propose(self, tx_id: Hashable,
                 outcome: Any) -> "Generator[Any, Any, Any]":
        """Decide the transaction outcome via the configured backend."""
        if self.consensus is not None:
            decision = yield from self.consensus.propose(
                tx_id, outcome, proposer_id=self.pid)
            return decision
        return self.registry.get(tx_id).propose(outcome)

    def server_of(self, key: Hashable) -> Hashable:
        return self.partition.server_of(key)


class MVTILClient(BaseClient):
    """The MVTIL coordinator (§8, Alg. 11/12)."""

    def __init__(self, *args: Any, delta: float = 0.005, late: bool = False,
                 gc_on_commit: bool = True, read_timeout: float = 0.25,
                 defer_writes: bool = False, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.delta = delta
        self.late = late
        self.gc_on_commit = gc_on_commit
        #: Bound on a read's server-side lock wait.  Waiting reads can form
        #: wait cycles with writers (the deadlock risk §4.3 notes for
        #: waiting policies); timing out and restarting the transaction is
        #: the standard resolution.
        self.read_timeout = read_timeout
        #: Batched write locking: buffer writes locally and acquire the
        #: whole write-lock set at commit with one MVTLBatchLockReq per
        #: server — O(servers touched) commit-path messages instead of
        #: O(written keys).  Off by default: the eager per-key path is
        #: Alg. 12 as written (and what the failure tests exercise —
        #: a crashed coordinator's eagerly-placed locks must be timed out
        #: server-side); :func:`repro.dist.cluster.run_cluster` turns it on
        #: via ``ClusterConfig.batching``.
        self.defer_writes = defer_writes
        self.name = "mvtil-late" if late else "mvtil-early"

    def begin(self) -> SimpleNamespace:
        now = self.clock.now()
        interval = TsInterval.closed(Timestamp(now, self.pid),
                                     Timestamp(now + self.delta, self.pid))
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            interval=IntervalSet.from_interval(interval),
            readset=[], writeset={}, touched=set(), epochs={},
            aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    # Each op is a simulation coroutine; drive with ``yield from``.

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        server = self.server_of(key)
        req = MVTLReadReq(tx.id, self.client_id, self._next_req(), key=key,
                          upper=tx.interval.pick_high(), wait=True,
                          floor=tx.interval.pick_low())
        tx.touched.add(server)
        requested = tx.interval
        # retries=0: the read timeout is semantic (waiting reads can form
        # wait cycles with writers; timing out breaks them) — re-sending
        # would just park a duplicate behind the same writer.
        reply = yield from self._rpc(server, req,
                                     timeout=self.read_timeout, retries=0)
        if reply is None:
            yield from self._fail(tx, AbortReason.READ_LOCK_TIMEOUT)
        if reply.tr is None:
            yield from self._fail(tx, AbortReason.PURGED_VERSION)
        yield from self._check_epoch(tx, server, reply.epoch)
        tx.interval = tx.interval.intersect(reply.locked)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "read",
                                     requested=requested,
                                     granted=tx.interval)
            self.tracer.read(tx.id, key, ts=reply.tr)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        tx.readset.append((key, reply.tr))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.tr)
        return reply.value

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        if self.defer_writes:
            # Buffer locally; the whole write-lock set is acquired at
            # commit, one batch message per server.
            tx.writeset[key] = value
            if self.tracer.enabled:
                self.tracer.write(tx.id, key)
            return
        server = self.server_of(key)
        req = MVTLWriteLockReq(tx.id, self.client_id, self._next_req(),
                               key=key, value=value, want=tx.interval,
                               wait=False)
        tx.touched.add(server)
        if not tx.writeset:
            # First written key's server is the decision point (§H.1).
            self.registry.set_decision_point(tx.id, server)
        requested = tx.interval
        reply = yield from self._rpc(server, req)
        if reply is None:
            yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
        yield from self._check_epoch(tx, server, reply.epoch)
        tx.interval = tx.interval.intersect(reply.acquired)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "write",
                                     requested=requested,
                                     granted=tx.interval)
            self.tracer.write(tx.id, key)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        tx.writeset[key] = value

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)
        if self.defer_writes and tx.writeset:
            yield from self._batch_write_locks(tx)
        if self.validate_epochs and tx.touched:
            yield from self._validate_epochs(tx)
        ts = (tx.interval.pick_high() if self.late
              else tx.interval.pick_low())
        decision = yield from self._propose(tx.id, ts)
        if decision == ABORT:
            yield from self._fail(tx, AbortReason.COMMITMENT_ABORT)
        ts = decision
        # One CommitReq per touched server: freeze+install the write keys,
        # freeze the read-lock prefixes (they seal the serialization
        # decision), and — if gc_on_commit — release the rest.  The server
        # applies all of it atomically under the key latches (§8.1).
        self._send_commit(tx, ts, release=self.gc_on_commit)
        if self.history is not None:
            self.history.record_commit(tx.id, ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        self.registry.forget(tx.id)
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=ts)
        return True

    def _batch_write_locks(self, tx: SimpleNamespace
                           ) -> Generator[Any, Any, None]:
        """Deferred write-lock pass: one MVTLBatchLockReq per server.

        All batches fly in parallel (:meth:`_rpc_many`), so the whole pass
        costs one round trip regardless of how many servers the write set
        spans — and O(servers) messages instead of O(written keys).
        """
        by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            by_server.setdefault(self.server_of(key), []).append(key)
        servers = list(by_server)
        # The first write server becomes the decision point (§H.1) —
        # before any lock lands, so a server that times out our orphaned
        # write lock reaches the same commitment object we propose to.
        self.registry.set_decision_point(tx.id, servers[0])
        requested = tx.interval
        reqs: dict[Hashable, MVTLBatchLockReq] = {}
        for server in servers:
            tx.touched.add(server)
            items = tuple((key, tx.writeset[key], requested)
                          for key in by_server[server])
            reqs[server] = MVTLBatchLockReq(tx.id, self.client_id,
                                            self._next_req(), items=items)
        replies = yield from self._rpc_many(reqs)
        if len(replies) < len(reqs):
            # Partial grant: _fail releases on every touched server —
            # including the ones that did reply and installed locks.
            yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
        for server in servers:
            yield from self._check_epoch(tx, server, replies[server].epoch)
            acquired = replies[server].acquired
            for key in by_server[server]:
                tx.interval = tx.interval.intersect(
                    acquired.get(key, EMPTY_SET))
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=requested,
                                             granted=tx.interval)
        if tx.interval.is_empty:
            yield from self._fail(tx, AbortReason.INTERVAL_EMPTY)

    def _send_commit(self, tx: SimpleNamespace, ts: Timestamp,
                     release: bool = True) -> None:
        """Alg. 11 commit tail + gc, batched per server."""
        spans_by_server: dict[Hashable, dict[Hashable, IntervalSet]] = {}
        for key, tr in tx.readset:
            if tr < ts:
                span = IntervalSet.from_interval(
                    TsInterval.open_closed(tr, ts))
            else:
                span = EMPTY_SET
            spans_by_server.setdefault(self.server_of(key), {})[key] = span
            if self.tracer.enabled:
                self.tracer.freeze(tx.id, key, "read", span=span)
        if self.tracer.enabled:
            for key in tx.writeset:
                self.tracer.freeze(tx.id, key, "write", span=None, ts=ts)
        writes_by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            writes_by_server.setdefault(self.server_of(key), []).append(key)
        for server in tx.touched:
            keys = tuple(writes_by_server.get(server, ()))
            self._send(server, CommitReq(
                tx.id, self.client_id, self._next_req(), ts=ts,
                write_keys=keys,
                spans=spans_by_server.get(server, {}),
                release=release,
                # Redo payload: lets a server that lost its pending buffer
                # in a crash still install the right values.
                values={k: tx.writeset[k] for k in keys}))

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        """Abort: agree on the outcome, release our locks everywhere.

        No consensus round is needed on this path: we release our locks
        explicitly, and nobody else will ever propose commit for us (only
        the coordinator does, §H Lemma 2).  In local mode we still record
        the abort in the shared object so late server proposals see it.
        """
        if self.consensus is None:
            self.registry.get(tx.id).propose(ABORT)
        for server in tx.touched:
            self._send(server, ReleaseReq(tx.id, self.client_id,
                                          self._next_req()))
        self.registry.forget(tx.id)
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover - makes this a generator


class MVTOClient(BaseClient):
    """MVTO+ coordinator over the MVTL servers (§8.1 baseline)."""

    name = "mvto+"

    def __init__(self, *args: Any, batch_commit: bool = False,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Batch the commit-time point write locks per server (one
        #: MVTLBatchLockReq each) instead of one RPC per written key.  Off
        #: by default for protocol fidelity with the per-key pseudo-code;
        #: ``ClusterConfig.batching`` turns it on.
        self.batch_commit = batch_commit

    def begin(self) -> SimpleNamespace:
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            ts=Timestamp(self.clock.now(), self.pid),
            readset=[], writeset={}, touched=set(), write_servers=set(),
            epochs={}, aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        server = self.server_of(key)
        req = MVTLReadReq(tx.id, self.client_id, self._next_req(), key=key,
                          upper=tx.ts, wait=True)
        tx.touched.add(server)
        reply = yield from self._rpc(server, req)
        if reply is None:
            yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
        if reply.tr is None:
            yield from self._fail(tx, AbortReason.PURGED_VERSION)
        yield from self._check_epoch(tx, server, reply.epoch)
        tx.readset.append((key, reply.tr))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.tr)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=reply.tr)
        return reply.value

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        tx.writeset[key] = value  # lock only at commit (like MVTL-TO)
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)
        return
        yield  # pragma: no cover - generator for interface uniformity

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        point = IntervalSet.point(tx.ts)
        if self.batch_commit and tx.writeset:
            yield from self._batch_commit_locks(tx, point)
        else:
            for key in tx.writeset:
                server = self.server_of(key)
                tx.touched.add(server)
                tx.write_servers.add(server)
                if len(tx.write_servers) == 1:
                    self.registry.set_decision_point(tx.id, server)
                req = MVTLWriteLockReq(tx.id, self.client_id,
                                       self._next_req(),
                                       key=key, value=tx.writeset[key],
                                       want=point, wait=False,
                                       all_or_nothing=True)
                reply = yield from self._rpc(server, req)
                if reply is None:
                    yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
                yield from self._check_epoch(tx, server, reply.epoch)
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=point,
                                             granted=reply.acquired)
                if reply.acquired.is_empty:
                    # Read-timestamp conflict: abort, releasing write locks
                    # only.  Read locks persist — MVTO+'s read-timestamps
                    # are never rolled back (§3), hence ghost aborts.
                    yield from self._fail(tx, AbortReason.WRITE_CONFLICT)
        if self.validate_epochs and tx.touched:
            yield from self._validate_epochs(tx)
        decision = yield from self._propose(tx.id, tx.ts)
        if decision == ABORT:
            yield from self._fail(tx, AbortReason.COMMITMENT_ABORT)
        writes_by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            writes_by_server.setdefault(self.server_of(key), []).append(key)
        for server, keys in writes_by_server.items():
            # Freeze write locks only; read locks stay held-unfrozen forever
            # (MVTO+'s persistent read-timestamps), hence release=False and
            # no read spans.
            self._send(server, CommitReq(
                tx.id, self.client_id, self._next_req(), ts=tx.ts,
                write_keys=tuple(keys), spans={}, release=False,
                values={k: tx.writeset[k] for k in keys}))
        if self.history is not None:
            self.history.record_commit(tx.id, tx.ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        self.registry.forget(tx.id)
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=tx.ts)
        return True

    def _batch_commit_locks(self, tx: SimpleNamespace, point: IntervalSet
                            ) -> Generator[Any, Any, None]:
        """Commit-time point write locks, one batch message per server.

        Same all-or-nothing semantics as the per-key loop — any refused
        key aborts the transaction (write locks released, read-timestamps
        kept) — but the messages drop from O(written keys) to O(servers)
        and the round trips overlap.
        """
        by_server: dict[Hashable, list[Hashable]] = {}
        for key in tx.writeset:
            by_server.setdefault(self.server_of(key), []).append(key)
        servers = list(by_server)
        self.registry.set_decision_point(tx.id, servers[0])
        reqs: dict[Hashable, MVTLBatchLockReq] = {}
        for server in servers:
            tx.touched.add(server)
            tx.write_servers.add(server)
            items = tuple((key, tx.writeset[key], point)
                          for key in by_server[server])
            reqs[server] = MVTLBatchLockReq(tx.id, self.client_id,
                                            self._next_req(), items=items,
                                            all_or_nothing=True)
        replies = yield from self._rpc_many(reqs)
        if len(replies) < len(reqs):
            # Partial grant: _fail write-releases on every write server,
            # including the responders that installed point locks.
            yield from self._fail(tx, AbortReason.RPC_TIMEOUT)
        refused = False
        for server in servers:
            yield from self._check_epoch(tx, server, replies[server].epoch)
            acquired = replies[server].acquired
            for key in by_server[server]:
                got = acquired.get(key, EMPTY_SET)
                if self.tracer.enabled:
                    self.tracer.lock_acquire(tx.id, key, "write",
                                             requested=point, granted=got)
                if got.is_empty:
                    refused = True
        if refused:
            yield from self._fail(tx, AbortReason.WRITE_CONFLICT)

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        if self.consensus is None:
            self.registry.get(tx.id).propose(ABORT)
        for server in tx.write_servers:
            self._send(server, ReleaseReq(tx.id, self.client_id,
                                          self._next_req(), write_only=True))
        self.registry.forget(tx.id)
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover


class TwoPLClient(BaseClient):
    """Strict-2PL coordinator (§8.1 baseline).

    The lock-wait timeout is the deadlock-prevention mechanism, and the
    paper tunes it per deployment ("we set the timeout such as to maximize
    total throughput").  We automate that tuning: the client keeps an EWMA
    of granted-lock round-trip times (which includes server queueing) and
    times out at ``rtt_multiple`` times it — long enough that deep server
    queues and ordinary waits behind a writer don't abort transactions
    spuriously, short enough that genuine deadlocks break quickly.
    ``lock_timeout`` is the floor.
    """

    name = "2pl"

    def __init__(self, *args: Any, lock_timeout: float = 0.05,
                 rtt_multiple: float = 3.0, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.lock_timeout = lock_timeout
        self.rtt_multiple = rtt_multiple
        self._rtt_ewma: float | None = None

    def _observe_rtt(self, rtt: float) -> None:
        if self._rtt_ewma is None:
            self._rtt_ewma = rtt
        else:
            self._rtt_ewma = 0.9 * self._rtt_ewma + 0.1 * rtt

    def _current_timeout(self) -> float:
        # Until the EWMA is calibrated (first granted lock), honour the
        # configured timeout as-is: a fresh client must still break
        # deadlocks within ``lock_timeout``, not some larger default.
        if self._rtt_ewma is None:
            return self.lock_timeout
        return min(2.0, max(self.lock_timeout,
                            self.rtt_multiple * self._rtt_ewma))

    def begin(self) -> SimpleNamespace:
        tx = SimpleNamespace(
            id=(self.client_id, next(self._tx_counter)),
            readset=[], writeset={}, locked_keys=set(),
            aborted=False, abort_reason=None)
        self._begin_record(tx)
        return tx

    def read(self, tx: SimpleNamespace, key: Hashable) -> Generator[Any, Any, Any]:
        if key in tx.writeset:
            return tx.writeset[key]
        reply = yield from self._lock(tx, key, write=False)
        tx.readset.append((key, reply.version_ts))
        if self.history is not None:
            self.history.record_read(tx.id, key, reply.version_ts)
        if self.tracer.enabled:
            self.tracer.read(tx.id, key, ts=reply.version_ts)
        return reply.value

    def write(self, tx: SimpleNamespace, key: Hashable,
              value: Any) -> Generator[Any, Any, None]:
        yield from self._lock(tx, key, write=True)
        tx.writeset[key] = value
        if self.tracer.enabled:
            self.tracer.write(tx.id, key)

    def _lock(self, tx: SimpleNamespace, key: Hashable,
              write: bool) -> Generator[Any, Any, Any]:
        server = self.server_of(key)
        req = TwoPLLockReq(tx.id, self.client_id, self._next_req(), key=key,
                           write=write)
        tx.locked_keys.add(key)
        sent_at = self.sim.now
        # retries=0: the lock-wait timeout IS the deadlock prevention;
        # re-sending would re-queue behind the same conflicting holder.
        reply = yield from self._rpc(server, req,
                                     timeout=self._current_timeout(),
                                     retries=0)
        if reply is None:
            # Lock-wait timeout: the paper's deadlock prevention.  Abort and
            # release everything (the server drops our queued request too).
            yield from self._fail(tx, AbortReason.LOCK_TIMEOUT)
        self._observe_rtt(self.sim.now - sent_at)
        if self.tracer.enabled:
            self.tracer.lock_acquire(tx.id, key, "write" if write else "read",
                                     rtt=self.sim.now - sent_at)
        return reply

    def commit(self, tx: SimpleNamespace) -> Generator[Any, Any, bool]:
        commit_ts = Timestamp(self.sim.now, self.pid)
        by_server: dict[Hashable, tuple[dict, list]] = {}
        for key in tx.locked_keys:
            server = self.server_of(key)
            writes, releases = by_server.setdefault(server, ({}, []))
            if key in tx.writeset:
                writes[key] = tx.writeset[key]
            else:
                releases.append(key)
        for server, (writes, releases) in by_server.items():
            self._send(server, TwoPLCommitReq(
                tx.id, self.client_id, self._next_req(), writes=writes,
                release_keys=tuple(releases), commit_ts=commit_ts))
        if self.history is not None:
            self.history.record_commit(tx.id, commit_ts, tuple(tx.writeset))
        self.stats["commits"] += 1
        tx.committed = True
        if self.tracer.enabled:
            self.tracer.commit(tx.id, ts=commit_ts)
        return True
        yield  # pragma: no cover

    def _fail(self, tx: SimpleNamespace,
              reason: str) -> Generator[Any, Any, None]:
        by_server: dict[Hashable, list] = {}
        for key in tx.locked_keys:
            by_server.setdefault(self.server_of(key), []).append(key)
        for server, keys in by_server.items():
            self._send(server, TwoPLReleaseReq(
                tx.id, self.client_id, self._next_req(), keys=tuple(keys)))
        self._abort(tx, reason)
        raise TransactionAborted(tx.id, reason)
        yield  # pragma: no cover
