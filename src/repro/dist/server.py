"""Storage servers (Alg. 13 and the §8.1 prototype's server side).

A server owns a partition of the keys and, per key, the lock and version
state (§8.1 keeps two skip lists per key — here the interval-compressed
:class:`~repro.core.locks.LockTable` and the sorted
:class:`~repro.core.versions.VersionStore`).  Requests arrive through a
:class:`~repro.sim.server_queue.ServiceQueue` modelling the server's CPU;
handlers run when a slot frees.

Blocking requests ("waiting if locked but not frozen") are *parked*: the
handler stores them on the key's wait list and returns (releasing the CPU
slot); any lock-state change on that key re-submits them through the queue.
Non-waiting requests (MVTIL's shrink, TO's no-wait commit lock) reply
immediately with whatever was grantable.

Fault tolerance (§H): a server that has held an *unfrozen* write lock past
``write_lock_timeout`` suspects the coordinator, proposes abort to the
transaction's commitment object and applies the decision — releasing the
locks on a decided abort, or freezing/installing on a decided commit
(Alg. 13's write-lock-timeout handler).

Crash/restart: :meth:`~_ServerBase.crash` is fail-stop (network detach, all
queued and in-service work dropped); :meth:`~_ServerBase.restart` rejoins
with empty *volatile* state — lock table, pending-value buffer, parked
requests and the request-dedup log are gone.  What the version store does
across a restart depends on the durability mode: without a
:class:`~repro.repl.checkpoint.DurableStore` attached the store object is
simply kept (the original "durable storage is magic" model); with one
attached the store is rebuilt by checkpoint load + WAL tail replay, and the
dedup log is re-primed from the logged ``(client, req_id)`` pairs so a
retried already-committed request cannot double-apply.  Each restart bumps
the server's ``epoch``, stamped on every reply, so mid-transaction clients
can detect that their locks evaporated.  Because clients retry lost RPCs
with the same request id, every request is deduplicated by
``(client, req_id)`` before it is executed (at-least-once transport,
exactly-once application).

Replication (§5e): a server can additionally act as a *follower* for key
groups led elsewhere — it accepts mirrored write holds
(:class:`~repro.dist.messages.ReplicaHoldReq`), applies commit decisions
fanned to every group member, answers locked-timestamp snapshot reads from
its stable GC frontier, and reports heartbeats to the failover controller.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

from ..core.intervals import EMPTY_SET, IntervalSet, TsInterval
from ..core.locks import LockMode, LockTable
from .._fastcore import iv_subtract
from ..obs.trace import NULL_TRACER
from ..core.timestamp import BOTTOM, TS_ZERO, Timestamp
from ..core.versions import VersionStore
from ..sim.network import Network
from ..sim.server_queue import ServiceQueue
from ..sim.simulator import Simulator
from ..sim.testbed import TestbedProfile
from ..repl.checkpoint import DurableStore
from ..repl.placement import group_index
from ..baselines.bohm import BohmEngine
from .commitment import ABORT, CommitmentRegistry
from .messages import (SHEDDABLE_REQUESTS, BohmSubmitReply, BohmSubmitReq,
                       CommitAck, CommitReq, EpochReply, EpochReq,
                       FreezeReadReq, FreezeWriteReq, GcReq, HeartbeatReply,
                       HeartbeatReq, MVTLBatchLockReply, MVTLBatchLockReq,
                       MVTLReadReply, MVTLReadReq, MVTLWriteLockReply,
                       MVTLWriteLockReq, OverloadedReply, PurgeReq,
                       ReleaseReq, ReplicaHoldReply, ReplicaHoldReq, Reply,
                       Request, SnapshotReadReply, SnapshotReadReq,
                       SyncDelta, SyncDone, SyncPoke, SyncReq,
                       TwoPLCommitReq, TwoPLLockReply, TwoPLLockReq,
                       TwoPLReleaseReq)

__all__ = ["MVTLServer", "TwoPLServer", "BohmSequencerServer"]

#: Dedup-log marker: request arrived and is being executed (or parked) but
#: has not produced a reply yet.
_IN_PROGRESS = object()

#: Dedup-log marker primed at restart from the WAL: the request was fully
#: applied before the crash but its cached reply is gone.  A retry is
#: counted and dropped (never re-executed); the client's own RPC timeout
#: already covers the lost-reply case.
_APPLIED = object()

#: Sentinel distinguishing "no pending buffer entry" from a buffered None.
_MISSING = object()

#: Service-cost class per message type (see MVTLServer._service_time):
#: 1 = control notification, 2 = per-item batch, 3 = per-entry sync batch;
#: absent = full-weight data request.  An exact-type dict lookup replaces
#: three isinstance chains on the per-request service-time path.
_WEIGHT_KIND: dict[type, int] = {
    CommitReq: 1, GcReq: 1, ReleaseReq: 1, FreezeWriteReq: 1,
    FreezeReadReq: 1, PurgeReq: 1, EpochReq: 1, HeartbeatReq: 1,
    SyncReq: 1, SyncPoke: 1,
    MVTLBatchLockReq: 2, ReplicaHoldReq: 2,
    SyncDelta: 3,
}


class _Resubmit:
    """Internal envelope for un-parking: bypasses the request-dedup check.

    A parked request is re-submitted through the service queue when the
    lock state changes; without the envelope the dedup log would mistake
    the re-submission for a network duplicate and drop it.
    """

    __slots__ = ("req",)

    def __init__(self, req: Any) -> None:
        self.req = req


class _ServerBase:
    """Shared wiring: service queue, network registration, parking, dedup."""

    #: Bound on the request-dedup log.  Entries are only needed while a
    #: client might still retry the request — a few RPC timeouts — so FIFO
    #: eviction of the oldest entries is safe at any realistic rate.
    _REQ_LOG_MAX = 8192

    def __init__(self, sim: Simulator, net: Network, server_id: Hashable,
                 profile: TestbedProfile, rng: np.random.Generator, *,
                 queue_capacity: int | None = None) -> None:
        self.sim = sim
        self.net = net
        self.server_id = server_id
        self.profile = profile
        self.queue = ServiceQueue(sim, profile.service_time,
                                  profile.server_concurrency, rng,
                                  self._on_request,
                                  capacity=queue_capacity,
                                  class_fn=self._request_class,
                                  shed_fn=self._on_shed,
                                  expired_fn=self._request_expired)
        net.register(server_id, self.queue.submit)
        self.crashed = False
        #: Bumped on every restart; stamped on MVTL replies (epoch fencing).
        self.epoch = 0
        #: (client, req_id) -> _IN_PROGRESS | cached Reply.  Makes request
        #: handling idempotent under client retry and link duplication.
        self._req_log: OrderedDict[tuple, Any] = OrderedDict()
        self._parked: dict[Hashable, list[Any]] = {}
        #: Park time per waiting request (messages are frozen dataclasses,
        #: so requests are keyed by identity).  Only the obs layer reads
        #: these durations, so the dict is maintained *only* when a
        #: recording tracer is attached — with tracing off, parking does
        #: no obs bookkeeping at all.
        self._parked_at: dict[int, float] = {}
        #: Per-key contended-access counts (parks, partial/refused grants).
        self.conflicts: dict[Hashable, int] = {}
        #: Attach point for the obs layer (see :mod:`repro.obs`); the
        #: cluster assigns a recording tracer after construction.
        self.tracer: Any = NULL_TRACER
        self.stats = {"requests": 0, "parked": 0, "dup_requests": 0,
                      "restarts": 0, "shed": 0, "expired": 0}

    def _handle(self, msg: Any) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- overload control --------------------------------------------------

    @staticmethod
    def _unwrap(msg: Any) -> Any:
        return msg.req if isinstance(msg, _Resubmit) else msg

    def _request_class(self, msg: Any) -> int:
        """Queue class: 0 = critical/control (never shed), 1 = sheddable.

        Parked-request re-submissions keep the class of the request they
        carry (the envelope is transparent).  Control notifications ride in
        class 0: they free locks and slots — shedding them would turn
        overload into leaked state.
        """
        req = self._unwrap(msg)
        if isinstance(req, SHEDDABLE_REQUESTS) and not req.critical:
            return 1
        return 0

    def _request_expired(self, msg: Any) -> bool:
        """Deadline check at the head of the queue (stale-work drop)."""
        req = self._unwrap(msg)
        deadline = getattr(req, "deadline", None)
        if deadline is None or self.sim.now <= deadline:
            return False
        self.stats["expired"] += 1
        return True

    def _on_shed(self, msg: Any) -> None:
        """Bounded-queue rejection: reply OVERLOADED instead of parking.

        The explicit reply is the point of the shed policy — the client
        learns *immediately* that the server is saturated (and feeds its
        circuit breaker) instead of burning an RPC timeout against a queue
        that would never have reached its request.
        """
        req = self._unwrap(msg)
        self.stats["shed"] += 1
        if isinstance(req, Request):
            self._reply(req, OverloadedReply(req.req_id))

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: detach from the network, finish nothing in flight."""
        if self.crashed:
            return
        self.crashed = True
        self.net.unregister(self.server_id)
        self.queue.drop_pending()

    def restart(self) -> None:
        """Rejoin with empty volatile state (Theorems 8-10 recovery model).

        Parked requests, the dedup log and (in subclasses) the lock state
        are volatile and do not survive; the epoch bump lets clients whose
        locks evaporated detect the restart from our next reply.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.epoch += 1
        self.stats["restarts"] += 1
        self._parked.clear()
        self._parked_at.clear()
        self._req_log.clear()
        self.net.register(self.server_id, self.queue.submit)

    # -- request dedup -----------------------------------------------------

    def _on_request(self, msg: Any) -> None:
        """Queue handler: dedup by (client, req_id), then dispatch."""
        if self.crashed:
            return  # a crashed CPU finishes nothing
        if msg.__class__ is _Resubmit:
            self._handle(msg.req)
            return
        if isinstance(msg, Request):
            key = (msg.client, msg.req_id)
            prior = self._req_log.get(key)
            if prior is not None:
                # Retry or link duplicate: never execute twice.  If the
                # first run already replied, re-send that reply (the
                # original may have been lost); if it is still in progress
                # (parked, or awaiting consensus), it will reply itself.
                self.stats["dup_requests"] += 1
                if isinstance(prior, Reply):
                    self.net.send(msg.client, prior, src=self.server_id)
                return
            self._req_log[key] = _IN_PROGRESS
            while len(self._req_log) > self._REQ_LOG_MAX:
                self._req_log.popitem(last=False)
        self._handle(msg)

    def _reply(self, req: Any, reply: Any) -> None:
        if isinstance(req, Request):
            key = (req.client, req.req_id)
            if key in self._req_log:
                self._req_log[key] = reply
        self.net.send(req.client, reply, src=self.server_id)

    def _park(self, key: Hashable, req: Any) -> None:
        self._parked.setdefault(key, []).append(req)
        if self.tracer.enabled:
            self._parked_at[id(req)] = self.sim.now
        self._note_conflict(key)
        self.stats["parked"] += 1

    def _note_conflict(self, key: Hashable) -> None:
        self.conflicts[key] = self.conflicts.get(key, 0) + 1

    def _end_wait(self, key: Hashable, req: Any) -> None:
        """Close out a parked request's wait span (granted or dropped)."""
        if not self.tracer.enabled:
            return
        parked_at = self._parked_at.pop(id(req), None)
        if parked_at is not None:
            self.tracer.wait(req.tx_id, key, dur=self.sim.now - parked_at,
                             server=self.server_id)

    def _unpark(self, key: Hashable) -> None:
        """Re-submit everything waiting on ``key`` (lock state changed)."""
        waiting = self._parked.pop(key, None)
        if waiting:
            for req in waiting:
                self._end_wait(key, req)
                self.queue.submit(_Resubmit(req))

    def _drop_parked(self, tx_id: Hashable) -> None:
        """Discard parked requests of an aborted transaction.

        Without this, a request parked on behalf of a transaction whose
        coordinator has already given up would eventually be granted and
        leave orphaned locks behind.
        """
        for key in list(self._parked):
            remaining = []
            for r in self._parked[key]:
                if r.tx_id != tx_id:
                    remaining.append(r)
                else:
                    self._end_wait(key, r)
            if remaining:
                self._parked[key] = remaining
            else:
                del self._parked[key]


class MVTLServer(_ServerBase):
    """The MVTL-family storage server (serves both MVTIL and MVTO+ clients)."""

    #: How much each extra state record per key inflates request cost.
    #: Models the slower version/lock searches of a grown store ("a larger
    #: state makes it slower to search for and access versions", §8.4.5).
    #: Calibrated against Fig. 7: ~100 records/key after ~10 unpurged
    #: minutes costs ~1.4x — while the handful of records/key accumulated
    #: within a normal measurement window costs only a few percent.
    STATE_COST_FACTOR = 0.004
    #: Recompute the (expensive) aggregate state metric this often.
    _STATE_REFRESH = 512

    def __init__(self, sim: Simulator, net: Network, server_id: Hashable,
                 profile: TestbedProfile, rng: np.random.Generator,
                 registry: CommitmentRegistry, *,
                 write_lock_timeout: float = 2.0,
                 consensus: Any | None = None,
                 history: Any | None = None,
                 queue_capacity: int | None = None,
                 durable: DurableStore | None = None,
                 replicated: bool = False) -> None:
        super().__init__(sim, net, server_id, profile, rng,
                         queue_capacity=queue_capacity)
        self.registry = registry
        #: Simulated disk (checkpoint + WAL).  None = the original model
        #: where the in-memory version store survives restarts unexamined.
        self.durable = durable
        #: True when this server is part of a replication group (r > 1):
        #: enables the commit-time read-span mirror grants that keep a
        #: promoted follower's frozen-read state equal to its leader's.
        self.replicated = replicated
        #: Highest GC purge bound applied here — the snapshot-read
        #: stability frontier (every commit below it is present locally).
        self.stable_floor: Timestamp | None = None
        #: Set on every restart and never cleared: commits may have been
        #: applied elsewhere while this server was down, so its store is
        #: not a complete prefix and snapshot reads must be refused.
        self.snapshot_dirty = False
        #: Commit applications performed (freshness rank for failover).
        self.applied_commits = 0
        #: Durably-logged (client, req_id) pairs, oldest first: the dedup
        #: entries a checkpoint captures and a restart re-primes.
        self._durable_dedup: OrderedDict[tuple, None] = OrderedDict()
        #: Optional shared History: commits applied *server-side* are
        #: recorded here too, covering coordinators that crash after the
        #: decision but before recording (their writes are still installed
        #: by the write-lock-timeout/CommitReq path and must be visible to
        #: the MVSG checker as committed, not phantom).
        self.history = history
        #: Optional PaxosConsensus: when set, transaction outcomes are
        #: decided by real message-passing consensus over the acceptor set
        #: (§H.1 "servers may fail" mode) instead of the in-sim object.
        self.consensus = consensus
        # Stable digest, not hash(): string hashing is per-process
        # randomized and proposer ids must be reproducible across runs.
        self._proposer_id = (zlib.crc32(str(server_id).encode())
                             % (2**20) + 2**20)
        self.write_lock_timeout = write_lock_timeout
        self.locks = LockTable()
        self.store = VersionStore()
        #: Buffered values awaiting freeze: (tx, key) -> value (Alg. 13 l.3).
        self.pending: dict[tuple[Hashable, Hashable], Any] = {}
        # -- anti-entropy state (DESIGN.md §5h) --
        #: Leader side: (follower, gids) -> (session, entries, floor) — a
        #: stable enumeration of committed state, materialized once per
        #: session nonce and served in cursor batches.  Volatile: a restart
        #: invalidates it (the epoch bump aborts in-flight runs).
        self._sync_sessions: dict[tuple, tuple] = {}
        #: Follower side: gids -> mutable run state of one sync session.
        self._sync_runs: dict[tuple, dict] = {}
        #: The full servability plan ((leader, gids), ...) whose completed
        #: sessions clear ``snapshot_dirty``; None while no plan is active.
        self._sync_plan: tuple | None = None
        #: Session nonces + request ids survive restarts (monotonic across
        #: the server's lifetime) so a post-restart run can never alias a
        #: leader's cached pre-crash session or dedup entry.
        self._sync_session_seq = 0
        self._sync_req_seq = 0
        #: When servability was last lost (restart or recruitment
        #: mark-dirty); cleared — and the latency recorded — when a full
        #: sync plan completes.
        self._dirty_since: float | None = None
        #: Restart-to-servable latencies, one per completed re-sync.
        self.resync_latencies: list[float] = []
        self._state_multiplier = 1.0
        self._state_refresh_at = 0
        self.queue.service_time_fn = self._service_time
        self._dispatch = {cls: getattr(self, name)
                          for cls, name in self._HANDLERS.items()}

    def restart(self) -> None:
        """Rejoin after a crash: locks and buffered values are volatile and
        are lost.  Without a DurableStore the version store object simply
        survives (the original "durable storage" model); with one, the
        store is rebuilt from the last checkpoint plus WAL tail replay and
        the request-dedup log is re-primed from the logged commit
        ``(client, req_id)`` pairs, so a client retry of an
        already-applied commit is dropped instead of re-executed."""
        if not self.crashed:
            return
        self.locks = LockTable()
        self.pending.clear()
        if self.durable is not None:
            rec = self.durable.recover(
                aborted=lambda tx: self.registry.decision_of(tx) == ABORT)
            self.store = rec.store
            self.stable_floor = rec.stable_floor
            self._durable_dedup = OrderedDict(
                (tuple(p), None) for p in rec.dedup)
            while len(self._durable_dedup) > self._REQ_LOG_MAX:
                self._durable_dedup.popitem(last=False)
            # The store was rebuilt wholesale: recompute the state-size
            # service multiplier at the next served request.
            self._state_refresh_at = 0
        self.snapshot_dirty = True
        self._dirty_since = self.sim.now
        # Sync state is volatile: cached sessions die with the epoch bump
        # (aborting every in-flight run against us) and our own runs are
        # forgotten — the controller's next poke starts a fresh plan.
        self._sync_sessions.clear()
        self._sync_runs.clear()
        self._sync_plan = None
        super().restart()
        if self.durable is not None:
            # Re-derive dedup decisions for committed transactions: their
            # requests were applied pre-crash even though the reply cache
            # is gone (satellite (a) — the volatile-dedup-cache bug).
            for pair in self._durable_dedup:
                self._req_log[pair] = _APPLIED

    #: Relative CPU cost of control notifications (commit/gc/release/
    #: purge) vs. data requests: they carry no value payload and do no
    #: version search — in the prototype they are cheap latched updates,
    #: not full skip-list operations.
    CONTROL_MSG_WEIGHT = 0.3

    def _service_time(self, msg: Any = None) -> float:
        """Per-request service time: type weight x state inflation (Fig. 7)."""
        if self.queue.requests_served >= self._state_refresh_at:
            self._state_refresh_at = (self.queue.requests_served
                                      + self._STATE_REFRESH)
            keys = max(1, self.store.key_count())
            records = (self.locks.total_record_count()
                       + self.store.version_count())
            per_key = records / keys
            # Baseline is ~2 records/key (one version + one lock interval).
            self._state_multiplier = 1.0 + self.STATE_COST_FACTOR * max(
                0.0, per_key - 2.0)
        kind = _WEIGHT_KIND.get(msg.__class__)
        if kind is None:  # data request (read / write lock / snapshot read)
            weight = 1.0
        elif kind == 1:  # control notification
            weight = self.CONTROL_MSG_WEIGHT
        elif kind == 2:
            # A batch saves messages, not lock work: it costs one data
            # request per item it carries.
            weight = float(max(1, len(msg.items)))
        else:
            # Applying a sync batch is one cheap guarded install per entry.
            weight = self.CONTROL_MSG_WEIGHT * max(1, len(msg.entries))
        return self.profile.service_time * self._state_multiplier * weight

    # -- dispatch -----------------------------------------------------------

    #: Message type -> handler method name; bound per instance in
    #: ``__init__`` so a single exact-type dict lookup replaces the
    #: 16-branch isinstance chain on every request.
    _HANDLERS: dict[type, str] = {
        MVTLReadReq: "_handle_read",
        MVTLWriteLockReq: "_handle_write_lock",
        MVTLBatchLockReq: "_handle_batch_lock",
        FreezeWriteReq: "_handle_freeze_write",
        FreezeReadReq: "_handle_freeze_read",
        CommitReq: "_handle_commit_req",
        GcReq: "_handle_gc",
        ReleaseReq: "_handle_release",
        PurgeReq: "_handle_purge",
        ReplicaHoldReq: "_handle_replica_hold",
        SnapshotReadReq: "_handle_snapshot_read",
        HeartbeatReq: "_handle_heartbeat",
        SyncReq: "_handle_sync_req",
        SyncDelta: "_handle_sync_delta",
        SyncPoke: "_handle_sync_poke",
        EpochReq: "_handle_epoch_req",
    }

    def _handle_heartbeat(self, msg: HeartbeatReq) -> None:
        self._reply(msg, HeartbeatReply(msg.req_id,
                                        server=self.server_id,
                                        epoch=self.epoch,
                                        applied=self.applied_commits,
                                        dirty=self.snapshot_dirty))

    def _handle_epoch_req(self, msg: EpochReq) -> None:
        self._reply(msg, EpochReply(msg.req_id, epoch=self.epoch))

    def _handle(self, msg: Any) -> None:
        self.stats["requests"] += 1
        handler = self._dispatch.get(msg.__class__)
        if handler is None:
            raise TypeError(f"MVTLServer got unknown message {msg!r}")
        handler(msg)

    # -- reads ---------------------------------------------------------------

    def _handle_read(self, req: MVTLReadReq) -> None:
        """Read + read-lock a contiguous interval (Alg. 13 lines 5-7).

        Picks ``tr`` = latest version below ``req.upper``, then grants read
        locks on the contiguous range just above ``tr``, truncated at the
        first frozen write lock.  On an *unfrozen* write conflict: park if
        ``req.wait`` (MVTO+), else grant the conflict-free prefix (MVTIL).
        """
        key = req.key
        state = self.locks.state(key)
        version = self.store.latest_before(key, req.upper)
        if version is None:
            self._reply(req, MVTLReadReply(req.req_id,
                                           epoch=self.epoch))  # purged
            return
        if version.ts >= req.upper:
            self._reply(req, MVTLReadReply(req.req_id, tr=version.ts,
                                           value=version.value,
                                           locked=EMPTY_SET,
                                           epoch=self.epoch))
            return
        # The hottest handler in every workload — run it on flat scalar
        # quads (see core.intervals), materializing interval objects only
        # for the reply.  want = (tr, upper] = [succ(tr), upper] closed.
        tr = version.ts
        up = req.upper
        tr_v = tr.value
        tr_p1 = tr.pid + 1
        up_v = up.value
        up_p = up.pid
        want_flat = (tr_v, tr_p1, up_v, up_p)
        fwr = state.frozen_write_ranges()
        avail = iv_subtract(want_flat, fwr.flat) if fwr.flat else want_flat
        # The lockable range must still contain succ(tr): pieces are
        # sorted and ⊆ want, so that means the first piece starts AT it.
        if not avail or avail[0] != tr_v or avail[1] != tr_p1:
            # A frozen write sits immediately above tr: with freeze+install
            # atomic on the server this cannot happen (the floor lookup
            # would have found that version), but purge/floor races are
            # answered conservatively with an unprotected read.
            self._reply(req, MVTLReadReply(req.req_id, tr=version.ts,
                                           value=version.value,
                                           locked=EMPTY_SET,
                                           epoch=self.epoch))
            return
        first_flat = avail if len(avail) == 4 else avail[:4]
        probe = state.lockable(req.tx_id, LockMode.READ,
                               IntervalSet._from_flat(first_flat))
        # The contiguous grantable prefix adjacent to the version read:
        # acquired ⊆ first starts at succ(tr) only via its first piece.
        af = probe.acquired.flat
        if af and af[0] == tr_v and af[1] == tr_p1:
            prefix_flat = af if len(af) == 4 else af[:4]
            phi_v = prefix_flat[2]
            phi_p = prefix_flat[3]
        else:
            prefix_flat = None
        floor = req.floor if req.floor is not None else up
        flo_v = floor.value
        flo_p = floor.pid
        reaches_floor = (prefix_flat is not None
                         and (phi_v > flo_v
                              or (phi_v == flo_v and phi_p >= flo_p)))
        # Waiting only helps if an *unfrozen* conflict is what limits the
        # prefix; a frozen truncation (first.hi < upper) never moves.
        # prefix ⊆ first shares its lo, so "shorter" is just hi inequality.
        unfrozen_limited = (prefix_flat is None
                            or phi_v != first_flat[2]
                            or phi_p != first_flat[3])
        if req.wait and not reaches_floor and unfrozen_limited:
            # "Waiting if write-locked but not frozen": the usable prefix
            # does not reach what the client needs yet; park until the
            # conflicting (unfrozen) locks move.
            self._park(key, req)
            return
        if prefix_flat is None or phi_v != up_v or phi_p != up_p:
            # Another transaction's lock truncated the read's lockable
            # range — a contended access even though nobody waited.
            self._note_conflict(key)
        locked = EMPTY_SET
        if prefix_flat is not None:
            # prefix came out of probe.acquired just above and the handler
            # is atomic, so the conflict check needn't be repeated.
            locked = IntervalSet._from_flat(prefix_flat)
            state.grant(req.tx_id, LockMode.READ, locked)
            self.locks.note_owner(req.tx_id, key)
        self._reply(req, MVTLReadReply(req.req_id, tr=version.ts,
                                       value=version.value, locked=locked,
                                       epoch=self.epoch))

    # -- write locks -----------------------------------------------------------

    def _handle_write_lock(self, req: MVTLWriteLockReq) -> None:
        """Acquire write locks and buffer the value (Alg. 13 lines 1-4)."""
        key = req.key
        state = self.locks.state(key)
        probe = state.lockable(req.tx_id, LockMode.WRITE, req.want)
        if not probe.fully_acquired:
            if req.wait and not probe.any_frozen_conflict:
                self._park(key, req)
                return
            self._note_conflict(key)
            if req.all_or_nothing:
                self._reply(req, MVTLWriteLockReply(req.req_id,
                                                    acquired=EMPTY_SET,
                                                    epoch=self.epoch))
                return
        state.grant(req.tx_id, LockMode.WRITE, probe.acquired)
        acquired_total = state.held(req.tx_id, LockMode.WRITE).intersect(
            req.want)
        if not acquired_total.is_empty:
            self.locks.note_owner(req.tx_id, key)
            self.pending[(req.tx_id, key)] = req.value
            self.sim.schedule(self.write_lock_timeout,
                              self._write_lock_timeout, req.tx_id, key)
        self._reply(req, MVTLWriteLockReply(req.req_id,
                                            acquired=acquired_total,
                                            epoch=self.epoch))

    def _handle_batch_lock(self, req: MVTLBatchLockReq) -> None:
        """Apply a per-server batch of non-waiting write-lock requests.

        Each ``(key, value, want)`` item runs the single-key write-lock
        logic (probe, conflict note, acquire, buffer value, arm the
        write-lock timeout) and contributes its grant to one combined
        reply.  Items are independent: a refused key does not roll back its
        batch-mates — the client decides what a partial batch means (MVTIL
        shrinks its interval; all-or-nothing clients abort and release).
        """
        acquired: dict[Hashable, IntervalSet] = {}
        for key, value, want in req.items:
            state = self.locks.state(key)
            probe = state.lockable(req.tx_id, LockMode.WRITE, want)
            if not probe.fully_acquired:
                self._note_conflict(key)
                if req.all_or_nothing:
                    acquired[key] = EMPTY_SET
                    continue
            state.grant(req.tx_id, LockMode.WRITE, probe.acquired)
            got = state.held(req.tx_id, LockMode.WRITE).intersect(want)
            acquired[key] = got
            if not got.is_empty:
                self.locks.note_owner(req.tx_id, key)
                self.pending[(req.tx_id, key)] = value
                self.sim.schedule(self.write_lock_timeout,
                                  self._write_lock_timeout, req.tx_id, key)
        self._reply(req, MVTLBatchLockReply(req.req_id, acquired=acquired,
                                            epoch=self.epoch))

    def _write_lock_timeout(self, tx_id: Hashable, key: Hashable) -> None:
        """Alg. 13 write-lock-timeout: suspect the coordinator."""
        if (tx_id, key) not in self.pending:
            return  # already frozen or released
        state = self.locks.peek(key)
        if state is None:
            return
        held = state.held(tx_id, LockMode.WRITE)
        frozen = state.frozen(tx_id, LockMode.WRITE)
        if held.is_empty or held == frozen:
            return
        def apply(decision: Any) -> None:
            if (tx_id, key) not in self.pending:
                return  # resolved while consensus was running
            if decision == ABORT:
                self._drop_tx_on_key(tx_id, key)
                self._unpark(key)
            else:
                value = self._apply_commit(tx_id, key, decision)
                self._log_commit(tx_id, decision, ((key, value),))
                # The coordinator is suspected dead, so no CommitReq will
                # seal this key: release the write-locked span outside the
                # frozen commit point ourselves (the decided transaction
                # can never install at another timestamp).  Unfrozen read
                # locks stay — conservatively — until GC purges them.
                st = self.locks.peek(key)
                if st is not None:
                    residual = st.held(tx_id, LockMode.WRITE).subtract(
                        st.frozen(tx_id, LockMode.WRITE))
                    if not residual.is_empty:
                        st.release(tx_id, LockMode.WRITE, residual)
                        self._unpark(key)

        self._decide(tx_id, ABORT, apply)

    # -- commit / abort ----------------------------------------------------------

    def _handle_freeze_write(self, req: FreezeWriteReq) -> None:
        """Alg. 13 receive-freeze-write-lock: propose commit, apply decision."""

        def apply(decision: Any) -> None:
            if decision == ABORT:
                self._drop_tx_on_key(req.tx_id, req.key)
                self._unpark(req.key)
                return
            value = self._apply_commit(req.tx_id, req.key, decision)
            self._log_commit(req.tx_id, decision, ((req.key, value),))

        self._decide(req.tx_id, req.ts, apply)

    def _apply_commit(self, tx_id: Hashable, key: Hashable,
                      ts: Timestamp, fallback: Any = None) -> Any:
        value = self.pending.pop((tx_id, key), _MISSING)
        if value is _MISSING:
            # The pending buffer is volatile: if we crashed and restarted
            # between lock install and commit, the buffered value is gone
            # and the commit notification's redo payload supplies it.
            value = fallback
        state = self.locks.state(key)
        state.freeze(tx_id, LockMode.WRITE, TsInterval.point(ts))
        if self.store.version_at(key, ts) is None:
            self.store.install(key, ts, value)
        if self.history is not None:
            # Server-side record: survives coordinators that crash after
            # the decision but before recording their own commit.
            self.history.record_commit_key(tx_id, ts, key)
        self.applied_commits += 1
        # Other write-locked timestamps of tx stay until gc/release.
        self._unpark(key)
        return value

    def _log_commit(self, tx_id: Hashable, ts: Timestamp,
                    entries: tuple, client: Any = None,
                    req_id: Any = None) -> None:
        """WAL a commit application (one record = all keys this server
        installed for the transaction, so a torn tail is all-or-nothing).

        Always logged when durability is on — even when every install was
        skipped because the write-lock-timeout path got there first — so
        the ``(client, req_id)`` pair seeds the restart dedup cache.
        Replay is install-guarded, which makes the duplicate records of
        the timeout-then-CommitReq race idempotent.
        """
        if self.durable is None:
            return
        self.durable.log_commit(tx_id, ts, entries, client, req_id)
        if client is not None:
            self._durable_dedup[(client, req_id)] = None
            while len(self._durable_dedup) > self._REQ_LOG_MAX:
                self._durable_dedup.popitem(last=False)
        self.durable.maybe_checkpoint(self.store,
                                      tuple(self._durable_dedup),
                                      self.stable_floor)

    def _decide(self, tx_id: Hashable, outcome: Any,
                callback: Any) -> None:
        """Obtain the transaction's decision, then run ``callback(decision)``.

        Local mode decides synchronously via the shared commitment object;
        Paxos mode runs a proposer coroutine over the acceptor quorum and
        applies the callback when consensus completes (locks stay held —
        and block others — exactly until then, as in Alg. 13).
        """
        if self.consensus is None:
            callback(self.registry.get(tx_id).propose(outcome))
            return
        cached = self.consensus.decided(tx_id)
        if cached is not None:
            callback(cached)
            return

        def proc():
            decision = yield from self.consensus.propose(
                tx_id, outcome, proposer_id=self._proposer_id)
            callback(decision)

        self.sim.spawn(proc(), name=f"{self.server_id}-decide")

    def _handle_commit_req(self, req: CommitReq) -> None:
        """Atomic commit application: propose, freeze+install, GC (§8.1)."""

        def apply(decision: Any) -> None:
            if decision == ABORT:
                self._release_tx(req.tx_id, write_only=False)
                if req.ack:
                    self._reply(req, CommitAck(req.req_id, epoch=self.epoch))
                return
            entries = tuple(
                (key, self._apply_commit(req.tx_id, key, decision,
                                         fallback=req.values.get(key)))
                for key in req.write_keys)
            self._log_commit(req.tx_id, decision, entries,
                             client=req.client, req_id=req.req_id)
            for key, span in req.spans.items():
                if self.replicated:
                    # Follower read-span mirror: this member never saw the
                    # transaction's reads, so it holds no read lock to
                    # freeze.  Grant-then-freeze the span here — without
                    # it, a post-promotion writer could install inside a
                    # committed reader's span (an MVSG violation the
                    # leader's frozen read lock was preventing).  The
                    # mirrored write grants equal the leader's, so the
                    # span is conflict-free by construction.
                    state = self.locks.state(key)
                    if state.held(req.tx_id, LockMode.READ).is_empty:
                        state.try_acquire(req.tx_id, LockMode.READ, span)
                        self.locks.note_owner(req.tx_id, key)
                    state.freeze(req.tx_id, LockMode.READ, span)
                    continue
                state = self.locks.peek(key)
                if state is not None:
                    state.freeze(req.tx_id, LockMode.READ, span)
            # Seal the ended transaction's permanent locks.  With
            # release=True only the frozen prefix survives (Alg. 11 gc);
            # with release=False every read lock is kept — the MVTO+/no-GC
            # behaviour where read-timestamps persist and state accumulates
            # (Fig. 6).
            self._seal_tx(req.tx_id, keep_all_reads=not req.release)
            if req.ack:
                # Reliable fan-out: confirm application so the client stops
                # retrying this member (the cached reply answers link dups).
                self._reply(req, CommitAck(req.req_id, epoch=self.epoch))

        self._decide(req.tx_id, req.ts, apply)

    def _handle_freeze_read(self, req: FreezeReadReq) -> None:
        state = self.locks.peek(req.key)
        if state is not None:
            state.freeze(req.tx_id, LockMode.READ, req.span)

    def _handle_gc(self, req: GcReq) -> None:
        """Freeze the read spans, then release everything else of tx here."""
        for key, span in req.spans.items():
            state = self.locks.peek(key)
            if state is not None:
                state.freeze(req.tx_id, LockMode.READ, span)
        if req.release:
            self._release_tx(req.tx_id, write_only=False)

    def _handle_release(self, req: ReleaseReq) -> None:
        self._release_tx(req.tx_id, write_only=req.write_only)

    def _release_tx(self, tx_id: Hashable, write_only: bool) -> None:
        """End-of-transaction lock cleanup, sealing what must persist.

        ``write_only=True`` is the MVTO+ abort: unfrozen write locks go,
        but the read locks persist as read-timestamps (sealed).
        ``write_only=False`` drops everything unfrozen and seals the frozen
        remainder.
        """
        self._seal_tx(tx_id, keep_all_reads=write_only)

    def _seal_tx(self, tx_id: Hashable, keep_all_reads: bool) -> None:
        self._drop_parked(tx_id)
        # keys_of returns a frozenset: iterate in sorted order so waiter
        # wake-ups happen in the same order every run (reproducibility).
        for key in sorted(self.locks.keys_of(tx_id), key=str):
            state = self.locks.peek(key)
            if state is not None:
                state.seal(tx_id, keep_all_reads=keep_all_reads)
            self.pending.pop((tx_id, key), None)
            self._unpark(key)
        self.locks.forget_owner(tx_id)

    def _drop_tx_on_key(self, tx_id: Hashable, key: Hashable) -> None:
        """Release tx's unfrozen locks on one key (timeout-abort path)."""
        state = self.locks.peek(key)
        if state is not None:
            state.seal(tx_id, keep_all_reads=False)
        self.pending.pop((tx_id, key), None)

    # -- purge (§6, §8.1) ----------------------------------------------------------

    def _handle_purge(self, req: PurgeReq) -> None:
        bound_iv = TsInterval.closed_open(
            Timestamp(float("-inf"), 0), req.bound)
        purged = self.store.purge_before(req.bound)
        for key in self.locks.all_keys():
            self.locks.purge_below(key, bound_iv)
        self.stats["purged_versions"] = (
            self.stats.get("purged_versions", 0) + purged)
        if self.stable_floor is None or req.bound > self.stable_floor:
            self.stable_floor = req.bound
        if self.durable is not None:
            self.durable.log_purge(req.bound)
            self.durable.maybe_checkpoint(self.store,
                                          tuple(self._durable_dedup),
                                          self.stable_floor)

    # -- replication (§5e) -------------------------------------------------

    def _handle_replica_hold(self, req: ReplicaHoldReq) -> None:
        """Mirror leader-granted write locks (+ pending values) on a
        follower.

        Each item carries the exact interval the group leader granted and
        the transaction's buffered value, so any quorum member can finish
        the commit alone.  The ordinary write-lock timeout is armed on
        every mirrored hold: if the coordinator dies, a promoted follower
        resolves the hold through the commitment registry exactly like a
        leader would — decided commits install, the rest abort.
        """
        mirrored = True
        for key, value, want in req.items:
            state = self.locks.state(key)
            probe = state.lockable(req.tx_id, LockMode.WRITE, want)
            if not probe.fully_acquired:
                # Leftover sealed/foreign state blocks the mirror (can
                # happen after this follower was itself promoted and back-
                # demoted).  The client counts this against the quorum.
                self._note_conflict(key)
                mirrored = False
            state.grant(req.tx_id, LockMode.WRITE, probe.acquired)
            got = state.held(req.tx_id, LockMode.WRITE).intersect(want)
            if not got.is_empty:
                self.locks.note_owner(req.tx_id, key)
                self.pending[(req.tx_id, key)] = value
                self.sim.schedule(self.write_lock_timeout,
                                  self._write_lock_timeout, req.tx_id, key)
        if mirrored:
            self.stats["holds_mirrored"] = (
                self.stats.get("holds_mirrored", 0) + 1)
        self._reply(req, ReplicaHoldReply(req.req_id, mirrored=mirrored,
                                          epoch=self.epoch))

    def _unfrozen_write_at_or_below(self, key: Hashable,
                                    ts: Timestamp) -> bool:
        """Is any *undecided* write lock at or below ``ts`` on ``key``?

        A snapshot read at the stable frontier must refuse if one exists:
        the owner could still commit inside the read's past.  (It cannot
        in practice — live transactions run a GC horizon above the
        frontier — but the server-side check is what makes the read safe
        by construction rather than by timing.)
        """
        state = self.locks.peek(key)
        if state is None:
            return False
        for owner in state.owners():
            held = state.held(owner, LockMode.WRITE)
            if held.is_empty:
                continue
            unfrozen = held.subtract(state.frozen(owner, LockMode.WRITE))
            if not unfrozen.is_empty and unfrozen.min_member() <= ts:
                return True
        return False

    def _handle_snapshot_read(self, req: SnapshotReadReq) -> None:
        """Lock-free follower read at a locked (GC-frontier) timestamp.

        Refused unless this replica can prove the timestamp is stable
        here: it has applied the purge that defined the frontier
        (``stable_floor``), it never crashed with commits possibly missed
        (``snapshot_dirty``), and no undecided write lock sits at or below
        the timestamp.  The refusal is cheap — the client falls back to
        the leader, then to an interval read.
        """
        self.stats["snapshot_reads"] = (
            self.stats.get("snapshot_reads", 0) + 1)
        # Classify the refusal (first failing guard wins) so anti-entropy
        # progress is observable: "dirty" refusals must vanish once a full
        # sync plan completes, while "floor" lag is routine GC cadence.
        version = None
        if self.snapshot_dirty:
            reason = "dirty"
        elif self.stable_floor is None or req.ts > self.stable_floor:
            reason = "floor"
        elif self._unfrozen_write_at_or_below(req.key, req.ts):
            reason = "unfrozen"
        else:
            version = self.store.latest_before(req.key, req.ts)
            reason = "missing" if version is None else None
        if reason is not None:
            self.stats["snapshot_refused"] = (
                self.stats.get("snapshot_refused", 0) + 1)
            key = f"snapshot_refused_{reason}"
            self.stats[key] = self.stats.get(key, 0) + 1
            self._reply(req, SnapshotReadReply(req.req_id, ok=False,
                                               epoch=self.epoch))
            return
        if self.stats.get("resyncs"):
            # Re-earned servability is non-vacuous: this server lost its
            # snapshot and is serving follower reads again (the bench
            # asserts this fires for every restarted/recruited member).
            self.stats["snapshot_served_resynced"] = (
                self.stats.get("snapshot_served_resynced", 0) + 1)
        self._reply(req, SnapshotReadReply(req.req_id, ok=True,
                                           tr=version.ts,
                                           value=version.value,
                                           epoch=self.epoch))

    # -- anti-entropy (DESIGN.md §5h) ---------------------------------------

    def _handle_sync_poke(self, poke: SyncPoke) -> None:
        """Controller nudge: start/continue sync sessions per ``sources``.

        Pokes are the loss-recovery mechanism — one arrives every
        controller tick, so a run whose delta was dropped just re-requests
        its current cursor.  A healthy run also streams on its own (each
        delta immediately triggers the next request), making the poke
        redundant there; the duplicate delta is dropped by cursor match.
        """
        if poke.mark_dirty and not self.snapshot_dirty:
            # Recruitment prologue: drop servability *before* membership
            # changes, and invalidate any stale full plan — completing one
            # enumerated before this moment must not re-clear the flag.
            self.snapshot_dirty = True
            self._dirty_since = self.sim.now
            self._sync_plan = None
        if poke.full:
            self._sync_plan = poke.sources
        for leader, gids in poke.sources:
            if leader == self.server_id:
                continue
            run = self._sync_runs.get(gids)
            if (run is not None and run["leader"] == leader
                    and run["full"] == poke.full):
                if not run["done"]:
                    self._send_sync_req(run)
                elif not poke.full:
                    # Completed recruitment session: re-notify the
                    # controller (the previous SyncDone may have been lost).
                    self.net.send(poke.origin,
                                  SyncDone(server=self.server_id, gids=gids,
                                           session=run["session"]),
                                  src=self.server_id)
                continue
            self._sync_session_seq += 1
            run = {"gids": gids, "leader": leader,
                   "session": self._sync_session_seq, "cursor": 0,
                   "done": False, "floor": None, "epoch": None,
                   "batch": max(1, poke.batch),
                   "num_groups": poke.num_groups,
                   "full": poke.full, "origin": poke.origin}
            self._sync_runs[gids] = run
            self.stats["sync_sessions"] = (
                self.stats.get("sync_sessions", 0) + 1)
            self._send_sync_req(run)
        if poke.full:
            self._maybe_finish_resync()

    def _send_sync_req(self, run: dict) -> None:
        """One pull of the run's current cursor.  Every send draws a fresh
        request id: the leader's dedup layer then only collapses *link*
        duplicates (same id), while deliberate re-pulls after a lost delta
        are re-executed — a cheap cached-session slice."""
        self._sync_req_seq += 1
        req = SyncReq("__sync__", self.server_id, self._sync_req_seq,
                      gids=run["gids"], session=run["session"],
                      cursor=run["cursor"], batch=run["batch"],
                      num_groups=run["num_groups"])
        self.stats["sync_reqs"] = self.stats.get("sync_reqs", 0) + 1
        self.net.send(run["leader"], req, src=self.server_id)

    def _handle_sync_req(self, req: SyncReq) -> None:
        """Leader side: serve one batch of a cached session enumeration.

        The enumeration is materialized once per session nonce — a stable
        list the cursor walks even as new commits land (those reach the
        follower through the ordinary fan-out, which it has been applying
        all along; the session only back-fills what it missed while down).
        ``floor`` is the stable GC floor at materialization: together with
        the locked-timestamp argument (nothing can commit below the floor
        anymore) it bounds what the follower must prove covered.
        """
        skey = (req.client, req.gids)
        sess = self._sync_sessions.get(skey)
        if sess is None or sess[0] != req.session:
            gidset = set(req.gids)
            entries = []
            for key, versions, _floor in sorted(self.store.snapshot(),
                                                key=lambda c: str(c[0])):
                if group_index(key, req.num_groups) not in gidset:
                    continue
                for ts, value in versions:
                    if ts == TS_ZERO:
                        continue  # implicit base version, never shipped
                    entries.append((key, ts, value))
            sess = (req.session, tuple(entries), self.stable_floor)
            self._sync_sessions[skey] = sess
        _, entries, floor = sess
        lo = min(req.cursor, len(entries))
        hi = min(lo + max(1, req.batch), len(entries))
        self.stats["sync_batches_served"] = (
            self.stats.get("sync_batches_served", 0) + 1)
        self._reply(req, SyncDelta(req.req_id, gids=req.gids,
                                   session=req.session, cursor=lo,
                                   next_cursor=hi, entries=entries[lo:hi],
                                   done=hi >= len(entries), floor=floor,
                                   epoch=self.epoch))

    def _handle_sync_delta(self, d: SyncDelta) -> None:
        """Follower side: apply one batch, WAL it, pull the next.

        Stale, duplicated and reordered deltas are dropped by the
        (session, cursor) match.  A leader epoch change mid-run aborts the
        run: the enumeration we were walking died with the leader's
        restart, and its post-restart store is itself dirty — continuing
        would let an incomplete leader vouch for our completeness.
        """
        run = self._sync_runs.get(d.gids)
        if (run is None or run["session"] != d.session or run["done"]
                or d.cursor != run["cursor"]):
            return
        if run["epoch"] is None:
            run["epoch"] = d.epoch
        elif d.epoch != run["epoch"]:
            del self._sync_runs[d.gids]
            self.stats["sync_aborted"] = (
                self.stats.get("sync_aborted", 0) + 1)
            return
        installed = []
        for key, ts, value in d.entries:
            # Guarded install: the version may have arrived through the
            # ordinary commit fan-out while the session was in flight.
            if self.store.version_at(key, ts) is None:
                self.store.install(key, ts, value)
                installed.append((key, ts, value))
        if installed:
            self.stats["sync_installs"] = (
                self.stats.get("sync_installs", 0) + len(installed))
            if self.durable is not None:
                # Sync installs must be as durable as commit installs:
                # after the plan clears snapshot_dirty, a crash must
                # recover a state the servability proof still covers.
                self.durable.log_sync(tuple(installed))
                self.durable.maybe_checkpoint(self.store,
                                              tuple(self._durable_dedup),
                                              self.stable_floor)
        self.stats["sync_deltas"] = self.stats.get("sync_deltas", 0) + 1
        run["cursor"] = d.next_cursor
        if not d.done:
            self._send_sync_req(run)
            return
        run["done"] = True
        run["floor"] = d.floor
        if run["full"]:
            self._maybe_finish_resync()
        else:
            self.net.send(run["origin"],
                          SyncDone(server=self.server_id, gids=run["gids"],
                                   session=run["session"]),
                          src=self.server_id)

    def _maybe_finish_resync(self) -> None:
        """Clear ``snapshot_dirty`` once the active full plan is complete.

        Every session of the plan shipped its leader's *entire* committed
        state for the covered groups (a clean leader's state is a complete
        commit prefix), and commits decided after each enumeration reach
        us through the ordinary fan-out we have been applying since
        restart.  Jointly that covers everything at or below the GC floor
        — and above it, up to the fan-out's own loss model — so the
        snapshot-read guards are sound again.  The adopted stable floor is
        the most conservative session floor (a None floor means that
        leader never purged, i.e. the session was the whole history and
        constrains nothing).
        """
        if not self.snapshot_dirty or self._sync_plan is None:
            return
        floors = []
        for leader, gids in self._sync_plan:
            run = self._sync_runs.get(gids)
            if run is None or run["leader"] != leader or not run["done"]:
                return
            if run["floor"] is not None:
                floors.append(run["floor"])
        self.snapshot_dirty = False
        self._sync_plan = None
        self.stats["resyncs"] = self.stats.get("resyncs", 0) + 1
        if self._dirty_since is not None:
            self.resync_latencies.append(self.sim.now - self._dirty_since)
            self._dirty_since = None
        if floors:
            adopted = min(floors)
            if self.stable_floor is None or adopted > self.stable_floor:
                self.stable_floor = adopted

    # -- metrics ---------------------------------------------------------------

    def lock_record_count(self) -> int:
        return self.locks.total_record_count()

    def version_count(self) -> int:
        return self.store.version_count()


class _TwoPLKey:
    __slots__ = ("readers", "writer", "waitq", "value", "version_ts")

    def __init__(self) -> None:
        self.readers: set[Hashable] = set()
        self.writer: Hashable | None = None
        self.waitq: list[TwoPLLockReq] = []
        self.value: Any = None
        self.version_ts: Timestamp | None = None


class TwoPLServer(_ServerBase):
    """Strict-2PL storage server: one readers-writer lock per key (§8.1).

    Waiters queue FIFO; the client enforces the deadlock-prevention timeout
    (a timed-out client aborts and sends releases — the server then drops
    its queued requests and held locks).
    """

    #: Same control-message discount as the MVTL server (fairness).
    CONTROL_MSG_WEIGHT = 0.3

    def __init__(self, sim: Simulator, net: Network, server_id: Hashable,
                 profile: TestbedProfile, rng: np.random.Generator, *,
                 queue_capacity: int | None = None) -> None:
        super().__init__(sim, net, server_id, profile, rng,
                         queue_capacity=queue_capacity)
        self._keys: dict[Hashable, _TwoPLKey] = {}
        self._aborted: set[Hashable] = set()
        self.queue.service_time_fn = self._service_time

    def _service_time(self, msg: Any = None) -> float:
        weight = (self.CONTROL_MSG_WEIGHT
                  if isinstance(msg, (TwoPLCommitReq, TwoPLReleaseReq,
                                      PurgeReq))
                  else 1.0)
        return self.profile.service_time * weight

    def _handle(self, msg: Any) -> None:
        self.stats["requests"] += 1
        if isinstance(msg, TwoPLLockReq):
            self._handle_lock(msg)
        elif isinstance(msg, TwoPLCommitReq):
            self._handle_commit(msg)
        elif isinstance(msg, TwoPLReleaseReq):
            self._handle_tx_release(msg)
        elif isinstance(msg, PurgeReq):
            pass  # single-version store: nothing to purge
        else:
            raise TypeError(f"TwoPLServer got unknown message {msg!r}")

    def _key(self, key: Hashable) -> _TwoPLKey:
        entry = self._keys.get(key)
        if entry is None:
            entry = self._keys[key] = _TwoPLKey()
        return entry

    def _handle_lock(self, req: TwoPLLockReq) -> None:
        if req.tx_id in self._aborted:
            return  # client gave up; drop silently
        entry = self._key(req.key)
        if self._compatible(entry, req):
            self._grant(entry, req)
        else:
            entry.waitq.append(req)
            if self.tracer.enabled:
                self._parked_at[id(req)] = self.sim.now
            self._note_conflict(req.key)
            self.stats["parked"] += 1

    def _compatible(self, entry: _TwoPLKey, req: TwoPLLockReq) -> bool:
        if req.write:
            writer_ok = entry.writer in (None, req.tx_id)
            readers_ok = not (entry.readers - {req.tx_id})
            return writer_ok and readers_ok
        return entry.writer in (None, req.tx_id)

    def _grant(self, entry: _TwoPLKey, req: TwoPLLockReq) -> None:
        if req.write:
            entry.readers.discard(req.tx_id)
            entry.writer = req.tx_id
        elif entry.writer != req.tx_id:
            entry.readers.add(req.tx_id)
        value = entry.value if entry.version_ts is not None else BOTTOM
        version_ts = entry.version_ts if entry.version_ts is not None else TS_ZERO
        self._reply(req, TwoPLLockReply(req.req_id, granted=True,
                                        value=value, version_ts=version_ts))

    def _handle_commit(self, req: TwoPLCommitReq) -> None:
        for key, value in req.writes.items():
            entry = self._key(key)
            entry.value = value
            entry.version_ts = req.commit_ts
            self._release_key(entry, req.tx_id)
        for key in req.release_keys:
            self._release_key(self._key(key), req.tx_id)

    def _handle_tx_release(self, req: TwoPLReleaseReq) -> None:
        self._aborted.add(req.tx_id)
        for key in req.keys:
            entry = self._keys.get(key)
            if entry is not None:
                remaining = []
                for r in entry.waitq:
                    if r.tx_id != req.tx_id:
                        remaining.append(r)
                    else:
                        self._end_wait(key, r)
                entry.waitq = remaining
                self._release_key(entry, req.tx_id)

    def _release_key(self, entry: _TwoPLKey, tx_id: Hashable) -> None:
        entry.readers.discard(tx_id)
        if entry.writer == tx_id:
            entry.writer = None
        # Grant waiters in FIFO order while compatible.
        progressed = True
        while progressed and entry.waitq:
            progressed = False
            head = entry.waitq[0]
            if head.tx_id in self._aborted:
                entry.waitq.pop(0)
                self._end_wait(head.key, head)
                progressed = True
                continue
            if self._compatible(entry, head):
                entry.waitq.pop(0)
                self._end_wait(head.key, head)
                self._grant(entry, head)
                progressed = True

    # -- metrics ---------------------------------------------------------------

    def lock_record_count(self) -> int:
        return sum(len(e.readers) + (1 if e.writer else 0)
                   for e in self._keys.values())

    def version_count(self) -> int:
        return sum(1 for e in self._keys.values()
                   if e.version_ts is not None)


class BohmSequencerServer(_ServerBase):
    """The Bohm baseline's single sequencing + execution node.

    Whole pre-declared transactions arrive as
    :class:`~repro.dist.messages.BohmSubmitReq`; arrival order at this
    server's service queue *is* the serialization order (the
    :class:`~repro.baselines.bohm.BohmEngine` stamps each submission with
    the next total-order timestamp).  Execution is batched: a batch runs
    when ``batch_size`` submissions have accumulated or when the periodic
    flush timer finds pending work, and every transaction's reply is sent
    at its batch's execution — the batching latency Bohm trades for its
    zero-conflict-abort guarantee.

    The dedup log in :class:`_ServerBase` keeps retried/duplicated submits
    at-least-once safe: a retry of an already-sequenced transaction never
    enters the engine twice, it just waits for (or re-receives) the cached
    reply.  There is no recovery protocol — the sequencer is the one
    authority and its state is volatile — so the cluster layer refuses
    crash chaos for this protocol, exactly like 2PL.
    """

    def __init__(self, sim: Simulator, net: Network, server_id: Hashable,
                 profile: TestbedProfile, rng: np.random.Generator, *,
                 history: Any | None = None,
                 queue_capacity: int | None = None,
                 batch_size: int = 16,
                 flush_interval: float = 0.01) -> None:
        super().__init__(sim, net, server_id, profile, rng,
                         queue_capacity=queue_capacity)
        self.engine = BohmEngine(history=history, batch_size=batch_size)
        self.flush_interval = flush_interval
        #: BohmTx.id -> the submit request awaiting its batch's reply.
        self._waiting: dict[int, BohmSubmitReq] = {}
        sim.schedule(flush_interval, self._flush_tick)

    @property
    def store(self) -> VersionStore:
        return self.engine.store

    # -- dispatch ------------------------------------------------------------

    def _handle(self, msg: Any) -> None:
        if isinstance(msg, BohmSubmitReq):
            self._handle_submit(msg)
        elif isinstance(msg, PurgeReq):
            self.engine.purge_before(msg.bound)
        elif isinstance(msg, EpochReq):
            self._reply(msg, EpochReply(msg.req_id, epoch=self.epoch))
        elif isinstance(msg, (ReleaseReq, GcReq)):
            pass  # lock-free: nothing to release or collect
        else:
            raise TypeError(f"BohmSequencerServer got unknown message "
                            f"{msg!r}")

    def _handle_submit(self, req: BohmSubmitReq) -> None:
        tx = self.engine.submit(req.spec, pid=0)
        self._waiting[tx.id] = req
        if len(self.engine._pending) >= self.engine.batch_size:
            self._run_batch()

    def _flush_tick(self) -> None:
        if not self.crashed and self.engine._pending:
            self._run_batch()
        self.sim.schedule(self.flush_interval, self._flush_tick)

    def _run_batch(self) -> None:
        for tx in self.engine.run_batch():
            req = self._waiting.pop(tx.id, None)
            if req is None:
                continue  # submitter unknown (crashed client cleanup)
            self._reply(req, BohmSubmitReply(
                req.req_id, committed=tx.committed,
                commit_ts=tx.ts if tx.committed else None,
                abort_reason=(str(tx.abort_reason)
                              if tx.abort_reason is not None else None),
                epoch=self.epoch))

    # -- metrics ---------------------------------------------------------------

    def lock_record_count(self) -> int:
        return 0  # Bohm's defining property

    def version_count(self) -> int:
        return self.engine.version_count()
