"""Benchmark harness regenerating the paper's Figures 1-7."""

from .figures import (figure1_concurrency_local, figure2_concurrency_cloud,
                      figure3_write_fraction, figure4_small_transactions,
                      figure5_num_servers, figure6_7_state_and_gc, full_mode)
from .reporting import FigurePoint, FigureResult, format_figure, save_figure

__all__ = [
    "figure1_concurrency_local", "figure2_concurrency_cloud",
    "figure3_write_fraction", "figure4_small_transactions",
    "figure5_num_servers", "figure6_7_state_and_gc", "full_mode",
    "FigurePoint", "FigureResult", "format_figure", "save_figure",
]
