"""Regeneration of every figure in §8 (Figures 1-7).

Each ``figure_N`` function sweeps the same parameters as the paper's
experiment and returns a :class:`~repro.bench.reporting.FigureResult` with
one point per (x, protocol).  Two fidelity levels:

* **quick** (default) — fewer sweep points, shorter measurement windows;
  finishes in minutes and preserves every qualitative claim (who wins, where
  the crossovers are).  Used by ``pytest benchmarks/``.
* **full** — the paper's sweep ranges (set ``REPRO_FULL=1``); slower.

Time compression for the state/GC experiments (Figs. 6-7): the paper runs
for 150-600 s with a 15 s purge horizon.  We shrink the key space so state
*per key* grows several times faster, and shrink horizon/duration by the
same factor — the figures' content (linear growth vs bounded state; flat vs
degrading throughput; small GC overhead) is preserved on a laptop-scale
budget.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..dist.cluster import ClusterConfig, ClusterResult, run_cluster
from ..sim.testbed import CLOUD_TESTBED, LOCAL_TESTBED, TestbedProfile
from ..workload.generator import WorkloadConfig
from .reporting import FigurePoint, FigureResult, RunObservations

__all__ = [
    "full_mode", "sweep_protocols", "use_runner",
    "figure1_concurrency_local", "figure2_concurrency_cloud",
    "figure3_write_fraction", "figure4_small_transactions",
    "figure5_num_servers", "figure6_7_state_and_gc",
]

# Pluggable single-run executor.  Figure functions submit every cluster run
# through the top of this stack; ``repro.exp`` pushes recording / replaying
# runners to fan the same (config x seed) grid over a worker pool without
# duplicating any sweep logic here.  The default executes in-process.
_RUNNER_STACK: list[Callable[[ClusterConfig], ClusterResult]] = [run_cluster]


@contextmanager
def use_runner(runner: Callable[[ClusterConfig], ClusterResult]
               ) -> Iterator[None]:
    """Route all cluster runs issued inside the block through ``runner``."""
    _RUNNER_STACK.append(runner)
    try:
        yield
    finally:
        _RUNNER_STACK.pop()


def _execute(config: ClusterConfig) -> ClusterResult:
    return _RUNNER_STACK[-1](config)

#: Protocol sets as plotted in the paper.
ALL_PROTOCOLS = ("mvto", "2pl", "mvtil-early", "mvtil-late")
FIG3_PROTOCOLS = ("mvto", "2pl", "mvtil-early")


def full_mode() -> bool:
    """Whether to run the paper's full sweep ranges (env REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def _mean_result(config: ClusterConfig, seeds: Sequence[int],
                 obs: RunObservations | None = None):
    """Average throughput / commit rate over repetitions (§8.3: 5 reps).

    With ``obs`` set, every run is traced (``ClusterConfig.trace``) and its
    result collected for the figure's observability sidecars.  Tracing does
    not perturb the simulation, so the numbers are identical either way.
    """
    thr, cr, mpc = [], [], []
    for seed in seeds:
        cfg = replace(config, seed=seed, trace=obs is not None)
        res = _execute(cfg)
        if obs is not None:
            obs.add(res)
        thr.append(res.throughput)
        cr.append(res.commit_rate)
        mpc.append(res.messages_per_commit)
    return (float(np.mean(thr)), float(np.mean(cr)), float(np.mean(mpc)))


def sweep_protocols(base: ClusterConfig, xs: Iterable[float],
                    protocols: Sequence[str], seeds: Sequence[int],
                    apply_x,
                    obs: RunObservations | None = None) -> list[FigurePoint]:
    """Run ``protocols`` x ``xs`` and collect figure points.

    ``apply_x(config, x)`` returns the config for that sweep value.
    """
    points = []
    for x in xs:
        for proto in protocols:
            config = apply_x(replace(base, protocol=proto), x)
            thr, cr, mpc = _mean_result(config, seeds, obs)
            points.append(FigurePoint(
                x=x, protocol=proto, throughput=thr, commit_rate=cr,
                extra={"messages_per_commit": mpc}))
    return points


# ---------------------------------------------------------------------------
# Figure 1: effect of concurrency level, local test bed
# ---------------------------------------------------------------------------

def figure1_concurrency_local(seeds: Sequence[int] = (1,),
                              obs: RunObservations | None = None
                              ) -> FigureResult:
    """Throughput & commit rate vs #clients; 20 ops, 25% writes, 10K keys,
    3 servers (local)."""
    full = full_mode()
    clients = [30, 90, 150, 300, 450, 600] if full else [30, 150, 600]
    measure = 3.0 if full else 1.5
    base = ClusterConfig(
        profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=10_000, tx_size=20,
                                write_fraction=0.25),
        warmup=0.5, measure=measure)
    points = sweep_protocols(
        base, clients, ALL_PROTOCOLS, seeds,
        lambda cfg, x: replace(cfg, num_clients=int(x)), obs)
    return FigureResult(
        figure="fig1", title="Effect of concurrency level (local test bed)",
        x_label="# clients", points=points,
        notes="20 ops/tx, 25% writes, 10K keys, 3 servers")


# ---------------------------------------------------------------------------
# Figure 2: effect of concurrency level, cloud test bed
# ---------------------------------------------------------------------------

def figure2_concurrency_cloud(seeds: Sequence[int] = (1,),
                              obs: RunObservations | None = None
                              ) -> FigureResult:
    """Same sweep as Fig. 1 on the cloud profile; 50K keys, 8 servers."""
    full = full_mode()
    clients = [25, 100, 200, 300, 400] if full else [25, 150, 400]
    measure = 3.0 if full else 1.5
    base = ClusterConfig(
        profile=CLOUD_TESTBED,
        workload=WorkloadConfig(num_keys=50_000, tx_size=20,
                                write_fraction=0.25),
        warmup=0.5, measure=measure)
    points = sweep_protocols(
        base, clients, ALL_PROTOCOLS, seeds,
        lambda cfg, x: replace(cfg, num_clients=int(x)), obs)
    return FigureResult(
        figure="fig2", title="Effect of concurrency level (cloud test bed)",
        x_label="# clients", points=points,
        notes="20 ops/tx, 25% writes, 50K keys, 8 servers")


# ---------------------------------------------------------------------------
# Figure 3: effect of write fraction
# ---------------------------------------------------------------------------

def figure3_write_fraction(seeds: Sequence[int] = (1,),
                           obs: RunObservations | None = None
                           ) -> FigureResult:
    """Throughput & commit rate vs % writes; 90 clients, local, 10K keys."""
    full = full_mode()
    fractions = ([0.0, 0.1, 0.25, 0.5, 0.75, 1.0] if full
                 else [0.0, 0.25, 0.5, 1.0])
    measure = 3.0 if full else 1.5
    base = ClusterConfig(
        profile=LOCAL_TESTBED, num_clients=90,
        workload=WorkloadConfig(num_keys=10_000, tx_size=20),
        warmup=0.5, measure=measure)
    points = sweep_protocols(
        base, fractions, FIG3_PROTOCOLS, seeds,
        lambda cfg, x: replace(cfg, workload=replace(cfg.workload,
                                                     write_fraction=x)),
        obs)
    return FigureResult(
        figure="fig3", title="Effect of fraction of writes",
        x_label="write fraction", points=points,
        notes="90 clients, 20 ops/tx, 10K keys, local test bed")


# ---------------------------------------------------------------------------
# Figure 4: small transactions
# ---------------------------------------------------------------------------

def figure4_small_transactions(seeds: Sequence[int] = (1,),
                               obs: RunObservations | None = None
                               ) -> FigureResult:
    """8-op transactions, 50% writes: 2PL slightly ahead at low concurrency,
    MVTIL ahead as concurrency grows."""
    full = full_mode()
    clients = [15, 60, 150, 300, 450, 600] if full else [15, 150, 600]
    measure = 3.0 if full else 1.5
    base = ClusterConfig(
        profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=10_000, tx_size=8,
                                write_fraction=0.5),
        warmup=0.5, measure=measure)
    points = sweep_protocols(
        base, clients, ALL_PROTOCOLS, seeds,
        lambda cfg, x: replace(cfg, num_clients=int(x)), obs)
    return FigureResult(
        figure="fig4", title="Effect of small transaction size",
        x_label="# clients", points=points,
        notes="8 ops/tx, 50% writes, 10K keys, local test bed")


# ---------------------------------------------------------------------------
# Figure 5: number of servers
# ---------------------------------------------------------------------------

def figure5_num_servers(seeds: Sequence[int] = (1,),
                        obs: RunObservations | None = None
                        ) -> FigureResult:
    """Throughput vs #servers (cloud, 400 clients, 100K keys); panels for
    75% and 50% reads are encoded in the point's ``extra['write_fraction']``."""
    full = full_mode()
    servers = [1, 5, 10, 15, 20] if full else [2, 8, 16]
    # The paper's 400 clients are needed even in quick mode: with fewer,
    # nothing is scarce and the protocols tie.
    clients = 400
    measure = 2.5 if full else 1.5
    points: list[FigurePoint] = []
    for wf in (0.25, 0.5):
        base = ClusterConfig(
            profile=CLOUD_TESTBED, num_clients=clients,
            workload=WorkloadConfig(num_keys=100_000, tx_size=20,
                                    write_fraction=wf),
            warmup=0.5, measure=measure)
        for n in servers:
            for proto in ALL_PROTOCOLS:
                cfg = replace(base, protocol=proto, num_servers=n)
                thr, cr, mpc = _mean_result(cfg, seeds, obs)
                points.append(FigurePoint(
                    x=n, protocol=f"{proto}@w{int(wf * 100)}",
                    throughput=thr, commit_rate=cr,
                    extra={"write_fraction": wf,
                           "messages_per_commit": mpc}))
    return FigureResult(
        figure="fig5", title="Effect of number of servers (cloud test bed)",
        x_label="# servers", points=points,
        notes="20 ops/tx, 100K keys; two panels: 25% and 50% writes")


# ---------------------------------------------------------------------------
# Figures 6 + 7: state size and performance over time, GC on/off
# ---------------------------------------------------------------------------

def figure6_7_state_and_gc(seeds: Sequence[int] = (1,),
                           obs: RunObservations | None = None
                           ) -> tuple[FigureResult, FigureResult]:
    """State growth (Fig. 6) and performance over time (Fig. 7).

    Time-compressed: smaller key space makes per-key state grow several
    times faster than the paper's setup, so a ~40 s simulated run shows
    what their 150-600 s runs show; the GC horizon shrinks accordingly
    (15 s -> 6 s).  Variants: MVTO+ (no GC), MVTIL-early (no GC),
    MVTIL-GC (purge service on).
    """
    full = full_mode()
    duration = 60.0 if full else 30.0
    num_clients = 20 if full else 12
    num_keys = 1_500
    sample_period = 2.0
    window = 5.0
    variants = [
        ("mvto+", "mvto", False),
        ("mvtil-early", "mvtil-early", False),
        ("mvtil-gc", "mvtil-early", True),
    ]
    state_points: list[FigurePoint] = []
    perf_points: list[FigurePoint] = []
    profile = replace(LOCAL_TESTBED, gc_horizon=6.0)
    for label, proto, gc in variants:
        cfg = ClusterConfig(
            protocol=proto, profile=profile, num_clients=num_clients,
            workload=WorkloadConfig(num_keys=num_keys, tx_size=20,
                                    write_fraction=0.5),
            warmup=0.0, measure=duration,
            gc_enabled=gc, gc_period=6.0,
            state_sample_period=sample_period,
            record_completions=True,
            seed=seeds[0], trace=obs is not None)
        res = _execute(cfg)
        if obs is not None:
            obs.add(res)
        for sample in res.state_samples:
            state_points.append(FigurePoint(
                x=sample.t, protocol=label, throughput=0.0, commit_rate=0.0,
                extra={"locks": sample.locks, "versions": sample.versions}))
        for t, thr, cr in _windowed(res, window):
            perf_points.append(FigurePoint(
                x=t, protocol=label, throughput=thr, commit_rate=cr))
    fig6 = FigureResult(
        figure="fig6", title="Number of locks and versions over time",
        x_label="time (s)", points=state_points,
        notes=f"{num_clients} clients, 50% writes, {num_keys} keys; "
              "time-compressed (see EXPERIMENTS.md)")
    fig7 = FigureResult(
        figure="fig7", title="Performance over time with GC on and off",
        x_label="time (s)", points=perf_points,
        notes="same runs as fig6; windowed throughput/commit rate")
    return fig6, fig7


def _windowed(res, window: float):
    if not res.completions:
        return []
    buckets: dict[int, list[bool]] = {}
    for t, ok in res.completions:
        buckets.setdefault(int(t // window), []).append(ok)
    out = []
    for idx in sorted(buckets):
        flags = buckets[idx]
        commits = sum(flags)
        out.append((idx * window, commits / window, commits / len(flags)))
    return out
