"""Command-line figure regeneration.

Usage::

    python -m repro.bench fig1            # one figure
    python -m repro.bench all             # everything
    REPRO_FULL=1 python -m repro.bench fig2   # the paper's full sweep
    python -m repro.bench fig1 --seeds 1 2 3 --out results/

Prints each figure as an ASCII table and saves the raw points as JSON.
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import (figure1_concurrency_local, figure2_concurrency_cloud,
                      figure3_write_fraction, figure4_small_transactions,
                      figure5_num_servers, figure6_7_state_and_gc)
from .reporting import (RunObservations, format_figure, save_figure,
                        save_observability)

FIGURES = {
    "fig1": figure1_concurrency_local,
    "fig2": figure2_concurrency_cloud,
    "fig3": figure3_write_fraction,
    "fig4": figure4_small_transactions,
    "fig5": figure5_num_servers,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures (§8).")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + ["fig6", "fig7", "all"],
                        help="which figure to regenerate")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1],
                        help="seeds to average over (paper: 5 repetitions)")
    parser.add_argument("--out", default="benchmarks/results",
                        help="directory for raw JSON output")
    parser.add_argument("--trace", action="store_true",
                        help="attach a repro.obs tracer to every run and "
                             "write <figure>.trace.jsonl + "
                             "<figure>.metrics.json sidecars "
                             "(inspect with `python -m repro.obs report`)")
    args = parser.parse_args(argv)

    wanted = (sorted(FIGURES) + ["fig6"] if args.figure == "all"
              else [args.figure])
    for name in wanted:
        start = time.time()
        obs = RunObservations() if args.trace else None
        kwargs = {"seeds": tuple(args.seeds)}
        if obs is not None:
            kwargs["obs"] = obs
        if name in ("fig6", "fig7"):
            fig6, fig7 = figure6_7_state_and_gc(**kwargs)
            sidecar_anchor = None
            for result in (fig6, fig7):
                print(format_figure(result))
                path = save_figure(result, args.out)
                sidecar_anchor = sidecar_anchor or path
                print(f"  -> {path}  [{time.time() - start:.0f}s]\n")
            path = sidecar_anchor
        else:
            result = FIGURES[name](**kwargs)
            print(format_figure(result))
            path = save_figure(result, args.out)
            print(f"  -> {path}  [{time.time() - start:.0f}s]\n")
        if obs is not None and not obs.empty:
            trace_path, metrics_path = save_observability(obs, path)
            print(f"  -> {trace_path}")
            print(f"  -> {metrics_path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
