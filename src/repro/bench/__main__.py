"""Command-line figure regeneration.

Usage::

    python -m repro.bench fig1            # one figure
    python -m repro.bench all             # everything
    python -m repro.bench figures --workers 8   # everything, in parallel
    REPRO_FULL=1 python -m repro.bench fig2   # the paper's full sweep
    python -m repro.bench fig1 --seeds 1 2 3 --out results/
    python -m repro.bench fig4 --workers 4    # one figure, 4 worker procs
    python -m repro.bench smoke           # batched-vs-unbatched CI check
    python -m repro.bench micro           # fast-core kernel microbenchmark
    python -m repro.bench engine          # threaded striped-engine bench
    python -m repro.bench chaos           # seeded fault-injection check
    python -m repro.bench overload        # graceful-degradation ramp
    python -m repro.bench failover        # replicated leader-crash check
    python -m repro.bench selfheal        # anti-entropy self-healing check
    python -m repro.bench scenario bank-transfer   # one zoo scenario
    python -m repro.bench scenario        # the whole workload zoo
    python -m repro.bench policies        # registry-wide theorem duels

Prints each figure as an ASCII table and saves the raw points as JSON.
``smoke``, ``engine``, ``chaos`` and ``scenario`` print their report and
exit non-zero on failure instead of writing files.

``--workers N`` fans each figure's (config x seed) grid over N crash-
isolated worker processes via :mod:`repro.exp`; the merged results are
byte-identical to a serial run (see DESIGN.md §5d), so it is purely a
wall-clock lever.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import replace

from .figures import (figure1_concurrency_local, figure2_concurrency_cloud,
                      figure3_write_fraction, figure4_small_transactions,
                      figure5_num_servers, figure6_7_state_and_gc)
from .reporting import (RunObservations, format_figure, save_figure,
                        save_observability)

FIGURES = {
    "fig1": figure1_concurrency_local,
    "fig2": figure2_concurrency_cloud,
    "fig3": figure3_write_fraction,
    "fig4": figure4_small_transactions,
    "fig5": figure5_num_servers,
}


def run_smoke(seed: int = 7) -> int:
    """CI check: batching must change the wire cost, not the outcomes.

    Runs each MVTL-family protocol twice with the same seed — commit-path
    batching on and off — on a low-contention workload where every attempt
    commits, and asserts (a) both runs produce identical commit/abort
    outcomes (all commits, zero aborts: the strongest outcome equality that
    survives batching's different message timing) and (b) batching strictly
    lowers messages per commit.
    """
    from ..dist.cluster import ClusterConfig, run_cluster
    from ..sim.testbed import LOCAL_TESTBED
    from ..workload.generator import WorkloadConfig

    base = ClusterConfig(
        profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=200_000, tx_size=6,
                                write_fraction=0.25),
        num_clients=12, seed=seed, warmup=0.25, measure=1.0)
    print("== smoke: batched vs unbatched commit path (same seed) ==")
    print(f"{'protocol':>12s} {'mode':>10s} {'committed':>10s} "
          f"{'aborted':>8s} {'msgs/commit':>12s}")
    failures = []
    for proto in ("mvtil-early", "mvtil-late", "mvto"):
        results = {}
        for batching in (True, False):
            res = run_cluster(replace(base, protocol=proto,
                                      batching=batching))
            results[batching] = res
            mode = "batched" if batching else "unbatched"
            print(f"{proto:>12s} {mode:>10s} {res.committed:>10d} "
                  f"{res.aborted:>8d} {res.messages_per_commit:>12.1f}")
        for batching, res in results.items():
            if res.aborted or not res.committed:
                failures.append(
                    f"{proto} batching={batching}: expected all-commit "
                    f"outcomes, got {res.committed} commits / "
                    f"{res.aborted} aborts")
        if (results[True].messages_per_commit
                >= results[False].messages_per_commit):
            failures.append(
                f"{proto}: batching did not reduce messages per commit "
                f"({results[True].messages_per_commit:.1f} >= "
                f"{results[False].messages_per_commit:.1f})")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("smoke: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_chaos(seed: int = 11) -> int:
    """CI check: seeded chaos runs survive faults correctly (§H, Thms 8-10).

    Each scenario runs a cluster under a lossy/duplicating/spiking network
    with coordinator crashes and (where the backend supports it) server
    crash/restart pairs, twice with the same seed, and asserts:

    * determinism — both runs produce identical outcomes and identical
      injected-fault counters (same seed, same chaos);
    * safety — every surviving committed history is MVSG-serializable
      (Theorem 8 carries over to the surviving transactions);
    * liveness — after the settle window no unfrozen write lock is still
      owned by a crashed coordinator: the write-lock timeout + commitment
      object reclaimed them all (Theorems 9-10).
    """
    from ..dist.cluster import ClusterConfig, run_cluster
    from ..dist.failure import ChaosConfig
    from ..sim.network import LinkFaults
    from ..sim.testbed import LOCAL_TESTBED
    from ..verify import check_serializable
    from ..workload.generator import WorkloadConfig

    faults = LinkFaults(loss=0.05, duplicate=0.02, delay_spike=0.01)
    base = ClusterConfig(
        profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=5_000, tx_size=4,
                                write_fraction=0.5),
        num_clients=10, seed=seed, warmup=0.25, measure=1.5,
        write_lock_timeout=0.4, rpc_timeout=0.15, rpc_retries=3,
        faults=faults, record_history=True)
    scenarios = [
        ("mvtil-early+restarts",
         replace(base, protocol="mvtil-early",
                 chaos=ChaosConfig(client_crashes=2, server_restarts=2,
                                   downtime=0.25))),
        ("mvto+restarts",
         replace(base, protocol="mvto",
                 chaos=ChaosConfig(client_crashes=2, server_restarts=2,
                                   downtime=0.25))),
        ("mvtil-early+paxos",
         replace(base, protocol="mvtil-early", commitment="paxos",
                 chaos=ChaosConfig(client_crashes=2))),
    ]

    print("== chaos: seeded fault injection (same seed, two runs) ==")
    print(f"{'scenario':>22s} {'committed':>10s} {'aborted':>8s} "
          f"{'lost':>6s} {'dups':>6s} {'retries':>8s} {'orphans':>8s}")
    failures = []
    for label, config in scenarios:
        runs = [run_cluster(config) for _ in range(2)]
        res = runs[0]
        rep = res.chaos_report
        print(f"{label:>22s} {res.committed:>10d} {res.aborted:>8d} "
              f"{rep['messages_lost']:>6d} "
              f"{rep['messages_duplicated']:>6d} "
              f"{rep['rpc_retries']:>8d} "
              f"{rep['orphaned_write_locks']:>8d}")

        def outcome(r):
            return (r.committed, r.aborted, r.chaos_report)

        if outcome(runs[0]) != outcome(runs[1]):
            failures.append(f"{label}: same-seed runs diverged")
        if not res.committed:
            failures.append(f"{label}: no transaction survived the chaos")
        if rep["messages_lost"] == 0:
            failures.append(f"{label}: fault model injected no loss")
        if len(rep["crashed_clients"]) < config.chaos.client_crashes:
            failures.append(f"{label}: expected "
                            f"{config.chaos.client_crashes} coordinator "
                            f"crashes, got {len(rep['crashed_clients'])}")
        if rep["server_restarts"] < config.chaos.server_restarts:
            failures.append(f"{label}: expected "
                            f"{config.chaos.server_restarts} server "
                            f"restarts, got {rep['server_restarts']}")
        if rep["orphaned_write_locks"]:
            failures.append(f"{label}: {rep['orphaned_write_locks']} write "
                            f"locks still owned by crashed coordinators "
                            f"after the settle window (Thms 9-10)")
        for i, r in enumerate(runs):
            report = check_serializable(r.history)
            if not report.serializable:
                failures.append(f"{label} run {i}: history not "
                                f"MVSG-serializable: {report.error}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("chaos: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_failover(seed: int = 17) -> int:
    """CI check: replicated key ranges survive a leader crash (repro.repl).

    One cluster, replication factor 3 with WAL durability and follower
    reads, runs a write-heavy closed loop while chaos crashes the current
    leader of a random key group mid-measurement.  Runs twice with the
    same seed and asserts:

    * determinism — identical outcomes, promotions and counters;
    * zero lost committed writes — every committed write inside the
      measurement window is present on its group's *current* leader
      (modulo legitimate GC purging below the stable floor);
    * bounded failover — the controller promoted an up-to-date follower
      within ``heartbeat_interval * (miss_limit + 2)`` plus one ping of
      slack after the crash;
    * version-clean follower reads — snapshot transactions were actually
      served by followers, and both surviving histories (interval-locked
      writers *and* locked-timestamp snapshot readers together) are
      MVSG-serializable;
    * liveness — no unfrozen write lock (leader or mirrored follower
      hold) survives the settle window owned by a crashed coordinator.
    """
    from ..dist.cluster import ClusterConfig, run_cluster
    from ..dist.failure import ChaosConfig
    from ..sim.testbed import LOCAL_TESTBED
    from ..verify import check_serializable
    from ..workload.generator import WorkloadConfig

    config = ClusterConfig(
        protocol="mvtil-early",
        # Short GC horizon: the purge floor is the snapshot timestamp
        # follower reads lock, so it must advance well inside the run.
        profile=replace(LOCAL_TESTBED, gc_horizon=1.0),
        workload=WorkloadConfig(num_keys=2_000, tx_size=4,
                                write_fraction=0.3),
        num_servers=3, num_clients=10, seed=seed,
        warmup=1.5, measure=2.5, gc_period=0.2,
        write_lock_timeout=0.25, rpc_timeout=0.15,
        replication=3, durability="wal", checkpoint_every=64,
        follower_reads=True, record_history=True,
        chaos=ChaosConfig(leader_crashes=1, leader_downtime=0.6))
    latency_bound = (config.heartbeat_interval
                     * (config.heartbeat_miss_limit + 2)
                     + config.heartbeat_interval)

    print("== failover: replicated leader crash (same seed, two runs) ==")
    runs = [run_cluster(config) for _ in range(2)]
    res = runs[0]
    rep = res.replication_report
    stale = rep["read_staleness"]
    print(f"committed={res.committed} aborted={res.aborted} "
          f"commit_rate={res.commit_rate:.3f}")
    print(f"promotions={len(rep['promotions'])} "
          f"failover_latency={[round(v, 4) for v in rep['failover_latencies']]} "
          f"bound={latency_bound:.3f}")
    print(f"commits_checked={rep['commits_checked']} "
          f"lost_commits={rep['lost_commits']} "
          f"replica_missing={rep['replica_missing']}")
    print(f"follower_reads={rep['follower_reads']} "
          f"snapshot_commits={rep['snapshot_commits']} "
          f"snapshot_fallbacks={rep['snapshot_fallbacks']} "
          f"staleness_mean={stale['mean']:.4f} "
          f"staleness_max={stale['max']:.4f}")
    print(f"holds_mirrored={rep['holds_mirrored']} "
          f"wal_records={rep['wal_records']} "
          f"checkpoints={rep['checkpoints']} "
          f"heartbeats={rep['heartbeats_sent']} "
          f"orphans={res.chaos_report['orphaned_write_locks']}")

    failures = []

    def outcome(r):
        return (r.committed, r.aborted, r.messages_sent,
                r.chaos_report, r.replication_report)

    if outcome(runs[0]) != outcome(runs[1]):
        failures.append("same-seed runs diverged")
    if not res.committed:
        failures.append("no transaction survived the leader crash")
    if rep["lost_commits"]:
        failures.append(f"{rep['lost_commits']} committed writes missing "
                        f"from their group's current leader")
    if not rep["promotions"]:
        failures.append("leader crashed but no follower was promoted")
    for lat in rep["failover_latencies"]:
        if lat > latency_bound:
            failures.append(f"failover took {lat:.3f}s "
                            f"(bound {latency_bound:.3f}s)")
    if not rep["follower_reads"]:
        failures.append("no read was served by a follower replica")
    if not rep["snapshot_commits"]:
        failures.append("no read-only snapshot transaction committed")
    if res.chaos_report["orphaned_write_locks"]:
        failures.append(f"{res.chaos_report['orphaned_write_locks']} "
                        f"orphaned write locks after settle (Thms 9-10)")
    for i, r in enumerate(runs):
        report = check_serializable(r.history)
        if not report.serializable:
            failures.append(f"run {i}: history not MVSG-serializable: "
                            f"{report.error}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("failover: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_selfheal(seed: int = 17) -> int:
    """CI check: self-healing replication under compound chaos (repro.repl).

    One cluster, replication factor 3 over four servers (one outsider is
    available as recruitment stock), WAL durability, follower reads,
    anti-entropy sync, recruitment and reliable commit fan-out, runs under
    lossy links (loss + duplication + delay spikes) while chaos crashes a
    group leader *and* restarts a follower mid-measurement.  Runs twice
    with the same seed and asserts:

    * determinism — identical outcomes and counters across runs;
    * zero lost committed writes, audited by ``scan_lost_commits`` against
      the post-chaos membership (recruited replicas are only charged for
      commits after their join cutoff);
    * self-healing — every restarted server completed anti-entropy resync
      (no server still dirty at the end) and a replacement replica was
      recruited for the demoted leader's group;
    * non-vacuous recovery — resynced servers actually served follower
      reads afterwards, and dirty-refusals were observed before the sync
      (so the servability gate was exercised, not bypassed);
    * quorum safety — detector-observed live membership never dropped
      below the write quorum of 2 (of 3);
    * liveness + isolation — no orphaned write locks, and both surviving
      histories are MVSG-serializable.
    """
    from ..dist.cluster import ClusterConfig, run_cluster
    from ..dist.failure import ChaosConfig
    from ..repl import write_quorum
    from ..sim.network import LinkFaults
    from ..sim.testbed import LOCAL_TESTBED
    from ..verify import check_serializable
    from ..workload.generator import WorkloadConfig

    config = ClusterConfig(
        protocol="mvtil-early",
        profile=replace(LOCAL_TESTBED, gc_horizon=1.0),
        workload=WorkloadConfig(num_keys=2_000, tx_size=4,
                                write_fraction=0.3),
        num_servers=4, num_clients=10, seed=seed,
        warmup=1.5, measure=3.5, gc_period=0.2,
        write_lock_timeout=0.25, rpc_timeout=0.15, rpc_retries=3,
        replication=3, durability="wal", checkpoint_every=64,
        follower_reads=True, record_history=True,
        # Small sync batches stretch catch-up over many visible rounds so
        # the dirty-refusal path is actually exercised mid-run.
        anti_entropy=True, recruitment=True, reliable_fanout=True,
        sync_batch=1, heartbeat_miss_limit=5,
        faults=LinkFaults(loss=0.03, duplicate=0.02, delay_spike=0.01),
        chaos=ChaosConfig(leader_crashes=1, leader_downtime=0.6,
                          follower_restarts=1, follower_downtime=0.3))
    quorum = write_quorum(config.replication)

    print("== selfheal: leader crash + follower restart + lossy links ==")
    runs = [run_cluster(config) for _ in range(2)]
    res = runs[0]
    rep = res.replication_report
    refused = rep["snapshot_refused_by_reason"]
    print(f"committed={res.committed} aborted={res.aborted} "
          f"commit_rate={res.commit_rate:.3f}")
    print(f"promotions={len(rep['promotions'])} "
          f"recruitments={rep['recruitments']} "
          f"min_live_members={rep['min_live_members']} quorum={quorum}")
    print(f"resyncs={rep['resyncs']} "
          f"resync_latencies={[round(v, 4) for v in rep['resync_latencies']]} "
          f"sync_rounds={rep['sync_rounds']} "
          f"sync_installs={rep['sync_installs']} "
          f"sync_aborted={rep['sync_aborted']} "
          f"wal_sync_records={rep['wal_sync_records']}")
    print(f"refused_by_reason={refused} dirty_at_end={rep['dirty_at_end']} "
          f"served_resynced={rep['snapshot_served_resynced_by_server']}")
    print(f"commits_checked={rep['commits_checked']} "
          f"lost_commits={rep['lost_commits']} "
          f"replica_missing={rep['replica_missing']} "
          f"fanout_acked={rep['fanout_acked']} "
          f"fanout_unacked={rep['fanout_unacked']} "
          f"orphans={res.chaos_report['orphaned_write_locks']}")

    failures = []

    def outcome(r):
        return (r.committed, r.aborted, r.messages_sent,
                r.chaos_report, r.replication_report)

    if outcome(runs[0]) != outcome(runs[1]):
        failures.append("same-seed runs diverged")
    if not res.committed:
        failures.append("no transaction survived the chaos")
    if not rep["commits_checked"]:
        failures.append("lost-commit audit checked nothing (vacuous)")
    if rep["lost_commits"]:
        failures.append(f"{rep['lost_commits']} committed writes missing "
                        f"from their group's current leader")
    if not rep["promotions"]:
        failures.append("leader crashed but no follower was promoted")
    if not rep["recruitments"]:
        failures.append("no replacement replica was recruited after the "
                        "promotion")
    if rep["resyncs"] < 2:
        failures.append(f"expected >= 2 anti-entropy resyncs (restarted "
                        f"follower + crashed ex-leader), got "
                        f"{rep['resyncs']}")
    if rep["dirty_at_end"]:
        failures.append(f"servers still snapshot-dirty at end: "
                        f"{rep['dirty_at_end']}")
    if not refused["dirty"]:
        failures.append("no snapshot read was refused for dirtiness — the "
                        "servability gate was never exercised")
    served = rep["snapshot_served_resynced_by_server"]
    for sid in rep["resyncs_by_server"]:
        if not served.get(sid):
            failures.append(f"server {sid} resynced but never served a "
                            f"follower read afterwards (vacuous recovery)")
    if rep["min_live_members"] < quorum:
        failures.append(f"live membership dropped to "
                        f"{rep['min_live_members']} < write quorum {quorum}")
    if not rep["follower_reads"]:
        failures.append("no read was served by a follower replica")
    if res.chaos_report["orphaned_write_locks"]:
        failures.append(f"{res.chaos_report['orphaned_write_locks']} "
                        f"orphaned write locks after settle (Thms 9-10)")
    for i, r in enumerate(runs):
        report = check_serializable(r.history)
        if not report.serializable:
            failures.append(f"run {i}: history not MVSG-serializable: "
                            f"{report.error}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("selfheal: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_overload(seed: int = 13) -> int:
    """CI check: overload control degrades gracefully; unbounded collapses.

    Ramps closed-loop client counts well past the saturation point of a
    deliberately scarce cluster (few single-slot servers), twice: once with
    the overload controls on (bounded priority queues + deadlines +
    admission control) and once with the unbounded-queue baseline.
    Asserts:

    * graceful degradation — the controlled config keeps most of its peak
      goodput at the deepest overload, while the baseline loses most of
      its own peak to timeout-and-retry work amplification;
    * priority protection — the critical class (10% of transactions,
      MVTL-Prio-style) keeps its goodput and beats the normal class's
      commit rate at saturation (Theorem 3 carried into the wire
      substrate: criticals are never shed, never gated);
    * determinism — the deepest-overload controlled run, repeated with the
      same seed, reproduces identical commit/abort/shed/expired counters.
    """
    from ..dist.cluster import ClusterConfig, run_cluster
    from ..sim.testbed import CLOUD_TESTBED
    from ..workload.generator import WorkloadConfig

    # Scarce capacity on purpose: 4 single-slot servers at 1 ms/request
    # saturate near 650 txs/s for 6-op transactions — a handful of
    # closed-loop clients already fills that, so the ramp's tail is deep
    # overload, not mild pressure.
    profile = replace(CLOUD_TESTBED, num_servers=4, service_time=1e-3)
    base = ClusterConfig(
        profile=profile,
        workload=WorkloadConfig(num_keys=50_000, tx_size=6,
                                write_fraction=0.25,
                                critical_fraction=0.2),
        seed=seed, warmup=0.5, measure=2.0, protocol="mvtil-early",
        read_timeout=0.04, rpc_timeout=0.08, rpc_retries=1)
    controlled = replace(base, queue_capacity=16, tx_budget=0.15,
                         admission_control=True, breaker_threshold=8,
                         breaker_cooldown=0.1)
    loads = (4, 8, 16, 32, 64)

    print("== overload: ramp past saturation, controlled vs unbounded ==")
    print(f"{'mode':>10s} {'clients':>8s} {'goodput':>9s} {'commit%':>8s} "
          f"{'shed':>6s} {'expired':>8s} {'rejects':>8s} "
          f"{'crit g/put':>10s} {'norm g/put':>10s}")
    curves: dict[str, list] = {"controlled": [], "unbounded": []}
    for mode, cfg in (("controlled", controlled), ("unbounded", base)):
        for n in loads:
            res = run_cluster(replace(cfg, num_clients=n))
            rep = res.overload_report
            cls = rep["class_summary"]
            curves[mode].append((n, res))
            print(f"{mode:>10s} {n:>8d} {res.throughput:>9.1f} "
                  f"{res.commit_rate * 100:>7.1f}% {rep['shed']:>6d} "
                  f"{rep['expired']:>8d} {rep['admission_rejects']:>8d} "
                  f"{cls['critical']['goodput']:>10.1f} "
                  f"{cls['normal']['goodput']:>10.1f}")

    failures = []

    def retention(curve):
        peak = max(r.throughput for _, r in curve)
        final = curve[-1][1].throughput
        return final / peak if peak > 0 else 0.0

    ctrl_ret = retention(curves["controlled"])
    base_ret = retention(curves["unbounded"])
    print(f"goodput retention at {loads[-1]} clients: "
          f"controlled {ctrl_ret:.2f} vs unbounded {base_ret:.2f}")
    if ctrl_ret < 0.6:
        failures.append(
            f"controlled config lost its peak goodput under overload: "
            f"retained {ctrl_ret:.2f} of peak (need >= 0.6)")
    if base_ret >= ctrl_ret:
        failures.append(
            f"unbounded baseline did not degrade worse than the "
            f"controlled config ({base_ret:.2f} >= {ctrl_ret:.2f})")

    # Priority protection at the deepest overload point.
    deepest = curves["controlled"][-1][1]
    peak_idx = max(range(len(curves["controlled"])),
                   key=lambda i: curves["controlled"][i][1].throughput)
    peak_res = curves["controlled"][peak_idx][1]
    crit_deep = deepest.overload_report["class_summary"]["critical"]
    norm_deep = deepest.overload_report["class_summary"]["normal"]
    crit_peak = peak_res.overload_report["class_summary"]["critical"]
    if crit_deep["goodput"] < 0.9 * crit_peak["goodput"]:
        failures.append(
            f"critical goodput fell under overload: "
            f"{crit_deep['goodput']:.1f}/s at {loads[-1]} clients vs "
            f"{crit_peak['goodput']:.1f}/s at the goodput peak "
            f"(need >= 90%)")

    def commit_rate(cls):
        total = cls["committed"] + cls["aborted"]
        return cls["committed"] / total if total else 1.0

    if commit_rate(crit_deep) < commit_rate(norm_deep):
        failures.append(
            f"critical commit rate {commit_rate(crit_deep):.3f} below "
            f"normal {commit_rate(norm_deep):.3f} at saturation "
            f"(Theorem 3's distributed analogue)")

    # Seed determinism of the deepest-overload controlled run.
    rerun = run_cluster(replace(controlled, num_clients=loads[-1]))

    def fingerprint(res):
        return (res.committed, res.aborted, res.overload_report)

    if fingerprint(rerun) != fingerprint(deepest):
        failures.append("same-seed overload runs diverged "
                        "(shed/abort counters not deterministic)")

    for failure in failures:
        print(f"FAIL: {failure}")
    print("overload: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_scenarios(names: list[str] | None = None, seed: int = 1) -> int:
    """CI check: the workload zoo's invariants and theorem duels.

    Each named scenario (default: all five) runs its reference cluster
    config twice with the same seed and asserts:

    * determinism — identical outcomes, final states and scenario/overload/
      replication reports across the two runs;
    * scenario invariants — the per-scenario semantic checks (balance
      conservation for ``bank-transfer``, dense counters and order-row
      atomicity for ``orders``, follower-read engagement and no lost
      increments for ``scan-vs-oltp``, index == derive(row) for
      ``secondary-index``, controller engagement plus hot-key integrity
      and critical-class protection for ``flash-crowd``);
    * serializability — both runs' recorded histories pass the MVSG
      checker (Theorem 1 / Theorem 8);
    * the paper's per-policy theorems, as *duels* on the centralized
      engine driven by the scenario's own transaction stream:
      MVTL-epsilon-clock finishes a serial skewed-clock schedule with
      **zero** serial aborts where MVTL-TO (= MVTO+, Theorem 5) aborts
      (Theorem 4), and MVTL-Ghostbuster suffers **zero** ghost aborts
      where MVTL-TO's persistent dead read locks kill live writers
      (Theorem 7).
    """
    from ..dist.cluster import run_cluster
    from ..verify import check_serializable
    from ..workload.scenarios import (SCENARIOS, check_scenario,
                                      ghost_abort_duel, scenario_config,
                                      serial_skew_duel)

    wanted = list(SCENARIOS) if not names else list(names)
    print(f"== scenario: workload zoo (seed {seed}, two runs each) ==")
    print(f"{'scenario':>16s} {'committed':>10s} {'aborted':>8s} "
          f"{'commit%':>8s} {'quiesced':>9s} {'eps-ser':>8s} {'to-ser':>7s} "
          f"{'gb-ghost':>9s} {'to-ghost':>9s}")
    failures = []
    for name in wanted:
        config = scenario_config(name, seed=seed)
        runs = [run_cluster(config) for _ in range(2)]
        res = runs[0]

        def fingerprint(r):
            return (r.committed, r.aborted, r.messages_sent,
                    r.scenario_report, r.final_state,
                    r.overload_report, r.replication_report)

        if fingerprint(runs[0]) != fingerprint(runs[1]):
            failures.append(f"{name}: same-seed runs diverged")
        for msg in check_scenario(name, res):
            failures.append(f"{name}: {msg}")
        for i, r in enumerate(runs):
            report = check_serializable(r.history)
            if not report.serializable:
                failures.append(f"{name} run {i}: history not "
                                f"MVSG-serializable: {report.error}")

        # Theorem duels, driven by this scenario's transaction stream on
        # the centralized engine (duel seeds are fixed per duel: they pin
        # a schedule known to make the susceptible policy misbehave).
        skew = serial_skew_duel(name)
        ghost = ghost_abort_duel(name)
        eps_ser = skew["mvtl-epsilon-clock"]["serial_aborts"]
        to_ser = skew["mvtl-to"]["serial_aborts"]
        gb_ghost = ghost["mvtl-ghostbuster"]["ghost_aborts"]
        to_ghost = ghost["mvtl-to"]["ghost_aborts"]
        if eps_ser:
            failures.append(
                f"{name}: Theorem 4 violated — mvtl-epsilon-clock aborted "
                f"{eps_ser} transactions in a *serial* epsilon-synchronized "
                f"schedule")
        if not to_ser:
            failures.append(
                f"{name}: the skew duel induced no mvtl-to (MVTO+) serial "
                f"abort, so the Theorem 4 comparison is vacuous")
        if gb_ghost:
            failures.append(
                f"{name}: Theorem 7 violated — mvtl-ghostbuster suffered "
                f"{gb_ghost} ghost aborts (conflicts with dead "
                f"transactions)")
        if not to_ghost:
            failures.append(
                f"{name}: the ghost duel induced no mvtl-to ghost abort, "
                f"so the Theorem 7 comparison is vacuous")
        print(f"{name:>16s} {res.committed:>10d} {res.aborted:>8d} "
              f"{res.commit_rate * 100:>7.1f}% "
              f"{str(res.scenario_report['quiesced']):>9s} {eps_ser:>8d} "
              f"{to_ser:>7d} {gb_ghost:>9d} {to_ghost:>9d}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("scenario: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_policies(seed: int = 1) -> int:
    """CI check: the theorem duels across the *whole* policy registry.

    Runs the Theorem 4 (serial skewed-clock) and Theorem 7 (ghost abort)
    duels with ``policies = registered_policies() + ("bohm",)`` — every
    name the registry exposes plus the batched deterministic baseline —
    and prints one deterministic matrix row per policy.  Asserts the
    theorem guarantees on the policies that make them:

    * ``mvtl-epsilon-clock`` and ``bohm`` finish the serial duel with
      zero aborts (Theorem 4; Bohm is conflict-abort-free by design);
    * ``mvtl-to`` aborts in both duels — otherwise the comparisons are
      vacuous;
    * ``mvtl-ghostbuster`` and ``bohm`` score zero ghost aborts
      (Theorem 7), and ``mvtl-adaptive`` is sanity-bounded by its worst
      constituent in both duels.

    The output is byte-deterministic for a given seed: the CI job runs
    this twice and diffs the transcripts.
    """
    from ..policies.registry import registered_policies
    from ..workload.scenarios import ghost_abort_duel, serial_skew_duel

    policies = tuple(registered_policies()) + ("bohm",)
    print(f"== policies: registry-wide theorem duels (seed {seed}) ==")
    skew = serial_skew_duel(seed=100 + seed, policies=policies)
    ghost = ghost_abort_duel(seed=200 + seed, policies=policies)
    print(f"{'policy':>20s} {'serial-commits':>14s} {'serial-aborts':>13s} "
          f"{'ghost-commits':>13s} {'aborts':>7s} {'ghosts':>7s}")
    for name in policies:
        print(f"{name:>20s} {skew[name]['commits']:>14d} "
              f"{skew[name]['serial_aborts']:>13d} "
              f"{ghost[name]['commits']:>13d} "
              f"{ghost[name].get('aborts', 0):>7d} "
              f"{ghost[name]['ghost_aborts']:>7d}")

    failures = []
    for name in ("mvtl-epsilon-clock", "bohm"):
        if skew[name]["serial_aborts"]:
            failures.append(f"{name}: {skew[name]['serial_aborts']} serial "
                            f"aborts in an epsilon-synchronized serial "
                            f"schedule (Theorem 4)")
    if not skew["mvtl-to"]["serial_aborts"]:
        failures.append("mvtl-to induced no serial abort: the Theorem 4 "
                        "comparison is vacuous")
    for name in ("mvtl-ghostbuster", "bohm"):
        if ghost[name]["ghost_aborts"]:
            failures.append(f"{name}: {ghost[name]['ghost_aborts']} ghost "
                            f"aborts (Theorem 7)")
    if not ghost["mvtl-to"]["ghost_aborts"]:
        failures.append("mvtl-to induced no ghost abort: the Theorem 7 "
                        "comparison is vacuous")
    worst_serial = max(skew[p]["serial_aborts"]
                       for p in ("mvtl-to", "mvtl-pref", "mvtl-prio",
                                 "mvtl-epsilon-clock"))
    if skew["mvtl-adaptive"]["serial_aborts"] > worst_serial:
        failures.append(
            f"mvtl-adaptive scored {skew['mvtl-adaptive']['serial_aborts']} "
            f"serial aborts, worse than its worst constituent "
            f"({worst_serial})")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("policies: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0


def run_engine_bench(threads: int = 8, duration: float = 1.0,
                     keys_per_thread: int = 64) -> int:
    """Threaded MVTLEngine throughput, single-stripe vs striped.

    Two workloads: *disjoint* (each thread owns its keyset — the workload
    striping is built to parallelize) and *pairwise* (thread pairs contend
    on a shared key, exercising the blocking path where a single global
    condition wakes every waiter on every release).  Prints commits per
    second with ``stripes=1`` (the old single-condition behaviour) and the
    default stripe count, and the speedup.
    """
    from ..core.engine import DEFAULT_STRIPES, MVTLEngine
    from ..core.exceptions import TransactionAborted
    from ..policies import MVTIL, MVTLPessimistic

    def measure(stripes: int, policy, keyset_of) -> tuple[float, dict]:
        engine = MVTLEngine(policy(), default_timeout=2.0, stripes=stripes)
        commits = [0] * threads
        barrier = threading.Barrier(threads)
        deadline = [0.0]

        def worker(i: int) -> None:
            keyset = keyset_of(i)
            barrier.wait()
            n = 0
            while time.monotonic() < deadline[0]:
                tx = engine.begin(pid=i)
                try:
                    for key in {keyset[n % len(keyset)],
                                keyset[(n + 1) % len(keyset)]}:
                        engine.read(tx, key)
                        engine.write(tx, key, n)
                    if engine.commit(tx):
                        commits[i] += 1
                except TransactionAborted:
                    pass
                n += 1

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads)]
        # Set the deadline just before releasing the barrier so thread
        # start-up cost is not measured.
        deadline[0] = time.monotonic() + duration + 0.05
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        return sum(commits) / duration, engine.stripe_contention()

    workloads = (
        ("disjoint", MVTIL,
         lambda i: [f"w{i}-{j}" for j in range(keys_per_thread)]),
        ("pairwise", MVTLPessimistic,
         lambda i: [f"pair{i // 2}"]),
    )
    print(f"== engine: {threads} threads, {duration:.1f}s per config ==")
    for label, policy, keyset_of in workloads:
        throughput = {}
        for stripes in (1, DEFAULT_STRIPES):
            thr, contention = measure(stripes, policy, keyset_of)
            throughput[stripes] = thr
            print(f"  {label:>9s} stripes={stripes:>2d}: {thr:>10.0f} "
                  f"commits/s  (waits={sum(contention['waits'])}, "
                  f"conflicts={sum(contention['conflicts'])})")
        speedup = throughput[DEFAULT_STRIPES] / max(1e-9, throughput[1])
        print(f"  {label:>9s} striped speedup: {speedup:.2f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures (§8).")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + ["fig6", "fig7", "all",
                                                   "figures", "smoke",
                                                   "micro",
                                                   "engine", "chaos",
                                                   "overload", "failover",
                                                   "selfheal",
                                                   "scenario", "policies"],
                        help="which figure to regenerate ('figures' = all "
                             "figures, intended with --workers; or: 'smoke' "
                             "= batched-vs-unbatched outcome check, 'micro' "
                             "= seeded fast-core kernel microbenchmark "
                             "(interval algebra + version-chain bisects, "
                             "ops/s for the active backend), 'engine' "
                             "= threaded striped-engine throughput, 'chaos' "
                             "= seeded fault-injection safety/liveness "
                             "check, 'overload' = graceful-degradation "
                             "ramp past saturation, 'failover' = "
                             "replicated leader-crash recovery check, "
                             "'selfheal' = anti-entropy + recruitment "
                             "chaos-hardening check, "
                             "'scenario' = workload-zoo invariant + "
                             "theorem-duel check, 'policies' = registry-"
                             "wide theorem-duel matrix incl. the adaptive "
                             "selector and the Bohm baseline)")
    parser.add_argument("name", nargs="?", default=None,
                        help="scenario name for 'scenario' (omit or 'all' "
                             "= every registered scenario)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1],
                        help="seeds to average over (paper: 5 repetitions)")
    parser.add_argument("--out", default="benchmarks/results",
                        help="directory for raw JSON output")
    parser.add_argument("--workers", type=int, default=0,
                        help="fan each figure's runs over N worker "
                             "processes through repro.exp (0 = in-process "
                             "serial, the default; results are identical "
                             "either way)")
    parser.add_argument("--trace", action="store_true",
                        help="attach a repro.obs tracer to every run and "
                             "write <figure>.trace.jsonl + "
                             "<figure>.metrics.json sidecars "
                             "(inspect with `python -m repro.obs report`)")
    args = parser.parse_args(argv)

    if args.figure == "smoke":
        return run_smoke(seed=args.seeds[0])
    if args.figure == "micro":
        from .micro import run_micro
        return run_micro(seed=args.seeds[0] if args.seeds != [1] else 2026)
    if args.figure == "engine":
        return run_engine_bench()
    if args.figure == "chaos":
        return run_chaos(seed=args.seeds[0])
    if args.figure == "overload":
        return run_overload(seed=args.seeds[0])
    if args.figure == "failover":
        return run_failover(seed=args.seeds[0])
    if args.figure == "selfheal":
        return run_selfheal(seed=args.seeds[0])
    if args.figure == "policies":
        return run_policies(seed=args.seeds[0])
    if args.figure == "scenario":
        from ..workload.scenarios import SCENARIOS
        if args.name in (None, "all"):
            names = None
        elif args.name in SCENARIOS:
            names = [args.name]
        else:
            parser.error(f"unknown scenario {args.name!r}; expected one of "
                         f"{sorted(SCENARIOS)} or 'all'")
        return run_scenarios(names=names, seed=args.seeds[0])
    if args.name is not None:
        parser.error("a scenario name is only valid with 'scenario'")

    wanted = (sorted(FIGURES) + ["fig6"]
              if args.figure in ("all", "figures") else [args.figure])

    def run_fn(fn, obs):
        """One figure sweep: in-process, or fanned over the worker pool."""
        if args.workers > 0:
            from ..exp.harness import print_progress, run_figures
            result, _outcomes = run_figures(
                fn, tuple(args.seeds), args.workers, obs=obs,
                progress=print_progress)
            return result
        kwargs = {"seeds": tuple(args.seeds)}
        if obs is not None:
            kwargs["obs"] = obs
        return fn(**kwargs)

    for name in wanted:
        start = time.time()
        obs = RunObservations() if args.trace else None
        if name in ("fig6", "fig7"):
            fig6, fig7 = run_fn(figure6_7_state_and_gc, obs)
            sidecar_anchor = None
            for result in (fig6, fig7):
                print(format_figure(result))
                path = save_figure(result, args.out)
                sidecar_anchor = sidecar_anchor or path
                print(f"  -> {path}  [{time.time() - start:.0f}s]\n")
            path = sidecar_anchor
        else:
            result = run_fn(FIGURES[name], obs)
            print(format_figure(result))
            path = save_figure(result, args.out)
            print(f"  -> {path}  [{time.time() - start:.0f}s]\n")
        if obs is not None and not obs.empty:
            trace_path, metrics_path = save_observability(obs, path)
            print(f"  -> {trace_path}")
            print(f"  -> {metrics_path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
