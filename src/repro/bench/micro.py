"""Seeded microbenchmark of the fast-core kernels (``repro.bench micro``).

The full-cluster BENCH numbers mix protocol logic, the event loop, and the
kernels; this benchmark times the kernels *alone* — the interval algebra
(``iv_intersect``/``iv_union``/``iv_subtract``/``iv_contains``) and the
version-chain bisects (``floor_before``/``install``/``purge_before``) — so
a speedup (or regression) is attributable below the cluster level.

The corpus is generated from a seeded RNG and is identical for both
backends; the active backend (``repro._fastcore.BACKEND``) is whatever the
process imported, so CI runs this once per ``REPRO_FASTCORE`` setting.
When the compiled backend is active, every timed call is also cross-checked
against the pure-Python reference on a sample of the corpus — a differential
smoke on exactly the inputs being timed.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .._fastcore import (BACKEND, iv_contains, iv_intersect, iv_subtract,
                         iv_union)
from .._fastcore import kernels as _pure
from ..core.intervals import IntervalSet, TsInterval
from ..core.timestamp import Timestamp
from ..core.versions import VersionStore

__all__ = ["run_micro"]

#: Interval-set corpus size; ops run all-pairs-ish slices of it.
SETS = 400
#: Version-chain corpus: keys x versions installed per key.
VC_KEYS = 50
VC_VERSIONS = 400


def _random_set(rng: np.random.Generator, max_pieces: int = 6) -> IntervalSet:
    """A normalized interval set of 1..max_pieces random closed pieces."""
    pieces = []
    for _ in range(int(rng.integers(1, max_pieces + 1))):
        lo = float(rng.integers(0, 10_000)) / 16.0
        width = float(rng.integers(0, 500)) / 16.0
        a = Timestamp(lo, int(rng.integers(0, 4)))
        b = Timestamp(lo + width, int(rng.integers(0, 4)))
        pieces.append(TsInterval.closed(min(a, b), max(a, b)))
    return IntervalSet(pieces)


def _time(label: str, n_ops: int, fn: Callable[[], None],
          rows: list[tuple[str, int, float]]) -> None:
    start = time.perf_counter()
    fn()
    wall = time.perf_counter() - start
    rows.append((label, n_ops, wall))


def run_micro(seed: int = 2026, repeat: int = 3) -> int:
    """Time the kernel corpus ``repeat`` times; report best-of ops/s."""
    rng = np.random.default_rng(seed)
    sets = [_random_set(rng) for _ in range(SETS)]
    flats = [s.flat for s in sets]
    probes = [(float(rng.integers(0, 10_500)) / 16.0, int(rng.integers(0, 4)))
              for _ in range(SETS)]
    # Pair each set with a rotated partner: deterministic, mostly
    # overlapping (same value range), so the kernels do real merge work.
    pairs = [(flats[i], flats[(i + 1) % SETS]) for i in range(SETS)]

    # Version-chain corpus: per-key install order is a seeded shuffle of a
    # sorted timeline, so installs hit interior bisect positions.
    timelines = []
    for k in range(VC_KEYS):
        ts = [Timestamp(float(t) / 8.0, k % 4)
              for t in range(1, VC_VERSIONS + 1)]
        order = rng.permutation(VC_VERSIONS)
        timelines.append((f"k{k:04d}", ts, order))

    def bench_pairwise(op):
        def run():
            for a, b in pairs:
                op(a, b)
        return run

    def bench_contains():
        for flat, (v, p) in zip(flats, probes):
            iv_contains(flat, v, p)

    def bench_vc_install(store: VersionStore):
        def run():
            for key, ts, order in timelines:
                for i in order:
                    store.install(key, ts[i], f"v{i}")
        return run

    def bench_vc_floor(store: VersionStore):
        def run():
            for key, ts, _ in timelines:
                for t in ts:
                    store.latest_before(key, t)
        return run

    def bench_vc_purge():
        store = VersionStore()
        for key, ts, order in timelines:
            for i in order:
                store.install(key, ts[i], f"v{i}")
        bound = Timestamp(float(VC_VERSIONS) / 16.0, 0)
        store.purge_before(bound)

    print(f"== micro: fast-core kernels, backend={BACKEND}, "
          f"seed={seed}, best of {repeat} ==")
    best: dict[str, tuple[int, float]] = {}
    for _ in range(repeat):
        rows: list[tuple[str, int, float]] = []
        _time("iv_intersect", len(pairs), bench_pairwise(iv_intersect), rows)
        _time("iv_union", len(pairs), bench_pairwise(iv_union), rows)
        _time("iv_subtract", len(pairs), bench_pairwise(iv_subtract), rows)
        _time("iv_contains", len(flats), bench_contains, rows)
        store = VersionStore()
        _time("vc_install", VC_KEYS * VC_VERSIONS,
              bench_vc_install(store), rows)
        _time("vc_floor_before", VC_KEYS * VC_VERSIONS,
              bench_vc_floor(store), rows)
        _time("vc_purge_before", VC_KEYS * VC_VERSIONS, bench_vc_purge, rows)
        for label, n, wall in rows:
            prev = best.get(label)
            if prev is None or wall < prev[1]:
                best[label] = (n, wall)

    for label, (n, wall) in best.items():
        rate = n / wall if wall > 0 else float("inf")
        print(f"  {label:>16s}: {rate:>12,.0f} ops/s  "
              f"({n} ops in {wall * 1e3:.2f} ms)")

    failures = []
    if BACKEND == "c":
        # Differential smoke on the timed corpus: the compiled kernels must
        # agree with the pure reference on every sampled input.
        for a, b in pairs[:100]:
            for name, fast, pure in (
                    ("iv_intersect", iv_intersect, _pure.iv_intersect),
                    ("iv_union", iv_union, _pure.iv_union),
                    ("iv_subtract", iv_subtract, _pure.iv_subtract)):
                got, want = fast(a, b), pure(a, b)
                if got != want:
                    failures.append(f"{name}({a!r}, {b!r}): "
                                    f"c={got!r} pure={want!r}")
        for flat, (v, p) in zip(flats[:100], probes[:100]):
            if iv_contains(flat, v, p) != _pure.iv_contains(flat, v, p):
                failures.append(f"iv_contains({flat!r}, {v}, {p}) diverged")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("micro: " + ("FAILED" if failures else "ok"))
    return 1 if failures else 0
