"""Rendering and persisting figure results.

Each figure function in :mod:`repro.bench.figures` returns a
:class:`FigureResult`; this module renders it as the ASCII analogue of the
paper's plot (one row per x value, one column pair per protocol) and can
persist the raw numbers as JSON for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any

from ..obs.export import (event_to_dict, metrics_sidecar_path,
                          trace_sidecar_path, write_metrics_json)

__all__ = ["FigurePoint", "FigureResult", "format_figure", "save_figure",
           "RunObservations", "save_observability"]


@dataclass(frozen=True)
class FigurePoint:
    """One (x, protocol) measurement."""

    x: float
    protocol: str
    throughput: float
    commit_rate: float
    extra: dict = field(default_factory=dict)


@dataclass
class FigureResult:
    """All measurements for one paper figure."""

    figure: str
    title: str
    x_label: str
    points: list[FigurePoint]
    notes: str = ""

    def protocols(self) -> list[str]:
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol, None)
        return list(seen)

    def xs(self) -> list[float]:
        seen: dict[float, None] = {}
        for p in self.points:
            seen.setdefault(p.x, None)
        return sorted(seen)

    def series(self, protocol: str) -> list[FigurePoint]:
        return sorted((p for p in self.points if p.protocol == protocol),
                      key=lambda p: p.x)

    def at(self, x: float, protocol: str) -> FigurePoint | None:
        for p in self.points:
            if p.x == x and p.protocol == protocol:
                return p
        return None


def format_figure(result: FigureResult,
                  metric: str = "both") -> str:
    """Render the figure as an ASCII table (rows = x, columns = protocols)."""
    protocols = result.protocols()
    lines = [f"== {result.figure}: {result.title} =="]
    if result.notes:
        lines.append(f"   ({result.notes})")
    header = [f"{result.x_label:>14s}"]
    for proto in protocols:
        if metric in ("both", "throughput"):
            header.append(f"{proto + ' thr':>16s}")
        if metric in ("both", "commit_rate"):
            header.append(f"{proto + ' cr':>14s}")
    lines.append(" ".join(header))
    for x in result.xs():
        row = [f"{x:>14g}"]
        for proto in protocols:
            point = result.at(x, proto)
            if metric in ("both", "throughput"):
                row.append(f"{point.throughput:>16.1f}" if point
                           else f"{'-':>16s}")
            if metric in ("both", "commit_rate"):
                row.append(f"{point.commit_rate:>14.3f}" if point
                           else f"{'-':>14s}")
        lines.append(" ".join(row))
    mpc_parts = []
    for proto in protocols:
        vals = [p.extra["messages_per_commit"] for p in result.series(proto)
                if "messages_per_commit" in p.extra]
        if vals:
            mpc_parts.append(f"{proto}={sum(vals) / len(vals):.1f}")
    if mpc_parts:
        lines.append("   msgs/commit (mean): " + "  ".join(mpc_parts))
    return "\n".join(lines)


def save_figure(result: FigureResult, directory: str | Path) -> Path:
    """Persist raw figure data as JSON; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.figure}.json"
    payload: dict[str, Any] = {
        "figure": result.figure,
        "title": result.title,
        "x_label": result.x_label,
        "notes": result.notes,
        "points": [asdict(p) for p in result.points],
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


class RunObservations:
    """Traces and metrics collected across one figure's cluster runs.

    Figure functions append each traced :class:`~repro.dist.cluster.
    ClusterResult`; :func:`save_observability` then writes one combined
    JSONL trace and one metrics sidecar next to the figure's results JSON.
    """

    def __init__(self) -> None:
        self.runs: list[tuple[str, Any]] = []

    def add(self, result: Any) -> str:
        """Record one traced run; returns its label within the sidecars."""
        label = (f"run{len(self.runs)}:{result.config.protocol}"
                 f"/seed={result.config.seed}")
        self.runs.append((label, result))
        return label

    @property
    def empty(self) -> bool:
        return not self.runs


def save_observability(obs: RunObservations,
                       results_json: str | Path) -> tuple[Path, Path]:
    """Write ``<figure>.trace.jsonl`` and ``<figure>.metrics.json``.

    Transaction ids are namespaced by run label (different runs reuse the
    same client ids), so the combined trace still satisfies the one-
    terminal-event-per-transaction invariant and the contention report can
    fold it directly.
    """
    results_json = Path(results_json)
    trace_path = trace_sidecar_path(results_json)
    with trace_path.open("w") as fh:
        for label, res in obs.runs:
            for ev in (res.trace or ()):
                tx = ((label,) + ev.tx if isinstance(ev.tx, tuple)
                      else (label, ev.tx))
                fh.write(json.dumps(event_to_dict(replace(ev, tx=tx),
                                                  run=label),
                                    separators=(",", ":")))
                fh.write("\n")
    metrics_path = write_metrics_json(
        {"runs": {label: res.metrics for label, res in obs.runs}},
        metrics_sidecar_path(results_json))
    return trace_path, metrics_path
