"""Fast-core backend selection.

``repro._fastcore`` exports the flat-array kernels that back
:mod:`repro.core.intervals` and :mod:`repro.core.versions`.  Two
implementations exist with bit-for-bit identical semantics:

- :mod:`repro._fastcore.kernels` — pure Python, always available, and the
  reference the differential test suites pin against;
- ``repro._fastcore._kernels_c`` — a hand-written CPython extension built
  by ``python setup.py build_ext --inplace`` (the build is marked
  optional, so a missing compiler degrades to pure Python).

Selection happens once at import:

- ``REPRO_FASTCORE=0`` forces the pure-Python backend;
- anything else (including unset) tries the compiled module and silently
  falls back to pure Python if the import fails.

``BACKEND`` names the winner (``"c"`` or ``"pure"``) for benchmarks, CI
logs, and the dual-backend differential tests.
"""

from __future__ import annotations

import os

from . import kernels as _pure

__all__ = ["BACKEND", "iv_contains", "iv_intersect", "iv_normalize",
           "iv_subtract", "iv_union", "vc_floor"]

BACKEND = "pure"

if os.environ.get("REPRO_FASTCORE", "") != "0":
    try:
        from . import _kernels_c as _impl  # type: ignore[attr-defined]

        BACKEND = "c"
    except ImportError:
        _impl = _pure
else:
    _impl = _pure

iv_contains = _impl.iv_contains
iv_intersect = _impl.iv_intersect
iv_normalize = _impl.iv_normalize
iv_subtract = _impl.iv_subtract
iv_union = _impl.iv_union
vc_floor = _impl.vc_floor
