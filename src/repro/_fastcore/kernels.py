"""Pure-Python fast-core kernels over flat interval/version arrays.

This module is the **reference backend** of :mod:`repro._fastcore`: every
function here has a compiled twin in ``_kernels_c`` (a hand-written CPython
extension) with bit-for-bit identical semantics, and the differential
hypothesis suites (``tests/core/test_intervals_fastpath.py``,
``tests/core/test_versions_model.py``) pin the two against each other and
against the original object-based algebra.

Representation
--------------
An interval set is a **flat tuple** of scalars, four per piece::

    (lo_v, lo_p, hi_v, hi_p,  lo_v, lo_p, hi_v, hi_p,  ...)

where ``(v, p)`` is a timestamp — clock ``value`` (float) and ``pid``
(int), ordered lexicographically exactly like
:class:`repro.core.timestamp.Timestamp`.  Pieces are sorted, pairwise
disjoint, and non-adjacent (the canonical form
:func:`repro.core.intervals.IntervalSet` always maintained); every piece is
a canonically *closed* range ``[lo, hi]`` with ``lo <= hi``.

The discrete successor/predecessor on the timestamp line are
``succ(v, p) = (v, p + 1)`` and ``pred(v, p) = (v, p - 1)`` — the pid axis
makes every timestamp's neighbours representable, so subtraction and
adjacency need no open endpoints.

Version chains are **parallel arrays** ``ts_v`` (values) / ``ts_p`` (pids)
plus a values list kept by the caller; :func:`vc_floor` is the shared
lexicographic bisect.

Object identity contract
------------------------
Scalars flow through unchanged: output endpoints reuse the *objects* from
the input tuples (so an ``int``-valued timestamp stays an ``int``), and
when an operation's result equals one of its operands the operand tuple
itself is returned.  Callers exploit this: ``IntervalSet`` maps
``result is operand_flat`` back to the operand set object, which makes the
ubiquitous ``new_state != old_state`` checks in the lock table an identity
comparison.

Numeric domain: timestamp values are clock readings (floats, or small ints
in tests).  The compiled backend compares values as C doubles, so integer
values must stay within the 2**53 exact-double range — every producer in
the repo does.
"""

from __future__ import annotations

__all__ = ["iv_contains", "iv_intersect", "iv_normalize", "iv_subtract",
           "iv_union", "vc_floor"]


def iv_contains(flat: tuple, v: float, p: int) -> bool:
    """Whether timestamp ``(v, p)`` lies in the set.

    Linear scan with an early exit: piece counts are tiny (usually 1-2),
    and pieces are sorted, so the first piece starting above ``(v, p)``
    ends the search.
    """
    for i in range(0, len(flat), 4):
        lo_v = flat[i]
        if v < lo_v or (v == lo_v and p < flat[i + 1]):
            return False  # sorted: every later piece starts higher still
        hi_v = flat[i + 2]
        if v < hi_v or (v == hi_v and p <= flat[i + 3]):
            return True
    return False


def iv_intersect(a: tuple, b: tuple) -> tuple:
    """Intersection of two flat sets (canonical in, canonical out)."""
    if not a or not b:
        return ()
    if len(a) == 4 and len(b) == 4:
        # Fast path: lock state is almost always one contiguous range.
        alo_v, alo_p, ahi_v, ahi_p = a
        blo_v, blo_p, bhi_v, bhi_p = b
        if alo_v > blo_v or (alo_v == blo_v and alo_p >= blo_p):
            lo_v, lo_p, lo_src = alo_v, alo_p, a
        else:
            lo_v, lo_p, lo_src = blo_v, blo_p, b
        if ahi_v < bhi_v or (ahi_v == bhi_v and ahi_p <= bhi_p):
            hi_v, hi_p, hi_src = ahi_v, ahi_p, a
        else:
            hi_v, hi_p, hi_src = bhi_v, bhi_p, b
        if lo_v > hi_v or (lo_v == hi_v and lo_p > hi_p):
            return ()
        if lo_src is hi_src:
            return lo_src  # containment: the result IS one operand
        res = (lo_v, lo_p, hi_v, hi_p)
        # Mixed sources can still equal b numerically (ties prefer a's
        # endpoint): keep the contract "equal to an operand IS the operand".
        # Equalling a is impossible here — that would make both picks a.
        if res == b:
            return b
        return res
    out: list = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        alo_v, alo_p, ahi_v, ahi_p = a[i], a[i + 1], a[i + 2], a[i + 3]
        blo_v, blo_p, bhi_v, bhi_p = b[j], b[j + 1], b[j + 2], b[j + 3]
        if alo_v > blo_v or (alo_v == blo_v and alo_p >= blo_p):
            lo_v, lo_p = alo_v, alo_p
        else:
            lo_v, lo_p = blo_v, blo_p
        if ahi_v < bhi_v or (ahi_v == bhi_v and ahi_p <= bhi_p):
            hi_v, hi_p = ahi_v, ahi_p
            i += 4  # a's piece is exhausted first
        else:
            hi_v, hi_p = bhi_v, bhi_p
            j += 4
        if lo_v < hi_v or (lo_v == hi_v and lo_p <= hi_p):
            out.append(lo_v)
            out.append(lo_p)
            out.append(hi_v)
            out.append(hi_p)
    res = tuple(out)
    if res == a:
        return a
    if res == b:
        return b
    return res


def iv_union(a: tuple, b: tuple) -> tuple:
    """Union of two flat sets, merging touching/adjacent pieces."""
    if not a:
        return b
    if not b:
        return a
    if len(a) == 4 and len(b) == 4:
        alo_v, alo_p, ahi_v, ahi_p = a
        blo_v, blo_p, bhi_v, bhi_p = b
        # touches: max(lo) <= succ(min(hi)), successor unrolled.
        if alo_v > blo_v or (alo_v == blo_v and alo_p >= blo_p):
            mlo_v, mlo_p = alo_v, alo_p
        else:
            mlo_v, mlo_p = blo_v, blo_p
        if ahi_v < bhi_v or (ahi_v == bhi_v and ahi_p <= bhi_p):
            mhi_v, mhi_p = ahi_v, ahi_p
        else:
            mhi_v, mhi_p = bhi_v, bhi_p
        if mlo_v < mhi_v or (mlo_v == mhi_v and mlo_p <= mhi_p + 1):
            # Overlapping/adjacent: one merged piece (reuse a containing
            # operand outright).
            if alo_v < blo_v or (alo_v == blo_v and alo_p <= blo_p):
                lo_v, lo_p, lo_src = alo_v, alo_p, a
            else:
                lo_v, lo_p, lo_src = blo_v, blo_p, b
            if ahi_v > bhi_v or (ahi_v == bhi_v and ahi_p >= bhi_p):
                hi_v, hi_p, hi_src = ahi_v, ahi_p, a
            else:
                hi_v, hi_p, hi_src = bhi_v, bhi_p, b
            if lo_src is hi_src:
                return lo_src
            res = (lo_v, lo_p, hi_v, hi_p)
            if res == b:  # ties pick a's endpoint; see iv_intersect
                return b
            return res
        if alo_v < blo_v or (alo_v == blo_v and alo_p < blo_p):
            return a + b
        return b + a
    # Linear merge of two sorted piece streams with touch-merging.
    out: list = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na or j < nb:
        if j >= nb:
            src, k = a, i
            i += 4
        elif i >= na:
            src, k = b, j
            j += 4
        else:
            alo_v, alo_p = a[i], a[i + 1]
            blo_v, blo_p = b[j], b[j + 1]
            if alo_v < blo_v or (alo_v == blo_v and alo_p <= blo_p):
                src, k = a, i
                i += 4
            else:
                src, k = b, j
                j += 4
        lo_v, lo_p = src[k], src[k + 1]
        hi_v, hi_p = src[k + 2], src[k + 3]
        if out:
            phi_v, phi_p = out[-2], out[-1]
            # touches(prev, piece): lo <= succ(prev.hi) (pieces arrive in
            # lo order, so prev.lo <= lo always).
            if lo_v < phi_v or (lo_v == phi_v and lo_p <= phi_p + 1):
                if hi_v > phi_v or (hi_v == phi_v and hi_p > phi_p):
                    out[-2] = hi_v
                    out[-1] = hi_p
                continue
        out.append(lo_v)
        out.append(lo_p)
        out.append(hi_v)
        out.append(hi_p)
    res = tuple(out)
    if res == a:
        return a
    if res == b:
        return b
    return res


def iv_subtract(a: tuple, b: tuple) -> tuple:
    """Set difference ``a - b`` over flat sets."""
    if not a or not b:
        return a
    if len(a) == 4 and len(b) == 4:
        alo_v, alo_p, ahi_v, ahi_p = a
        blo_v, blo_p, bhi_v, bhi_p = b
        if (blo_v > ahi_v or (blo_v == ahi_v and blo_p > ahi_p)
                or alo_v > bhi_v or (alo_v == bhi_v and alo_p > bhi_p)):
            return a  # disjoint
        out: list = []
        if alo_v < blo_v or (alo_v == blo_v and alo_p < blo_p):
            out += (alo_v, alo_p, blo_v, blo_p - 1)  # [a.lo, pred(b.lo)]
        if bhi_v < ahi_v or (bhi_v == ahi_v and bhi_p < ahi_p):
            out += (bhi_v, bhi_p + 1, ahi_v, ahi_p)  # [succ(b.hi), a.hi]
        return tuple(out)
    out = []
    j = 0
    nb = len(b)
    for i in range(0, len(a), 4):
        lo_v, lo_p = a[i], a[i + 1]
        hi_v, hi_p = a[i + 2], a[i + 3]
        # b pieces entirely below this a piece stay below later ones too.
        while j < nb and (b[j + 2] < lo_v
                          or (b[j + 2] == lo_v and b[j + 3] < lo_p)):
            j += 4
        k = j
        while k < nb:
            blo_v, blo_p = b[k], b[k + 1]
            bhi_v, bhi_p = b[k + 2], b[k + 3]
            if blo_v > hi_v or (blo_v == hi_v and blo_p > hi_p):
                break  # b piece starts past the remainder
            if lo_v < blo_v or (lo_v == blo_v and lo_p < blo_p):
                out += (lo_v, lo_p, blo_v, blo_p - 1)
            # Remainder continues just above b's piece.
            lo_v, lo_p = bhi_v, bhi_p + 1
            if lo_v > hi_v or (lo_v == hi_v and lo_p > hi_p):
                lo_v = None  # fully consumed
                break
            k += 4
        if lo_v is not None:
            out += (lo_v, lo_p, hi_v, hi_p)
    res = tuple(out)
    if res == a:
        return a
    return res


def iv_normalize(quads: list) -> tuple:
    """Canonicalize arbitrary ``(lo_v, lo_p, hi_v, hi_p)`` quads.

    Sorts by ``lo`` and merges overlapping/adjacent pieces — the
    construction path of :class:`~repro.core.intervals.IntervalSet`.  Each
    quad must already satisfy ``lo <= hi``.
    """
    if not quads:
        return ()
    quads = sorted(quads, key=lambda q: (q[0], q[1]))
    out: list = []
    for lo_v, lo_p, hi_v, hi_p in quads:
        if out:
            phi_v, phi_p = out[-2], out[-1]
            if lo_v < phi_v or (lo_v == phi_v and lo_p <= phi_p + 1):
                if hi_v > phi_v or (hi_v == phi_v and hi_p > phi_p):
                    out[-2] = hi_v
                    out[-1] = hi_p
                continue
        out += (lo_v, lo_p, hi_v, hi_p)
    return tuple(out)


def vc_floor(ts_v: list, ts_p: list, v: float, p: int) -> int:
    """Lexicographic bisect over a version chain's parallel arrays.

    Returns the number of chain entries strictly below ``(v, p)`` —
    ``bisect_left`` semantics, so ``index - 1`` is the floor version and an
    exact match sits *at* the returned index.
    """
    lo = 0
    hi = len(ts_v)
    while lo < hi:
        mid = (lo + hi) // 2
        mv = ts_v[mid]
        if mv < v or (mv == v and ts_p[mid] < p):
            lo = mid + 1
        else:
            hi = mid
    return lo
