/* Compiled fast-core kernels.
 *
 * Drop-in twin of repro/_fastcore/kernels.py: identical function
 * signatures, identical results bit-for-bit, including the object-identity
 * contract — result endpoints reuse the operand tuples' scalar objects,
 * and a result numerically equal to an operand IS that operand tuple
 * (preferring `a` over `b`), so callers' `is`-based change detection works
 * the same under either backend.
 *
 * Timestamp values are compared as C doubles and pids as long long —
 * exact for every producer in the repo (clock floats, small test ints;
 * pid endpoints are +-2^31).  The pure backend is the reference; the
 * differential hypothesis suites pin this file against it.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* One interval piece, scalar view + owned-elsewhere object view. */
typedef struct {
    double lo_v, hi_v;
    long long lo_p, hi_p;
    PyObject *lo_vo, *lo_po, *hi_vo, *hi_po; /* borrowed refs */
} Piece;

#define STACK_PIECES 8

/* Lexicographic comparisons on (v, p). */
#define TS_LT(av, ap, bv, bp) ((av) < (bv) || ((av) == (bv) && (ap) < (bp)))
#define TS_LE(av, ap, bv, bp) ((av) < (bv) || ((av) == (bv) && (ap) <= (bp)))

static int
load_scalar(PyObject *vo, PyObject *po, double *v, long long *p)
{
    if (PyFloat_CheckExact(vo))
        *v = PyFloat_AS_DOUBLE(vo);
    else {
        *v = PyFloat_AsDouble(vo);
        if (*v == -1.0 && PyErr_Occurred())
            return -1;
    }
    *p = PyLong_AsLongLong(po);
    if (*p == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Parse a flat tuple into pieces.  Returns piece count, or -1 on error.
 * *pieces must point at a STACK_PIECES buffer; a larger heap buffer is
 * allocated (caller frees iff *heap is set). */
static Py_ssize_t
load_flat(PyObject *flat, Piece **pieces, int *heap)
{
    Py_ssize_t len, n, i;

    *heap = 0;
    if (!PyTuple_CheckExact(flat)) {
        PyErr_SetString(PyExc_TypeError, "flat interval set must be a tuple");
        return -1;
    }
    len = PyTuple_GET_SIZE(flat);
    if (len % 4) {
        PyErr_SetString(PyExc_ValueError, "flat length must be divisible by 4");
        return -1;
    }
    n = len / 4;
    if (n > STACK_PIECES) {
        Piece *buf = PyMem_Malloc((size_t)n * sizeof(Piece));
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        *pieces = buf;
        *heap = 1;
    }
    for (i = 0; i < n; i++) {
        Piece *pc = &(*pieces)[i];
        pc->lo_vo = PyTuple_GET_ITEM(flat, 4 * i);
        pc->lo_po = PyTuple_GET_ITEM(flat, 4 * i + 1);
        pc->hi_vo = PyTuple_GET_ITEM(flat, 4 * i + 2);
        pc->hi_po = PyTuple_GET_ITEM(flat, 4 * i + 3);
        if (load_scalar(pc->lo_vo, pc->lo_po, &pc->lo_v, &pc->lo_p) < 0 ||
            load_scalar(pc->hi_vo, pc->hi_po, &pc->hi_v, &pc->hi_p) < 0) {
            if (*heap) {
                PyMem_Free(*pieces);
                *heap = 0;
            }
            return -1;
        }
    }
    return n;
}

/* Does the piece array `out[0..n)` numerically equal operand array
 * `op[0..m)`? */
static int
pieces_equal(const Piece *out, Py_ssize_t n, const Piece *op, Py_ssize_t m)
{
    Py_ssize_t i;
    if (n != m)
        return 0;
    for (i = 0; i < n; i++) {
        if (out[i].lo_v != op[i].lo_v || out[i].lo_p != op[i].lo_p ||
            out[i].hi_v != op[i].hi_v || out[i].hi_p != op[i].hi_p)
            return 0;
    }
    return 1;
}

/* Build the result tuple from pieces.  Endpoint objects are INCREF'd; a
 * NULL object slot means "materialize from the scalar" (pid succ/pred). */
static PyObject *
build_flat(const Piece *out, Py_ssize_t n)
{
    PyObject *res = PyTuple_New(4 * n);
    Py_ssize_t i;
    if (res == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *o;
        o = out[i].lo_vo; Py_INCREF(o); PyTuple_SET_ITEM(res, 4 * i, o);
        if (out[i].lo_po != NULL) {
            o = out[i].lo_po;
            Py_INCREF(o);
        }
        else {
            o = PyLong_FromLongLong(out[i].lo_p);
            if (o == NULL)
                goto fail;
        }
        PyTuple_SET_ITEM(res, 4 * i + 1, o);
        o = out[i].hi_vo; Py_INCREF(o); PyTuple_SET_ITEM(res, 4 * i + 2, o);
        if (out[i].hi_po != NULL) {
            o = out[i].hi_po;
            Py_INCREF(o);
        }
        else {
            o = PyLong_FromLongLong(out[i].hi_p);
            if (o == NULL)
                goto fail;
        }
        PyTuple_SET_ITEM(res, 4 * i + 3, o);
    }
    return res;
fail:
    Py_DECREF(res);
    return NULL;
}

/* Shared tail: reuse operand on numeric equality (a preferred), else
 * build a fresh tuple.  Frees heap buffers. */
static PyObject *
finish(PyObject *a, const Piece *pa, Py_ssize_t na, int heap_a,
       PyObject *b, const Piece *pb, Py_ssize_t nb, int heap_b,
       Piece *out, Py_ssize_t nout, int heap_out)
{
    PyObject *res;
    if (pieces_equal(out, nout, pa, na)) {
        Py_INCREF(a);
        res = a;
    }
    else if (b != NULL && pieces_equal(out, nout, pb, nb)) {
        Py_INCREF(b);
        res = b;
    }
    else
        res = build_flat(out, nout);
    if (heap_a) PyMem_Free((void *)pa);
    if (heap_b) PyMem_Free((void *)pb);
    if (heap_out) PyMem_Free(out);
    return res;
}

/* -- iv_contains ---------------------------------------------------------- */

static PyObject *
k_iv_contains(PyObject *self, PyObject *args)
{
    PyObject *flat, *vo, *po;
    double v, pv;
    long long p, pp;
    Py_ssize_t len, i;

    if (!PyArg_ParseTuple(args, "O!OO", &PyTuple_Type, &flat, &vo, &po))
        return NULL;
    if (load_scalar(vo, po, &v, &p) < 0)
        return NULL;
    len = PyTuple_GET_SIZE(flat);
    if (len % 4) {
        PyErr_SetString(PyExc_ValueError, "flat length must be divisible by 4");
        return NULL;
    }
    for (i = 0; i < len; i += 4) {
        if (load_scalar(PyTuple_GET_ITEM(flat, i),
                        PyTuple_GET_ITEM(flat, i + 1), &pv, &pp) < 0)
            return NULL;
        if (TS_LT(v, p, pv, pp))
            Py_RETURN_FALSE;  /* sorted: later pieces start higher still */
        if (load_scalar(PyTuple_GET_ITEM(flat, i + 2),
                        PyTuple_GET_ITEM(flat, i + 3), &pv, &pp) < 0)
            return NULL;
        if (TS_LE(v, p, pv, pp))
            Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

/* -- iv_intersect --------------------------------------------------------- */

static PyObject *
k_iv_intersect(PyObject *self, PyObject *args)
{
    PyObject *a, *b;
    Piece sa[STACK_PIECES], sb[STACK_PIECES], sout[STACK_PIECES];
    Piece *pa = sa, *pb = sb, *out = sout;
    int ha = 0, hb = 0, hout = 0;
    Py_ssize_t na, nb, nout = 0, i = 0, j = 0;

    if (!PyArg_ParseTuple(args, "O!O!", &PyTuple_Type, &a, &PyTuple_Type, &b))
        return NULL;
    if (PyTuple_GET_SIZE(a) == 0 || PyTuple_GET_SIZE(b) == 0)
        return PyTuple_New(0);
    na = load_flat(a, &pa, &ha);
    if (na < 0)
        return NULL;
    nb = load_flat(b, &pb, &hb);
    if (nb < 0) {
        if (ha) PyMem_Free(pa);
        return NULL;
    }
    if (na + nb > STACK_PIECES) {
        out = PyMem_Malloc((size_t)(na + nb) * sizeof(Piece));
        if (out == NULL) {
            if (ha) PyMem_Free(pa);
            if (hb) PyMem_Free(pb);
            return PyErr_NoMemory();
        }
        hout = 1;
    }
    while (i < na && j < nb) {
        const Piece *x = &pa[i], *y = &pb[j];
        Piece piece;
        /* lo = max(x.lo, y.lo), hi = min(x.hi, y.hi); advance the side
         * whose piece is exhausted first. */
        if (TS_LE(y->lo_v, y->lo_p, x->lo_v, x->lo_p)) {
            piece.lo_v = x->lo_v; piece.lo_p = x->lo_p;
            piece.lo_vo = x->lo_vo; piece.lo_po = x->lo_po;
        }
        else {
            piece.lo_v = y->lo_v; piece.lo_p = y->lo_p;
            piece.lo_vo = y->lo_vo; piece.lo_po = y->lo_po;
        }
        if (TS_LE(x->hi_v, x->hi_p, y->hi_v, y->hi_p)) {
            piece.hi_v = x->hi_v; piece.hi_p = x->hi_p;
            piece.hi_vo = x->hi_vo; piece.hi_po = x->hi_po;
            i++;
        }
        else {
            piece.hi_v = y->hi_v; piece.hi_p = y->hi_p;
            piece.hi_vo = y->hi_vo; piece.hi_po = y->hi_po;
            j++;
        }
        if (TS_LE(piece.lo_v, piece.lo_p, piece.hi_v, piece.hi_p))
            out[nout++] = piece;
    }
    return finish(a, pa, na, ha, b, pb, nb, hb, out, nout, hout);
}

/* -- iv_union ------------------------------------------------------------- */

static PyObject *
k_iv_union(PyObject *self, PyObject *args)
{
    PyObject *a, *b;
    Piece sa[STACK_PIECES], sb[STACK_PIECES], sout[STACK_PIECES];
    Piece *pa = sa, *pb = sb, *out = sout;
    int ha = 0, hb = 0, hout = 0;
    Py_ssize_t na, nb, nout = 0, i = 0, j = 0;

    if (!PyArg_ParseTuple(args, "O!O!", &PyTuple_Type, &a, &PyTuple_Type, &b))
        return NULL;
    if (PyTuple_GET_SIZE(a) == 0) {
        Py_INCREF(b);
        return b;
    }
    if (PyTuple_GET_SIZE(b) == 0) {
        Py_INCREF(a);
        return a;
    }
    na = load_flat(a, &pa, &ha);
    if (na < 0)
        return NULL;
    nb = load_flat(b, &pb, &hb);
    if (nb < 0) {
        if (ha) PyMem_Free(pa);
        return NULL;
    }
    if (na + nb > STACK_PIECES) {
        out = PyMem_Malloc((size_t)(na + nb) * sizeof(Piece));
        if (out == NULL) {
            if (ha) PyMem_Free(pa);
            if (hb) PyMem_Free(pb);
            return PyErr_NoMemory();
        }
        hout = 1;
    }
    while (i < na || j < nb) {
        const Piece *src;
        if (j >= nb)
            src = &pa[i++];
        else if (i >= na)
            src = &pb[j++];
        else if (TS_LE(pa[i].lo_v, pa[i].lo_p, pb[j].lo_v, pb[j].lo_p))
            src = &pa[i++];
        else
            src = &pb[j++];
        if (nout > 0) {
            Piece *prev = &out[nout - 1];
            /* touches(prev, src): src.lo <= succ(prev.hi). */
            if (TS_LE(src->lo_v, src->lo_p, prev->hi_v, prev->hi_p + 1)) {
                if (TS_LT(prev->hi_v, prev->hi_p, src->hi_v, src->hi_p)) {
                    prev->hi_v = src->hi_v; prev->hi_p = src->hi_p;
                    prev->hi_vo = src->hi_vo; prev->hi_po = src->hi_po;
                }
                continue;
            }
        }
        out[nout++] = *src;
    }
    return finish(a, pa, na, ha, b, pb, nb, hb, out, nout, hout);
}

/* -- iv_subtract ---------------------------------------------------------- */

static PyObject *
k_iv_subtract(PyObject *self, PyObject *args)
{
    PyObject *a, *b;
    Piece sa[STACK_PIECES], sb[STACK_PIECES], sout[2 * STACK_PIECES];
    Piece *pa = sa, *pb = sb, *out = sout;
    int ha = 0, hb = 0, hout = 0;
    Py_ssize_t na, nb, nout = 0, i, j = 0;

    if (!PyArg_ParseTuple(args, "O!O!", &PyTuple_Type, &a, &PyTuple_Type, &b))
        return NULL;
    if (PyTuple_GET_SIZE(a) == 0 || PyTuple_GET_SIZE(b) == 0) {
        Py_INCREF(a);
        return a;
    }
    na = load_flat(a, &pa, &ha);
    if (na < 0)
        return NULL;
    nb = load_flat(b, &pb, &hb);
    if (nb < 0) {
        if (ha) PyMem_Free(pa);
        return NULL;
    }
    if (na + nb + 1 > 2 * STACK_PIECES) {
        out = PyMem_Malloc((size_t)(na + nb + 1) * sizeof(Piece));
        if (out == NULL) {
            if (ha) PyMem_Free(pa);
            if (hb) PyMem_Free(pb);
            return PyErr_NoMemory();
        }
        hout = 1;
    }
    for (i = 0; i < na; i++) {
        /* Mutable remainder of a's piece i. */
        double lo_v = pa[i].lo_v, hi_v = pa[i].hi_v;
        long long lo_p = pa[i].lo_p, hi_p = pa[i].hi_p;
        PyObject *lo_vo = pa[i].lo_vo, *lo_po = pa[i].lo_po;
        PyObject *hi_vo = pa[i].hi_vo, *hi_po = pa[i].hi_po;
        int consumed = 0;
        Py_ssize_t k;
        /* b pieces entirely below this a piece stay below later ones. */
        while (j < nb && TS_LT(pb[j].hi_v, pb[j].hi_p, lo_v, lo_p))
            j++;
        for (k = j; k < nb; k++) {
            const Piece *y = &pb[k];
            if (TS_LT(hi_v, hi_p, y->lo_v, y->lo_p))
                break;  /* b piece starts past the remainder */
            if (TS_LT(lo_v, lo_p, y->lo_v, y->lo_p)) {
                Piece *pc = &out[nout++];
                pc->lo_v = lo_v; pc->lo_p = lo_p;
                pc->lo_vo = lo_vo; pc->lo_po = lo_po;
                pc->hi_v = y->lo_v; pc->hi_p = y->lo_p - 1;
                pc->hi_vo = y->lo_vo; pc->hi_po = NULL; /* pred(b.lo) */
            }
            /* Remainder continues just above b's piece. */
            lo_v = y->hi_v; lo_p = y->hi_p + 1;
            lo_vo = y->hi_vo; lo_po = NULL;             /* succ(b.hi) */
            if (TS_LT(hi_v, hi_p, lo_v, lo_p)) {
                consumed = 1;
                break;
            }
        }
        if (!consumed) {
            Piece *pc = &out[nout++];
            pc->lo_v = lo_v; pc->lo_p = lo_p;
            pc->lo_vo = lo_vo; pc->lo_po = lo_po;
            pc->hi_v = hi_v; pc->hi_p = hi_p;
            pc->hi_vo = hi_vo; pc->hi_po = hi_po;
        }
    }
    /* Only `a` can be reused (the pure kernel never returns b here). */
    return finish(a, pa, na, ha, NULL, NULL, 0, hb ? (PyMem_Free(pb), 0) : 0,
                  out, nout, hout);
}

/* -- iv_normalize --------------------------------------------------------- */

static int
quad_cmp(const void *x, const void *y)
{
    const Piece *px = x, *py = y;
    if (TS_LT(px->lo_v, px->lo_p, py->lo_v, py->lo_p))
        return -1;
    if (TS_LT(py->lo_v, py->lo_p, px->lo_v, px->lo_p))
        return 1;
    return 0;
}

static PyObject *
k_iv_normalize(PyObject *self, PyObject *args)
{
    PyObject *quads, *fast;
    Piece sbuf[STACK_PIECES];
    Piece *buf = sbuf;
    int heap = 0;
    Py_ssize_t n, i, nout = 0;
    PyObject *res;
    int sorted_ok = 1;

    if (!PyArg_ParseTuple(args, "O", &quads))
        return NULL;
    fast = PySequence_Fast(quads, "iv_normalize expects a sequence of quads");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    if (n == 0) {
        Py_DECREF(fast);
        return PyTuple_New(0);
    }
    if (n > STACK_PIECES) {
        buf = PyMem_Malloc((size_t)n * sizeof(Piece));
        if (buf == NULL) {
            Py_DECREF(fast);
            return PyErr_NoMemory();
        }
        heap = 1;
    }
    for (i = 0; i < n; i++) {
        PyObject *q = PySequence_Fast_GET_ITEM(fast, i);
        Piece *pc = &buf[i];
        if (!PyTuple_Check(q) || PyTuple_GET_SIZE(q) != 4) {
            PyErr_SetString(PyExc_TypeError, "quad must be a 4-tuple");
            goto fail;
        }
        pc->lo_vo = PyTuple_GET_ITEM(q, 0);
        pc->lo_po = PyTuple_GET_ITEM(q, 1);
        pc->hi_vo = PyTuple_GET_ITEM(q, 2);
        pc->hi_po = PyTuple_GET_ITEM(q, 3);
        if (load_scalar(pc->lo_vo, pc->lo_po, &pc->lo_v, &pc->lo_p) < 0 ||
            load_scalar(pc->hi_vo, pc->hi_po, &pc->hi_v, &pc->hi_p) < 0)
            goto fail;
        if (i > 0 && quad_cmp(&buf[i - 1], &buf[i]) > 0)
            sorted_ok = 0;
    }
    if (!sorted_ok)
        /* qsort is not stable, but equal keys here mean equal (lo_v, lo_p)
         * scalars: the merge below collapses them identically regardless
         * of which equal piece comes first (Python's sort only orders by
         * this same key, so any ordering of equal keys is a valid
         * sorted() outcome... except sorted() IS stable.  Match it. */
        for (i = 1; i < n; i++) {
            Piece key = buf[i];
            Py_ssize_t m = i - 1;
            while (m >= 0 && quad_cmp(&buf[m], &key) > 0) {
                buf[m + 1] = buf[m];
                m--;
            }
            buf[m + 1] = key;
        }
    /* Merge touching/overlapping pieces in place (prefix of buf). */
    for (i = 1; i < n; i++) {
        Piece *prev = &buf[nout];
        Piece *cur = &buf[i];
        if (TS_LE(cur->lo_v, cur->lo_p, prev->hi_v, prev->hi_p + 1)) {
            if (TS_LT(prev->hi_v, prev->hi_p, cur->hi_v, cur->hi_p)) {
                prev->hi_v = cur->hi_v; prev->hi_p = cur->hi_p;
                prev->hi_vo = cur->hi_vo; prev->hi_po = cur->hi_po;
            }
        }
        else
            buf[++nout] = *cur;
    }
    nout++;
    res = build_flat(buf, nout);
    if (heap)
        PyMem_Free(buf);
    Py_DECREF(fast);
    return res;
fail:
    if (heap)
        PyMem_Free(buf);
    Py_DECREF(fast);
    return NULL;
}

/* -- vc_floor ------------------------------------------------------------- */

static PyObject *
k_vc_floor(PyObject *self, PyObject *args)
{
    PyObject *ts_v, *ts_p, *vo, *po;
    double v, mv;
    long long p, mp;
    Py_ssize_t lo = 0, hi, mid;

    if (!PyArg_ParseTuple(args, "O!O!OO", &PyList_Type, &ts_v,
                          &PyList_Type, &ts_p, &vo, &po))
        return NULL;
    if (load_scalar(vo, po, &v, &p) < 0)
        return NULL;
    hi = PyList_GET_SIZE(ts_v);
    if (PyList_GET_SIZE(ts_p) != hi) {
        PyErr_SetString(PyExc_ValueError, "parallel arrays length mismatch");
        return NULL;
    }
    while (lo < hi) {
        mid = (lo + hi) / 2;
        if (load_scalar(PyList_GET_ITEM(ts_v, mid),
                        PyList_GET_ITEM(ts_p, mid), &mv, &mp) < 0)
            return NULL;
        if (TS_LT(mv, mp, v, p))
            lo = mid + 1;
        else
            hi = mid;
    }
    return PyLong_FromSsize_t(lo);
}

/* -- module --------------------------------------------------------------- */

static PyMethodDef kernel_methods[] = {
    {"iv_contains", k_iv_contains, METH_VARARGS,
     "iv_contains(flat, v, p) -> bool"},
    {"iv_intersect", k_iv_intersect, METH_VARARGS,
     "iv_intersect(a, b) -> flat tuple"},
    {"iv_union", k_iv_union, METH_VARARGS,
     "iv_union(a, b) -> flat tuple"},
    {"iv_subtract", k_iv_subtract, METH_VARARGS,
     "iv_subtract(a, b) -> flat tuple"},
    {"iv_normalize", k_iv_normalize, METH_VARARGS,
     "iv_normalize(quads) -> flat tuple"},
    {"vc_floor", k_vc_floor, METH_VARARGS,
     "vc_floor(ts_v, ts_p, v, p) -> int"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro._fastcore._kernels_c",
    "Compiled twin of repro._fastcore.kernels (see that module's docs).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernels_c(void)
{
    return PyModule_Create(&kernels_module);
}
