"""The workload zoo: named, seeded scenarios that stress every theorem.

Each scenario is a generator of :class:`~repro.workload.generator.TxSpec`
streams layered on the §8.3 workload knobs, plus machine-checkable
invariants over the run's final state and history:

* ``bank-transfer`` — multi-key atomic transfers between accounts with
  read-only audit scans; post-run invariant: total balance is conserved.
* ``orders`` — TPC-C-ish read-modify-write pipelines: every order bumps a
  hot district counter, inserts a unique order row and sells one unit of a
  popular item; invariants: dense counters (counter == committed writers,
  i.e. no lost updates) and order-row atomicity.
* ``scan-vs-oltp`` — long read-only analytic scans against OLTP
  increment writers, flagged ``read_only`` so replicated MVTIL serves them
  as follower reads at the GC-floor snapshot; invariants: follower reads
  actually engaged, and no OLTP increment was lost.
* ``secondary-index`` — every user-row update atomically maintains a
  derived index key; invariant: index == derive(row) for every row.
* ``flash-crowd`` — alternating calm/burst phases hammering a tiny hot
  set, layered on the PR-4 overload controller with a critical
  (MVTL-Prio) class; invariants: the controller engaged, hot counters
  lost no update, criticals out-commit normals (Theorem 3's analogue).

The scenarios also drive the paper's two headline per-policy theorems as
*duels* on the centralized engine (:func:`serial_skew_duel` for Theorem 4,
:func:`ghost_abort_duel` for Theorem 7): the same seeded scenario
transaction stream is executed under the susceptible policy (MVTL-TO,
which behaves as MVTO+ by Theorem 5) and the fixed one, and the pathology
count — serial aborts under skewed clocks, ghost aborts from dead
transactions' locks — must be zero for the fixed policy and positive for
the susceptible one.

Everything here is deterministic: a scenario generator draws only from the
per-client RNG stream handed to it, so same-seed reruns are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .generator import (Op, TxSpec, WorkloadConfig, WorkloadGenerator,
                        zipf_probabilities)

__all__ = ["SCENARIOS", "Scenario", "ScenarioCellSummary",
           "ScenarioGenerator", "make_scenario_generator",
           "scenario_config", "check_scenario", "reduce_scenario_cell",
           "scenario_names", "encode_int", "decode_int",
           "serial_skew_duel", "ghost_abort_duel",
           "ARENA_FIXED_POLICIES", "ARENA_POLICIES", "policy_arena",
           "PolicyCellConfig", "PolicyArenaSummary", "run_policy_cell",
           "BOHM_CHAOS_SCENARIOS", "bohm_chaos_config",
           "BohmChaosSummary", "reduce_bohm_chaos_cell"]


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------
# Scenario values are integers wire-encoded as strings (the substrates store
# opaque values).  A read of a never-written key observes BOTTOM (or a
# non-scenario value), which decodes to the caller's default — that is how
# "initially every account holds INITIAL_BALANCE" works without seeding.

def encode_int(n: int) -> str:
    """Encode an integer as a scenario value string."""
    return f"i{int(n):+012d}"


def decode_int(value: Any, default: int = 0) -> int:
    """Decode a scenario value; BOTTOM / None / foreign values -> default."""
    if isinstance(value, str) and value[:1] == "i":
        try:
            return int(value[1:])
        except ValueError:
            return default
    return default


def _rmw(key: str, fn: Callable[[int], int],
         default: int = 0) -> Callable[[dict], str]:
    """A compute closure: new value = fn(decoded value read for ``key``)."""
    def compute(reads: dict) -> str:
        return encode_int(fn(decode_int(reads.get(key), default)))
    return compute


def _derive_index(n: int) -> int:
    """The secondary-index derivation (any fixed injective-enough map)."""
    return n * 7 + 13


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

class ScenarioGenerator:
    """Base for scenario generators; duck-types WorkloadGenerator.

    Subclasses implement :meth:`next_tx`.  ``counters`` accumulates
    per-scenario event counts (merged across clients into the run's
    ``scenario_report`` and, under tracing, into ``repro.obs`` metrics).
    """

    name = "?"

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator, *,
                 client_index: int = 0, num_clients: int = 1) -> None:
        self.config = config
        self._rng = rng
        self.client_index = client_index
        self.num_clients = num_clients
        self.counters: dict[str, int] = {}
        self._probs = (zipf_probabilities(config.num_keys, config.zipf_s)
                       if config.zipf_s > 0.0 else None)

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def _pick_idx(self) -> int:
        """One key index from the configured (uniform/Zipf) distribution."""
        if self._probs is None:
            return int(self._rng.integers(self.config.num_keys))
        return int(self._rng.choice(self.config.num_keys, p=self._probs))

    def _distinct_indices(self, n: int) -> list[int]:
        """``n`` distinct key indices (ascending, deterministic)."""
        n = min(n, self.config.num_keys)
        if self._probs is None:
            picks = self._rng.choice(self.config.num_keys, size=n,
                                     replace=False)
        else:
            picks = self._rng.choice(self.config.num_keys, size=n,
                                     replace=False, p=self._probs)
        return sorted(int(i) for i in picks)

    def next_tx(self) -> TxSpec:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[TxSpec]:
        while True:
            yield self.next_tx()


class BankTransferGenerator(ScenarioGenerator):
    """Atomic two-account transfers plus read-only audits.

    ``num_keys`` is the number of accounts; every account starts (by the
    BOTTOM-decodes-to-default convention) at ``INITIAL_BALANCE``.  A
    transfer reads both accounts and writes back ``src - amount`` /
    ``dst + amount`` computed from the values read *in the same attempt*,
    so serializability implies conservation of the total balance.
    """

    name = "bank-transfer"
    INITIAL_BALANCE = 1_000
    AUDIT_FRACTION = 0.125
    AUDIT_SIZE = 6

    @staticmethod
    def account_key(i: int) -> str:
        return f"acct{i:05d}"

    def next_tx(self) -> TxSpec:
        rng = self._rng
        if (self.config.num_keys > 1
                and float(rng.random()) < self.AUDIT_FRACTION):
            self._count("audits")
            ops = tuple(Op(False, self.account_key(i))
                        for i in self._distinct_indices(self.AUDIT_SIZE))
            return TxSpec(ops, read_only=True)
        self._count("transfers")
        src_i = self._pick_idx()
        dst_i = self._pick_idx()
        while dst_i == src_i and self.config.num_keys > 1:
            dst_i = self._pick_idx()
        amount = int(rng.integers(1, 100))
        src, dst = self.account_key(src_i), self.account_key(dst_i)
        init = self.INITIAL_BALANCE
        ops = (Op(False, src), Op(False, dst),
               Op(True, src, compute=_rmw(src, lambda b, a=amount: b - a,
                                          init)),
               Op(True, dst, compute=_rmw(dst, lambda b, a=amount: b + a,
                                          init)))
        return TxSpec(ops)


class OrdersGenerator(ScenarioGenerator):
    """TPC-C-ish order pipeline against hot district rows.

    Each order reads its district's counter, increments it, inserts a
    unique order row valued with the district index, and sells one unit of
    a (Zipf-popular) item.  The district counter is the hot row: every
    order in a district serializes through it.
    """

    name = "orders"
    DISTRICTS = 4

    @staticmethod
    def district_key(d: int) -> str:
        return f"dist{d:03d}"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._seq = 0

    def next_tx(self) -> TxSpec:
        rng = self._rng
        d = int(rng.integers(self.DISTRICTS))
        dist_key = self.district_key(d)
        order_key = f"order{self.client_index:03d}x{self._seq:06d}"
        self._seq += 1
        item_key = f"item{self._pick_idx():05d}"
        self._count("orders")
        ops = (Op(False, dist_key),
               Op(True, dist_key, compute=_rmw(dist_key, lambda n: n + 1)),
               Op(True, order_key, value=encode_int(d)),
               Op(False, item_key),
               Op(True, item_key, compute=_rmw(item_key, lambda n: n + 1)))
        return TxSpec(ops)


class ScanVsOltpGenerator(ScenarioGenerator):
    """Long read-only analytic scans racing OLTP increment writers.

    Every fourth client is a scanner issuing ``SCAN_LEN``-row read-only
    transactions (explicitly flagged, so replicated MVTIL routes them to
    follower reads at the GC-floor snapshot); the rest run short
    read-increment-write transactions over distinct rows.
    """

    name = "scan-vs-oltp"
    SCAN_LEN = 24

    @staticmethod
    def row_key(i: int) -> str:
        return f"row{i:05d}"

    @property
    def is_scanner(self) -> bool:
        return self.num_clients > 1 and self.client_index % 4 == 3

    def next_tx(self) -> TxSpec:
        rng = self._rng
        if self.is_scanner:
            self._count("scans")
            start = int(rng.integers(self.config.num_keys))
            n = min(self.SCAN_LEN, self.config.num_keys)
            ops = tuple(
                Op(False, self.row_key((start + j) % self.config.num_keys))
                for j in range(n))
            return TxSpec(ops, read_only=True)
        self._count("oltp_txs")
        ops: list[Op] = []
        for i in self._distinct_indices(self.config.tx_size):
            key = self.row_key(i)
            ops.append(Op(False, key))
            ops.append(Op(True, key, compute=_rmw(key, lambda n: n + 1)))
        return TxSpec(tuple(ops))


class SecondaryIndexGenerator(ScenarioGenerator):
    """Every row update atomically maintains a derived index key.

    An update bumps the row's version counter and rewrites the index key
    to ``derive(new version)`` computed from the value read in the same
    transaction; lookups read row + index (write-free, so the runner's
    derived read-only detection kicks in without an explicit flag).
    """

    name = "secondary-index"
    UPDATE_FRACTION = 0.8

    @staticmethod
    def row_key(i: int) -> str:
        return f"user{i:05d}"

    @staticmethod
    def index_key(i: int) -> str:
        return f"index{i:05d}"

    def next_tx(self) -> TxSpec:
        rng = self._rng
        i = self._pick_idx()
        row, idx = self.row_key(i), self.index_key(i)
        if float(rng.random()) < self.UPDATE_FRACTION:
            self._count("updates")
            ops = (Op(False, row),
                   Op(True, row, compute=_rmw(row, lambda n: n + 1)),
                   Op(True, idx, compute=lambda reads, k=row: encode_int(
                       _derive_index(decode_int(reads.get(k)) + 1))))
            return TxSpec(ops)
        self._count("lookups")
        return TxSpec((Op(False, row), Op(False, idx)))


class FlashCrowdGenerator(ScenarioGenerator):
    """Calm/burst phases on a tiny hot set, with a critical class.

    Each client cycles through ``CYCLE`` transactions: the first
    ``CYCLE - BURST_LEN`` are calm increments over the cold key space, the
    rest hammer one of ``HOT_KEYS`` hot counters.  ``critical_fraction``
    of transactions carry the MVTL-Prio class flag; the cluster overrides
    turn on the PR-4 overload controller, so bursts are shed/deadlined
    while criticals bypass the gates.
    """

    name = "flash-crowd"
    HOT_KEYS = 4
    CYCLE = 16
    BURST_LEN = 6

    @staticmethod
    def hot_key(j: int) -> str:
        return f"hot{j:02d}"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._seq = 0

    def next_tx(self) -> TxSpec:
        rng = self._rng
        cfg = self.config
        critical = (cfg.critical_fraction > 0.0
                    and float(rng.random()) < cfg.critical_fraction)
        in_burst = (self._seq % self.CYCLE) >= (self.CYCLE - self.BURST_LEN)
        self._seq += 1
        if in_burst:
            self._count("burst_txs")
            key = self.hot_key(int(rng.integers(self.HOT_KEYS)))
            ops = (Op(False, key),
                   Op(True, key, compute=_rmw(key, lambda n: n + 1)))
        else:
            self._count("calm_txs")
            ops_l: list[Op] = []
            for i in self._distinct_indices(cfg.tx_size):
                key = f"cold{i:05d}"
                ops_l.append(Op(False, key))
                ops_l.append(Op(True, key,
                                compute=_rmw(key, lambda n: n + 1)))
            ops = tuple(ops_l)
        return TxSpec(ops, critical=critical)


# ---------------------------------------------------------------------------
# Invariant checks
# ---------------------------------------------------------------------------
# Each check receives a ClusterResult from a run with config.scenario set
# (final_state + scenario_report populated, record_history on) and returns
# a list of failure strings (empty = all invariants hold).

def _committed_key_writers(history: Any) -> dict[str, int]:
    """key -> number of committed transactions that wrote it."""
    counts: dict[str, int] = {}
    for rec in history.committed():
        for key in set(rec.writes):
            counts[key] = counts.get(key, 0) + 1
    return counts


def _base_guard(result: Any) -> list[str]:
    failures = []
    rep = result.scenario_report
    if rep is None:
        return ["run did not record a scenario_report"]
    if not rep.get("quiesced"):
        failures.append("clients did not quiesce before the drain deadline "
                        "(final-state invariants would be meaningless)")
    if result.final_state is None:
        failures.append("no final state captured")
    if result.history is None:
        failures.append("scenario runs must record the history")
    if not result.committed:
        failures.append("no transaction committed")
    return failures


def check_bank_transfer(result: Any) -> list[str]:
    failures = _base_guard(result)
    if failures:
        return failures
    initial = BankTransferGenerator.INITIAL_BALANCE
    drift = sum(decode_int(v, initial) - initial
                for k, v in result.final_state.items()
                if k.startswith("acct"))
    if drift != 0:
        failures.append(f"balance conservation violated: net drift of "
                        f"{drift:+d} across accounts")
    counters = result.scenario_report["counters"]
    if not counters.get("transfers"):
        failures.append("no transfer transactions were generated")
    if not counters.get("audits"):
        failures.append("no audit transactions were generated")
    return failures


def check_orders(result: Any) -> list[str]:
    failures = _base_guard(result)
    if failures:
        return failures
    final = result.final_state
    writers = _committed_key_writers(result.history)
    for key, value in sorted(final.items()):
        if key.startswith("dist"):
            count, expect = decode_int(value), writers.get(key, 0)
            if count != expect:
                failures.append(
                    f"lost update on {key}: counter {count} but "
                    f"{expect} committed transactions wrote it")
    order_rows = 0
    for rec in result.history.committed():
        dists = [k for k in rec.writes if k.startswith("dist")]
        orders = [k for k in rec.writes if k.startswith("order")]
        if not dists:
            continue
        if len(orders) != 1:
            failures.append(f"tx {rec.tx_id}: wrote {len(orders)} order "
                            f"rows (atomic pipeline expects exactly 1)")
            continue
        order_rows += 1
        [order_key] = orders
        if order_key not in final:
            failures.append(f"committed order row {order_key} missing from "
                            f"the final state (atomicity violated)")
        else:
            d = decode_int(final[order_key], -1)
            if OrdersGenerator.district_key(d) not in dists:
                failures.append(f"order row {order_key} names district "
                                f"{d} but the tx wrote {dists}")
    if not order_rows:
        failures.append("no committed order pipeline found")
    return failures


def check_scan_vs_oltp(result: Any) -> list[str]:
    failures = _base_guard(result)
    if failures:
        return failures
    rep = result.replication_report or {}
    if not rep.get("follower_reads"):
        failures.append("no scan was served by a follower replica "
                        "(read-only routing broken)")
    if not rep.get("snapshot_commits"):
        failures.append("no read-only snapshot transaction committed")
    writers = _committed_key_writers(result.history)
    for key, value in sorted(result.final_state.items()):
        if key.startswith("row"):
            count, expect = decode_int(value), writers.get(key, 0)
            if count != expect:
                failures.append(
                    f"lost update on {key}: counter {count} but "
                    f"{expect} committed transactions wrote it")
    counters = result.scenario_report["counters"]
    if not counters.get("scans"):
        failures.append("no analytic scan was generated")
    if not counters.get("oltp_txs"):
        failures.append("no OLTP transaction was generated")
    return failures


def check_secondary_index(result: Any) -> list[str]:
    failures = _base_guard(result)
    if failures:
        return failures
    final = result.final_state
    for key, value in sorted(final.items()):
        if key.startswith("user"):
            idx_key = "index" + key[len("user"):]
            if idx_key not in final:
                failures.append(f"{key} updated but {idx_key} missing "
                                f"(index maintenance not atomic)")
            else:
                want = _derive_index(decode_int(value))
                got = decode_int(final[idx_key])
                if got != want:
                    failures.append(f"index inconsistency: {idx_key}={got} "
                                    f"but derive({key}) = {want}")
        elif key.startswith("index"):
            if "user" + key[len("index"):] not in final:
                failures.append(f"{key} present without its row "
                                f"(dangling index entry)")
    for rec in result.history.committed():
        rows = {k for k in rec.writes if k.startswith("user")}
        idxs = {k for k in rec.writes if k.startswith("index")}
        if {("index" + k[len("user"):]) for k in rows} != idxs:
            failures.append(f"tx {rec.tx_id}: wrote rows {sorted(rows)} but "
                            f"indexes {sorted(idxs)}")
    if not result.scenario_report["counters"].get("updates"):
        failures.append("no update transaction was generated")
    return failures


def check_flash_crowd(result: Any) -> list[str]:
    failures = _base_guard(result)
    if failures:
        return failures
    over = result.overload_report
    pressure = (over.get("shed", 0) + over.get("expired", 0)
                + over.get("admission_rejects", 0))
    if not pressure:
        failures.append("overload controller never engaged "
                        "(no shed/expired/admission-reject)")
    writers = _committed_key_writers(result.history)
    for key, value in sorted(result.final_state.items()):
        if key.startswith("hot"):
            count, expect = decode_int(value), writers.get(key, 0)
            if count != expect:
                failures.append(
                    f"lost update on hot key {key}: counter {count} but "
                    f"{expect} committed transactions wrote it")
    cls = over.get("class_summary", {})

    def commit_rate(c: dict) -> float:
        total = c.get("committed", 0) + c.get("aborted", 0)
        return c.get("committed", 0) / total if total else 1.0

    crit, norm = cls.get("critical", {}), cls.get("normal", {})
    if crit and norm and commit_rate(crit) < commit_rate(norm):
        failures.append(
            f"critical commit rate {commit_rate(crit):.3f} below normal "
            f"{commit_rate(norm):.3f} under the flash crowd (Thm. 3's "
            f"distributed analogue)")
    if not result.scenario_report["counters"].get("burst_txs"):
        failures.append("no burst-phase transaction was generated")
    return failures


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One named scenario: generator factory, defaults, invariant check."""

    name: str
    factory: type[ScenarioGenerator]
    description: str
    #: Default workload knobs (num_keys doubles as the entity count).
    workload: WorkloadConfig
    #: ClusterConfig field overrides applied by :func:`scenario_config`.
    overrides: dict = field(default_factory=dict)
    #: ClusterResult -> list of invariant-failure strings.
    check: Callable[[Any], list[str]] = lambda result: []


def _scan_vs_oltp_overrides() -> dict:
    from ..sim.testbed import LOCAL_TESTBED
    # Short GC horizon + period: the purge floor is the snapshot timestamp
    # follower reads lock, so it must advance well inside the run; warmup
    # outlasts the first floor broadcast so measured scans hit followers.
    return dict(protocol="mvtil-early", num_clients=8, num_servers=3,
                replication=3, follower_reads=True,
                profile=replace(LOCAL_TESTBED, gc_horizon=1.0),
                gc_period=0.2, warmup=1.2, measure=1.5,
                record_history=True)


def _flash_crowd_overrides() -> dict:
    from ..sim.testbed import CLOUD_TESTBED
    # Deliberately scarce capacity (the PR-4 overload testbed): 4
    # single-slot servers at 1 ms/request saturate under a few dozen
    # closed-loop clients, so burst phases hit real shedding/deadlines.
    profile = replace(CLOUD_TESTBED, num_servers=4, service_time=1e-3)
    return dict(protocol="mvtil-early", num_clients=24, profile=profile,
                warmup=0.4, measure=1.2, queue_capacity=16, tx_budget=0.15,
                admission_control=True, breaker_threshold=8,
                breaker_cooldown=0.1, read_timeout=0.04, rpc_timeout=0.08,
                rpc_retries=1, record_history=True)


def _registry() -> dict[str, Scenario]:
    scenarios = [
        Scenario(
            name="bank-transfer",
            factory=BankTransferGenerator,
            description="atomic transfers + audits; balance conservation",
            workload=WorkloadConfig(num_keys=32, tx_size=4,
                                    write_fraction=0.5, zipf_s=0.6),
            overrides=dict(protocol="mvtil-early", num_clients=8,
                           warmup=0.3, measure=1.2, record_history=True),
            check=check_bank_transfer),
        Scenario(
            name="orders",
            factory=OrdersGenerator,
            description="RMW order pipelines on hot district counters",
            workload=WorkloadConfig(num_keys=200, tx_size=5,
                                    write_fraction=0.5, zipf_s=0.8),
            overrides=dict(protocol="mvtil-early", num_clients=8,
                           warmup=0.3, measure=1.2, record_history=True),
            check=check_orders),
        Scenario(
            name="scan-vs-oltp",
            factory=ScanVsOltpGenerator,
            description="read-only scans on follower replicas vs "
                        "OLTP increment writers",
            workload=WorkloadConfig(num_keys=400, tx_size=3,
                                    write_fraction=1.0),
            overrides=_scan_vs_oltp_overrides(),
            check=check_scan_vs_oltp),
        Scenario(
            name="secondary-index",
            factory=SecondaryIndexGenerator,
            description="atomic derived-index maintenance on every update",
            workload=WorkloadConfig(num_keys=150, tx_size=3,
                                    write_fraction=0.8),
            overrides=dict(protocol="mvtil-early", num_clients=6,
                           warmup=0.3, measure=1.2, record_history=True),
            check=check_secondary_index),
        Scenario(
            name="flash-crowd",
            factory=FlashCrowdGenerator,
            description="hot-key burst phases on the overload controller",
            workload=WorkloadConfig(num_keys=2_000, tx_size=3,
                                    write_fraction=0.5,
                                    critical_fraction=0.15),
            overrides=_flash_crowd_overrides(),
            check=check_flash_crowd),
    ]
    return {s.name: s for s in scenarios}


#: The scenario registry, keyed by name.
SCENARIOS: dict[str, Scenario] = _registry()


def scenario_names() -> tuple[str, ...]:
    return tuple(SCENARIOS)


def make_scenario_generator(name: str, config: WorkloadConfig,
                            rng: np.random.Generator, *,
                            client_index: int = 0,
                            num_clients: int = 1) -> ScenarioGenerator:
    """Instantiate the named scenario's per-client generator."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; expected one of "
                         f"{sorted(SCENARIOS)}") from None
    return scenario.factory(config, rng, client_index=client_index,
                            num_clients=num_clients)


def scenario_config(name: str, *, seed: int = 0, **kwargs: Any) -> Any:
    """The named scenario's reference ClusterConfig (seed + overrides).

    ``kwargs`` override the scenario defaults (e.g. shorter ``measure``
    for smoke tests).  A ``workload`` kwarg replaces the scenario's
    default workload knobs wholesale.
    """
    from ..dist.cluster import ClusterConfig  # local: avoid import cycle
    scenario = SCENARIOS[name]  # KeyError -> caller's problem, names public
    fields = dict(scenario.overrides)
    fields.update(kwargs)
    fields.setdefault("workload", scenario.workload)
    return ClusterConfig(scenario=name, seed=seed, **fields)


def check_scenario(name: str, result: Any) -> list[str]:
    """Run the named scenario's invariants; returns failure strings."""
    return SCENARIOS[name].check(result)


@dataclass(frozen=True)
class ScenarioCellSummary:
    """Picklable per-scenario cell summary for the parallel sweep.

    A scenario ``ClusterResult`` carries the full history recorder (whose
    lock does not pickle), so worker processes reduce to this summary
    instead: the invariants and theorem duels run *inside the worker*, and
    only their deterministic outputs cross the pipe.  The counter
    attributes mirror ``ClusterResult`` so the harness payload view is
    byte-identical between serial and parallel sweeps.
    """

    scenario: str
    committed: int
    aborted: int
    throughput: float
    commit_rate: float
    messages_sent: int
    messages_per_commit: float
    sim_events: int
    quiesced: bool
    counters: dict
    final_state_keys: int
    invariant_failures: tuple
    serial_aborts: dict
    ghost_aborts: dict


def reduce_scenario_cell(result: Any) -> ScenarioCellSummary:
    """Reduce a scenario ClusterResult to its picklable summary.

    Top-level so grid cells can reference it under the spawn start method.
    Runs the scenario's invariant checks plus both theorem duels (which
    depend only on the scenario name, so parallelizing them per-cell keeps
    the merged output identical to the serial path).
    """
    name = result.config.scenario
    skew = serial_skew_duel(name)
    ghost = ghost_abort_duel(name)
    return ScenarioCellSummary(
        scenario=name,
        committed=result.committed,
        aborted=result.aborted,
        throughput=result.throughput,
        commit_rate=result.commit_rate,
        messages_sent=result.messages_sent,
        messages_per_commit=result.messages_per_commit,
        sim_events=result.sim_events,
        quiesced=result.scenario_report["quiesced"],
        counters=dict(result.scenario_report["counters"]),
        final_state_keys=len(result.final_state or {}),
        invariant_failures=tuple(check_scenario(name, result)),
        serial_aborts={policy: r["serial_aborts"]
                       for policy, r in skew.items()},
        ghost_aborts={policy: r["ghost_aborts"]
                      for policy, r in ghost.items()},
    )


# ---------------------------------------------------------------------------
# Theorem duels (centralized engine)
# ---------------------------------------------------------------------------

class _SteppingTime:
    """Controllable time source for the skewed-clock duel."""

    def __init__(self) -> None:
        self.t = 0.0

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t

    def __call__(self) -> float:
        return self.t


def _duel_workload(name: str, num_keys: int) -> WorkloadConfig:
    """The scenario's workload shrunk onto a tiny key space.

    Duels run a serial/batched schedule of a few hundred transactions, so
    the pathologies need contention density the full-size key spaces would
    dilute away.
    """
    scenario = SCENARIOS[name]
    return replace(scenario.workload,
                   num_keys=min(scenario.workload.num_keys, num_keys))


def _apply_spec(engine: Any, tx: Any, spec: TxSpec) -> None:
    """Execute a TxSpec's ops against the centralized engine."""
    reads: dict[str, Any] = {}
    for op in spec.ops:
        if op.is_write:
            value = op.value if op.compute is None else op.compute(reads)
            engine.write(tx, op.key, value)
        else:
            reads[op.key] = engine.read(tx, op.key)


def serial_skew_duel(name: str = "bank-transfer", *, seed: int = 101,
                     num_txs: int = 150, epsilon: float = 0.05,
                     num_pids: int = 4, num_keys: int = 8,
                     policies: Sequence[str] | None = None) -> dict:
    """Theorem 4 duel: serial execution under epsilon-skewed clocks.

    The named scenario's transaction stream runs strictly serially (each
    transaction commits or aborts before the next begins) on the
    centralized engine, with per-process clocks skewed by fixed offsets
    drawn from ``[-epsilon, +epsilon]`` — i.e. epsilon-synchronized, the
    theorem's premise.  In a serial execution *every* abort is a serial
    abort.  MVTL-epsilon-clock must finish with zero; MVTL-TO (which
    behaves as MVTO+, Theorem 5) must abort at least once when a later
    transaction draws a smaller timestamp and collides with an earlier
    transaction's persistent read locks.

    ``policies`` selects registered policy names (plus ``"bohm"``, which
    runs the batched baseline on the same spec stream — one-transaction
    batches, so the execution is serial too); the default pairing
    preserves the original theorem duel.
    """
    from ..clocks.clock import SkewedClock
    from ..core.engine import MVTLEngine
    from ..core.exceptions import TransactionAborted
    from ..policies.registry import make_policy

    workload = _duel_workload(name, num_keys)
    if policies is None:
        policies = ("mvtl-epsilon-clock", "mvtl-to")
    results: dict[str, dict[str, int]] = {}
    for policy_name in policies:
        # Identical seeded schedule per policy: same skews, same advances,
        # same transaction stream.
        rng = np.random.default_rng(seed)
        src = _SteppingTime()
        offsets = [float(rng.uniform(-epsilon, epsilon))
                   for _ in range(num_pids)]
        gen = make_scenario_generator(name, workload, rng)
        commits = aborts = 0
        if policy_name == "bohm":
            from ..baselines.bohm import BohmEngine
            bohm = BohmEngine()
            for n in range(num_txs):
                src.advance(float(rng.uniform(0.2, 1.5)) * epsilon)
                bohm.submit(gen.next_tx(), pid=1 + n % num_pids)
                batch = bohm.run_batch()
                commits += sum(1 for tx in batch if tx.committed)
                aborts += sum(1 for tx in batch if not tx.committed)
            results[policy_name] = {"commits": commits,
                                    "serial_aborts": aborts}
            continue
        clocks = {pid: SkewedClock(src, offsets[pid - 1])
                  for pid in range(1, num_pids + 1)}
        engine = MVTLEngine(make_policy(policy_name, epsilon=epsilon),
                            clock_for_pid=lambda pid: clocks[pid],
                            default_timeout=0.2)
        for n in range(num_txs):
            # Advances comparable to the skew spread, so transaction order
            # and timestamp order frequently invert.
            src.advance(float(rng.uniform(0.2, 1.5)) * epsilon)
            tx = engine.begin(pid=1 + n % num_pids)
            try:
                _apply_spec(engine, tx, gen.next_tx())
                ok = engine.commit(tx)
            except TransactionAborted:
                ok = False
            if ok:
                commits += 1
            else:
                aborts += 1
        results[policy_name] = {"commits": commits, "serial_aborts": aborts}
    return results


def ghost_abort_duel(name: str = "orders", *, seed: int = 202,
                     rounds: int = 40, batch: int = 6,
                     abort_fraction: float = 0.4,
                     num_keys: int = 8,
                     policies: Sequence[str] | None = None) -> dict:
    """Theorem 7 duel: aborts caused by already-dead transactions.

    Each round begins a batch of scenario transactions together (ascending
    timestamps from the shared logical clock), executes their operations,
    user-aborts a seeded fraction — the earliest transaction always
    survives — and commits the survivors in reverse begin order.  Under
    MVTL-TO the aborted transactions' read locks persist (MVTO+'s
    read-timestamps), so a surviving lower-timestamp writer can be killed
    by locks whose owners are all dead: a *ghost abort*, classified via
    the NO_COMMON_TIMESTAMP abort reason plus the conflict holders the
    policy reports at commit-lock failure (the
    :meth:`~repro.core.policy.MVTLPolicy.conflict_holders` surface).
    MVTL-Ghostbuster GCs dead transactions eagerly, so its ghost count must
    be zero (it may still abort against *live or committed* conflicts —
    that is allowed).

    ``policies`` selects registered policy names (plus ``"bohm"``: dooms
    map to Bohm's explicit user aborts, whose placeholders every reader
    skips, so it can never ghost-abort either); the default pairing
    preserves the original theorem duel.
    """
    from ..core.engine import MVTLEngine
    from ..core.exceptions import TransactionAborted
    from ..policies.registry import make_policy

    workload = _duel_workload(name, num_keys)
    if policies is None:
        policies = ("mvtl-ghostbuster", "mvtl-to")
    results: dict[str, dict[str, int]] = {}
    for policy_name in policies:
        rng = np.random.default_rng(seed)
        gen = make_scenario_generator(name, workload, rng)
        if policy_name == "bohm":
            from ..baselines.bohm import BohmEngine
            bohm = BohmEngine()
            commits = aborts = 0
            for _ in range(rounds):
                specs = [gen.next_tx() for _ in range(batch)]
                doomed = [i > 0 and float(rng.random()) < abort_fraction
                          for i in range(batch)]
                for spec, doom in zip(specs, doomed):
                    bohm.submit(spec, doomed=doom)
                for tx in bohm.run_batch():
                    if tx.committed:
                        commits += 1
                    elif not tx.doomed:
                        aborts += 1
            results[policy_name] = {"commits": commits, "aborts": aborts,
                                    "ghost_aborts": 0}
            continue
        engine = MVTLEngine(make_policy(policy_name), default_timeout=0.2)
        dead_ids: set[Any] = set()
        commits = aborts = ghost_aborts = 0
        for _ in range(rounds):
            txs = [engine.begin(pid=i + 1) for i in range(batch)]
            live = []
            for tx in txs:
                try:
                    _apply_spec(engine, tx, gen.next_tx())
                    live.append(tx)
                except TransactionAborted:
                    dead_ids.add(tx.id)
                    aborts += 1
            doomed = [tx for tx in live[1:]
                      if float(rng.random()) < abort_fraction]
            for tx in doomed:
                engine.abort(tx)
                dead_ids.add(tx.id)
            survivors = [tx for tx in live if tx not in doomed]
            for tx in reversed(survivors):
                if engine.commit(tx):
                    commits += 1
                    continue
                aborts += 1
                holders = engine.policy.conflict_holders(tx)
                if holders and all(h in dead_ids for h in holders):
                    ghost_aborts += 1
                dead_ids.add(tx.id)
        results[policy_name] = {"commits": commits, "aborts": aborts,
                                "ghost_aborts": ghost_aborts}
    return results


# ---------------------------------------------------------------------------
# Policy arena (BENCH_8): adaptive vs its fixed constituents vs Bohm
# ---------------------------------------------------------------------------

#: The four fixed policies the adaptive selector switches between.
ARENA_FIXED_POLICIES = ("mvtl-to", "mvtl-pref", "mvtl-prio",
                        "mvtl-epsilon-clock")

#: Everything the BENCH_8 arena compares, in cell order.
ARENA_POLICIES = ("mvtl-adaptive",) + ARENA_FIXED_POLICIES + ("bohm",)


def policy_arena(name: str, policy_name: str, *, seed: int = 303,
                 rounds: int = 100, batch: int = 6, epsilon: float = 0.05,
                 skew: float = 0.05, num_keys: int = 8,
                 doom_fraction: float = 0.15, check: bool = True) -> dict:
    """One arena cell: the named scenario's stream under one policy.

    The schedule combines both duel pathologies at moderate intensity so no
    single fixed policy wins everywhere: each round begins a batch of
    scenario transactions concurrently on epsilon-skewed per-process clocks
    (Theorem 4 pressure on TO's single timestamp), user-aborts a seeded
    fraction after execution (Theorem 7 ghost pressure on policies that
    keep dead read locks), and commits the survivors in reverse begin order
    (commit-point collisions, Theorem 2's regime).  The stream, the skews
    and the doom draws are identical for every policy — the doom indices
    are drawn up front, per round, so the RNG consumption cannot depend on
    policy-specific abort behaviour.

    ``commit_rate`` is commits over *decided* transactions (dooms are user
    decisions, not policy failures, and their count is seed-fixed).  With
    ``check`` the full history is recorded and MVSG-checked — every policy,
    adaptive mid-run switches and Bohm included, must stay serializable.
    """
    from ..baselines.bohm import BohmEngine
    from ..clocks.clock import SkewedClock
    from ..core.engine import MVTLEngine
    from ..core.exceptions import TransactionAborted
    from ..policies.registry import make_policy
    from ..verify.history import HistoryRecorder
    from ..verify.mvsg import check_serializable

    rng = np.random.default_rng(seed)
    src = _SteppingTime()
    offsets = [float(rng.uniform(-skew, skew)) for _ in range(batch)]
    gen = make_scenario_generator(name, _duel_workload(name, num_keys), rng)
    recorder = HistoryRecorder() if check else None
    commits = aborts = decided = 0

    if policy_name == "bohm":
        engine: Any = BohmEngine(history=recorder)
        for _ in range(rounds):
            src.advance(float(rng.uniform(0.2, 1.5)) * skew)
            specs = [gen.next_tx() for _ in range(batch)]
            doomed = [i > 0 and float(rng.random()) < doom_fraction
                      for i in range(batch)]
            decided += sum(1 for d in doomed if not d)
            for i, (spec, doom) in enumerate(zip(specs, doomed)):
                engine.submit(spec, pid=i + 1, doomed=doom)
            for tx in engine.run_batch():
                if tx.committed:
                    commits += 1
                elif not tx.doomed:
                    aborts += 1
        switches = 0
    else:
        clocks = {pid: SkewedClock(src, offsets[pid - 1])
                  for pid in range(1, batch + 1)}
        engine = MVTLEngine(make_policy(policy_name, epsilon=epsilon),
                            clock_for_pid=lambda pid: clocks[pid],
                            default_timeout=0.005, history=recorder)
        for _ in range(rounds):
            src.advance(float(rng.uniform(0.2, 1.5)) * skew)
            specs = [gen.next_tx() for _ in range(batch)]
            doomed = [i > 0 and float(rng.random()) < doom_fraction
                      for i in range(batch)]
            decided += sum(1 for d in doomed if not d)
            txs = [engine.begin(pid=i + 1, priority=bool(spec.critical))
                   for i, spec in enumerate(specs)]
            live: list[tuple[int, Any]] = []
            for i, (tx, spec) in enumerate(zip(txs, specs)):
                try:
                    _apply_spec(engine, tx, spec)
                    live.append((i, tx))
                except TransactionAborted:
                    if not doomed[i]:
                        aborts += 1
            for i, tx in live:
                if doomed[i]:
                    engine.abort(tx)
            survivors = [(i, tx) for i, tx in live if not doomed[i]]
            for _i, tx in reversed(survivors):
                if engine.commit(tx):
                    commits += 1
                else:
                    aborts += 1
        switches = len(getattr(engine.policy, "switches", ()))

    serializable = True
    if recorder is not None:
        report = check_serializable(recorder)
        serializable = report.serializable
    return {"commits": commits, "aborts": aborts, "decided": decided,
            "commit_rate": commits / max(1, decided),
            "serializable": serializable, "switches": switches}


@dataclass(frozen=True)
class PolicyCellConfig:
    """Picklable config of one arena cell (what :class:`Cell` carries)."""

    scenario: str
    policy: str
    seed: int = 303
    rounds: int = 200
    batch: int = 6
    epsilon: float = 0.05
    skew: float = 0.05
    num_keys: int = 8
    doom_fraction: float = 0.15


@dataclass(frozen=True)
class PolicyArenaSummary:
    """Arena cell result: mirrors ClusterResult's counter attributes.

    ``throughput``/``messages_*``/``sim_events`` are zero — the arena runs
    on the centralized engine, outside the simulator — but the attributes
    exist so the harness payload/bench views need no special cases.
    """

    scenario: str
    policy: str
    committed: int
    aborted: int
    decided: int
    commit_rate: float
    serializable: bool
    switches: int
    throughput: float = 0.0
    messages_sent: int = 0
    messages_per_commit: float = 0.0
    sim_events: int = 0


def run_policy_cell(config: PolicyCellConfig) -> PolicyArenaSummary:
    """Grid entry point: run one arena cell (top-level, pickles)."""
    res = policy_arena(config.scenario, config.policy, seed=config.seed,
                       rounds=config.rounds, batch=config.batch,
                       epsilon=config.epsilon, skew=config.skew,
                       num_keys=config.num_keys,
                       doom_fraction=config.doom_fraction)
    return PolicyArenaSummary(
        scenario=config.scenario, policy=config.policy,
        committed=res["commits"], aborted=res["aborts"],
        decided=res["decided"], commit_rate=res["commit_rate"],
        serializable=res["serializable"], switches=res["switches"])


# -- Bohm chaos validation (the BENCH_8 correctness cells) -------------------

#: Scenarios compatible with the single-sequencer Bohm cluster (no
#: replication/follower reads, no overload controller knobs).
BOHM_CHAOS_SCENARIOS = ("bank-transfer", "orders", "secondary-index")


def bohm_chaos_config(name: str, *, seed: int = 0) -> Any:
    """The named scenario's cluster config on the Bohm protocol with link
    faults (loss + duplicates) and retry-friendly RPC timeouts.

    ``rpc_timeout`` must sit well inside the measure window: the default
    5 s timeout means one lost message stalls a client past the whole run.
    """
    from ..sim.network import LinkFaults
    return scenario_config(
        name, seed=seed, protocol="bohm",
        faults=LinkFaults(loss=0.02, duplicate=0.02),
        rpc_timeout=0.2, rpc_retries=2, record_history=True)


@dataclass(frozen=True)
class BohmChaosSummary:
    """Picklable Bohm chaos-cell result: counters + correctness verdicts."""

    scenario: str
    committed: int
    aborted: int
    throughput: float
    commit_rate: float
    messages_sent: int
    messages_per_commit: float
    sim_events: int
    quiesced: bool
    serializable: bool
    invariant_failures: tuple


def reduce_bohm_chaos_cell(result: Any) -> BohmChaosSummary:
    """Reduce a Bohm chaos ClusterResult: MVSG + invariants, in-worker."""
    from ..verify.mvsg import check_serializable
    name = result.config.scenario
    report = check_serializable(result.history)
    return BohmChaosSummary(
        scenario=name,
        committed=result.committed,
        aborted=result.aborted,
        throughput=result.throughput,
        commit_rate=result.commit_rate,
        messages_sent=result.messages_sent,
        messages_per_commit=result.messages_per_commit,
        sim_events=result.sim_events,
        quiesced=result.scenario_report["quiesced"],
        serializable=report.serializable,
        invariant_failures=tuple(check_scenario(name, result)))
