"""Closed-loop client driver (§8.3).

"In an experiment, clients submit transactions repeatedly in a closed-loop."
Each simulated client runs :func:`closed_loop_client`: generate a transaction
from its workload stream, execute it operation by operation against the
protocol client, commit; on abort, optionally restart it ("the client ...
has the option of aborting or restarting the transaction", §8.1) after a
short randomized backoff, with a fresh timestamp/interval.  Every attempt
counts toward the commit rate — that is what the paper's "fraction of
transactions that commit" measures.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..core.exceptions import AbortReason, TransactionAborted
from ..sim.simulator import Sleep
from .generator import TxSpec, WorkloadGenerator
from .stats import RunStats

__all__ = ["closed_loop_client", "run_tx"]

#: Extra backoff multiplier for overload-signalled aborts (shed, deadline,
#: admission reject): the server told us it is saturated, so restarting on
#: the contention schedule would feed the overload.  4x per occurrence, on
#: top of the per-attempt doubling.
_OVERLOAD_BACKOFF_FACTOR = 4.0

_OVERLOAD_REASONS = (AbortReason.OVERLOADED, AbortReason.DEADLINE_EXCEEDED)


def run_tx(client: Any, spec: TxSpec,
           client_overhead: float) -> Generator[Any, Any, bool]:
    """Execute one transaction attempt; returns True on commit.

    Raises :class:`TransactionAborted` when the protocol aborts it.
    """
    # Non-interactive protocols (Bohm) take the whole pre-declared spec in
    # one shot instead of the op-by-op begin/read/write/commit loop.
    run_spec = getattr(client, "run_spec", None)
    if run_spec is not None:
        ok = yield from run_spec(spec)
        return ok
    # The read-only hint lets snapshot-capable clients (replicated MVTIL
    # with follower_reads) serve the whole transaction lock-free at the GC
    # frontier instead of running the interval protocol.  spec.is_read_only
    # covers both derived write-free specs and scenarios' explicit flag.
    tx = client.begin(priority=spec.critical,
                      read_only=spec.is_read_only)
    reads: dict[str, Any] = {}
    for op in spec.ops:
        if client_overhead > 0:
            yield Sleep(client_overhead)
        if op.is_write:
            value = op.value if op.compute is None else op.compute(reads)
            yield from client.write(tx, op.key, value)
        else:
            reads[op.key] = yield from client.read(tx, op.key)
    yield from client.commit(tx)
    return True


def closed_loop_client(client: Any, workload: WorkloadGenerator,
                       stats: RunStats, rng: np.random.Generator, *,
                       client_overhead: float = 0.0,
                       max_restarts: int = 2,
                       backoff: float = 0.002,
                       stop_after: float | None = None
                       ) -> Generator[Any, Any, None]:
    """The per-client driver process: submit transactions forever.

    A transaction is counted once, when its fate is decided: committed if
    any attempt (original or restart, §8.1) commits, aborted if the restart
    budget is exhausted.  This matches the paper's commit rate ("the
    fraction of transactions that commit"): a restart is the same
    transaction trying again, not a new submission.

    Restart backoff is jittered exponential: restart ``n`` sleeps a
    uniform draw from ``[0.5, 1.5) x backoff x 2^(n-1)``, scaled a further
    4x per overload-signalled abort (OVERLOADED / DEADLINE_EXCEEDED) — those
    aborts mean the server is saturated, and synchronized or eager
    restarts are exactly the retry storm that turns transient overload
    metastable.

    ``stop_after`` (simulated seconds) makes the loop finite: no new
    transaction is started at or past that time, so scenario runs can drain
    in-flight work and capture a quiescent final state.  ``None`` (the
    default) preserves the run-forever behaviour of every existing config.
    """
    while stop_after is None or stats.sim.now < stop_after:
        spec = workload.next_tx()
        attempts = 0
        committed = False
        started = stats.sim.now
        overload_aborts = 0
        while True:
            attempt_started = stats.sim.now
            try:
                yield from run_tx(client, spec, client_overhead)
                committed = True
                break
            except TransactionAborted as exc:
                stats.attempt_aborted(
                    reason=exc.reason,
                    latency=stats.sim.now - attempt_started,
                    critical=spec.critical)
                if attempts >= max_restarts:
                    break  # give up on this transaction
                attempts += 1
                if exc.reason in _OVERLOAD_REASONS:
                    overload_aborts += 1
                # Full-jitter backoff before restarting with a fresh
                # timestamp/interval "adjusted based on the state it has
                # already seen" (§8.1) — later clock reading = higher ts.
                scale = (2.0 ** (attempts - 1)
                         * _OVERLOAD_BACKOFF_FACTOR ** overload_aborts)
                yield Sleep(float(rng.uniform(0.5, 1.5)) * backoff * scale)
        stats.tx_done(committed=committed,
                      latency=stats.sim.now - started,
                      critical=spec.critical)
