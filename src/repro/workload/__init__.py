"""Workload generation, closed-loop driving, and measurement (§8.3)."""

from .generator import Op, TxSpec, WorkloadConfig, WorkloadGenerator
from .runner import closed_loop_client, run_tx
from .stats import RunStats, StateSample, StateSampler

__all__ = ["Op", "TxSpec", "WorkloadConfig", "WorkloadGenerator",
           "closed_loop_client", "run_tx",
           "RunStats", "StateSample", "StateSampler"]
