"""Workload generation, closed-loop driving, and measurement (§8.3).

Besides the knob-driven :class:`WorkloadGenerator`, the package ships a
registry of named *scenarios* (``repro.workload.scenarios``): seeded
generators with per-scenario invariants and theorem duels, runnable via
``python -m repro.bench scenario <name>``.
"""

from .generator import (Op, TxSpec, WorkloadConfig, WorkloadGenerator,
                        zipf_probabilities)
from .runner import closed_loop_client, run_tx
from .scenarios import (SCENARIOS, Scenario, ScenarioGenerator,
                        check_scenario, ghost_abort_duel,
                        make_scenario_generator, scenario_config,
                        scenario_names, serial_skew_duel)
from .stats import RunStats, StateSample, StateSampler

__all__ = ["Op", "TxSpec", "WorkloadConfig", "WorkloadGenerator",
           "zipf_probabilities",
           "closed_loop_client", "run_tx",
           "SCENARIOS", "Scenario", "ScenarioGenerator",
           "make_scenario_generator", "scenario_config", "check_scenario",
           "scenario_names", "serial_skew_duel", "ghost_abort_duel",
           "RunStats", "StateSample", "StateSampler"]
