"""Measurement (§8.3): throughput, commit rate, and state-size sampling.

"We measure the aggregate throughput of committed transactions and the
commit rate, which is the fraction of transactions that commit.  Before
measuring, we run a warm-up stage ...; we then measure the system ..."

:class:`RunStats` counts transaction completions inside the measurement
window; :class:`StateSampler` periodically records the total number of lock
records and versions across the servers (Fig. 6) and windowed
throughput/commit-rate (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from ..sim.simulator import Simulator, Sleep

__all__ = ["RunStats", "StateSample", "StateSampler"]


class RunStats:
    """Counts commits/aborts inside [warmup, warmup + measure]."""

    def __init__(self, sim: Simulator, warmup: float,
                 measure: float) -> None:
        self.sim = sim
        self.warmup = warmup
        self.measure = measure
        self.committed = 0
        self.aborted = 0
        self.committed_total = 0
        self.aborted_total = 0
        #: (time, committed_flag) completions for windowed series (Fig. 7).
        self.completions: list[tuple[float, bool]] = []
        self.record_completions = False
        #: Per-transaction latencies (begin of first attempt -> decision)
        #: of committed transactions inside the window.
        self.latencies: list[float] = []
        #: Per-*attempt* latencies of aborted attempts inside the window
        #: (begin of the attempt -> abort).  Attempt-level, not
        #: transaction-level: a transaction that aborts twice then commits
        #: contributes two entries here and one to ``latencies``.
        self.abort_latencies: list[float] = []
        #: Abort-reason counts of in-window aborted attempts.
        self.abort_reasons: dict[str, int] = {}
        self.aborted_attempts_total = 0
        #: Per-class (critical vs normal) in-window accounting, for the
        #: overload experiments: does the critical class keep its goodput
        #: and latency when the normal class saturates the servers?
        self.class_counts: dict[str, dict[str, int]] = {
            "critical": {"committed": 0, "aborted": 0},
            "normal": {"committed": 0, "aborted": 0},
        }
        self.class_latencies: dict[str, list[float]] = {
            "critical": [], "normal": []}
        #: Attempt-level abort counts per class (whole run, not windowed):
        #: the "criticals are not collateral damage" invariant check.
        self.class_attempt_aborts: dict[str, int] = {
            "critical": 0, "normal": 0}

    def attempt_aborted(self, reason: object = None,
                        latency: float | None = None,
                        critical: bool = False) -> None:
        """Record one aborted attempt (called per abort, incl. restarts)."""
        self.aborted_attempts_total += 1
        self.class_attempt_aborts["critical" if critical else "normal"] += 1
        now = self.sim.now
        if self.warmup <= now <= self.warmup + self.measure:
            if latency is not None:
                self.abort_latencies.append(latency)
            if reason is not None:
                reason = str(reason)
                self.abort_reasons[reason] = (
                    self.abort_reasons.get(reason, 0) + 1)

    def tx_done(self, committed: bool, latency: float | None = None,
                critical: bool = False) -> None:
        now = self.sim.now
        if committed:
            self.committed_total += 1
        else:
            self.aborted_total += 1
        if self.record_completions:
            self.completions.append((now, committed))
        if self.warmup <= now <= self.warmup + self.measure:
            cls = self.class_counts["critical" if critical else "normal"]
            if committed:
                self.committed += 1
                cls["committed"] += 1
                if latency is not None:
                    self.latencies.append(latency)
                    self.class_latencies[
                        "critical" if critical else "normal"].append(latency)
            else:
                self.aborted += 1
                cls["aborted"] += 1

    @property
    def throughput(self) -> float:
        """Committed transactions per second in the measurement window."""
        return self.committed / self.measure if self.measure > 0 else 0.0

    @property
    def commit_rate(self) -> float:
        """Fraction of transactions that committed in the window."""
        total = self.committed + self.aborted
        return self.committed / total if total else 1.0

    @staticmethod
    def _percentile(samples: list[float], q: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def latency_percentile(self, q: float, *, aborted: bool = False) -> float:
        """q-th percentile (0..100) of transaction latency.

        ``aborted=False`` (default): committed-transaction latencies;
        ``aborted=True``: aborted-attempt latencies.
        """
        return self._percentile(
            self.abort_latencies if aborted else self.latencies, q)

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """p50/p95/p99 + mean + count for committed and aborted attempts."""
        out = {}
        for name, samples in (("committed", self.latencies),
                              ("aborted", self.abort_latencies)):
            out[name] = {
                "count": len(samples),
                "mean": sum(samples) / len(samples) if samples else 0.0,
                "p50": self._percentile(samples, 50),
                "p95": self._percentile(samples, 95),
                "p99": self._percentile(samples, 99),
            }
        return out

    def class_summary(self) -> dict[str, dict[str, float]]:
        """Per-class goodput, commit counts and latency percentiles.

        Goodput is committed transactions of the class per second of
        measurement window — the number the overload experiments compare:
        at saturation the critical class should keep (most of) its goodput
        while the normal class degrades.
        """
        out: dict[str, dict[str, float]] = {}
        for cls in ("critical", "normal"):
            counts = self.class_counts[cls]
            lats = self.class_latencies[cls]
            out[cls] = {
                "committed": counts["committed"],
                "aborted": counts["aborted"],
                "goodput": (counts["committed"] / self.measure
                            if self.measure > 0 else 0.0),
                "p50": self._percentile(lats, 50),
                "p99": self._percentile(lats, 99),
            }
        return out

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)

    def windowed_series(self, window: float) -> list[tuple[float, float, float]]:
        """(t, throughput, commit_rate) per ``window`` bucket (Fig. 7)."""
        if not self.completions:
            return []
        buckets: dict[int, list[bool]] = {}
        for t, ok in self.completions:
            buckets.setdefault(int(t // window), []).append(ok)
        out = []
        for idx in sorted(buckets):
            flags = buckets[idx]
            commits = sum(flags)
            out.append((idx * window, commits / window,
                        commits / len(flags)))
        return out


@dataclass(frozen=True, slots=True)
class StateSample:
    """One Fig. 6 data point."""

    t: float
    locks: int
    versions: int


class StateSampler:
    """Samples aggregate server state every ``period`` simulated seconds."""

    def __init__(self, sim: Simulator, servers: list[Any],
                 period: float = 5.0) -> None:
        self.sim = sim
        self.servers = servers
        self.period = period
        self.samples: list[StateSample] = []

    def process(self) -> Generator[Any, Any, None]:
        while True:
            yield Sleep(self.period)
            locks = sum(s.lock_record_count() for s in self.servers)
            versions = sum(s.version_count() for s in self.servers)
            self.samples.append(StateSample(self.sim.now, locks, versions))
