"""Workload generation (§8.3).

An experiment fixes: transaction size (operations per transaction), fraction
of writes, key-space size, and key distribution.  Keys and values are small
8-character strings like the prototype's.  Each client owns an independent
random stream, so runs are reproducible and clients are uncorrelated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["Op", "TxSpec", "WorkloadConfig", "WorkloadGenerator",
           "zipf_probabilities"]


@dataclass(frozen=True, slots=True)
class Op:
    """One operation of a transaction.

    ``compute`` turns a write into a read-modify-write: instead of the
    static ``value``, the runner calls ``compute(reads)`` — ``reads`` maps
    each key read so far in this attempt to the value observed — at
    execution time.  A restarted attempt re-reads and re-computes, so RMW
    scenarios (bank transfers, order counters) stay correct across aborts.
    """

    is_write: bool
    key: str
    value: str | None = None
    compute: Callable[[dict[str, Any]], str] | None = None


@dataclass(frozen=True, slots=True)
class TxSpec:
    """A transaction to execute: its operations in order.

    ``critical`` marks MVTL-Prio-class transactions (§5.2): run with
    ``begin(priority=True)``, served ahead of normals by the distributed
    substrate's overload machinery and never shed.

    ``read_only`` overrides the runner's write-free detection: ``None``
    (default) derives the hint from the ops, an explicit bool forces it.
    Scenario generators flag analytic scans ``read_only=True`` so
    replicated MVTIL routes them to snapshot/follower reads.
    """

    ops: tuple[Op, ...]
    critical: bool = False
    read_only: bool | None = None

    @property
    def is_read_only(self) -> bool:
        """Whether the runner should request a read-only (snapshot) tx."""
        if self.read_only is not None:
            return self.read_only
        return not any(op.is_write for op in self.ops)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of §8.3: size, write mix, key space, skew."""

    num_keys: int = 10_000
    tx_size: int = 20
    write_fraction: float = 0.25
    #: Zipf exponent for key popularity; 0 = uniform (the paper's setting).
    zipf_s: float = 0.0
    #: Fraction of transactions marked critical (MVTL-Prio class, §5.2).
    #: 0 (the default) draws nothing from the random stream, so existing
    #: seeded runs are bit-for-bit unchanged.
    critical_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise ValueError("critical_fraction must be in [0, 1]")
        if self.tx_size < 1 or self.num_keys < 1:
            raise ValueError("tx_size and num_keys must be positive")
        if self.zipf_s < 0:
            # A negative exponent used to silently fall through the
            # ``zipf_s > 0.0`` gate in WorkloadGenerator and run uniform.
            raise ValueError("zipf_s must be >= 0 (0 = uniform)")


#: Memoized Zipf probability tables, keyed by (num_keys, zipf_s).  The
#: table is a pure function of those two knobs, so per-client recomputation
#: was O(clients x keys) of pure waste on large key spaces.  Cached arrays
#: are marked read-only; ``rng.choice`` only reads them.
_ZIPF_CACHE: dict[tuple[int, float], np.ndarray] = {}

#: Memoized normalized Zipf CDFs (same keying).  ``rng.choice(n, p=probs)``
#: recomputes ``p.cumsum()`` on *every* draw; sampling via a cached CDF +
#: ``searchsorted(rng.random(), side="right")`` replicates numpy's choice
#: computation (cumsum, normalize by the last entry, right-bisect one
#: uniform draw) and therefore consumes the identical stream and returns
#: the identical index — verified bit-for-bit against ``choice``.
_ZIPF_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}

#: Memoized key-string tables (``k0000000`` ...), keyed by num_keys: the
#: generators format the same few thousand key names millions of times.
_KEY_CACHE: dict[int, list[str]] = {}

#: Key spaces above this size fall back to per-draw formatting rather than
#: materializing a giant string table.
_KEY_CACHE_MAX = 200_000


def _zipf_cdf(num_keys: int, zipf_s: float) -> np.ndarray:
    cache_key = (num_keys, zipf_s)
    cdf = _ZIPF_CDF_CACHE.get(cache_key)
    if cdf is None:
        cdf = zipf_probabilities(num_keys, zipf_s).cumsum()
        cdf /= cdf[-1]  # exactly numpy choice's normalization
        cdf.setflags(write=False)
        _ZIPF_CDF_CACHE[cache_key] = cdf
    return cdf


def _key_table(num_keys: int) -> list[str] | None:
    if num_keys > _KEY_CACHE_MAX:
        return None
    table = _KEY_CACHE.get(num_keys)
    if table is None:
        table = _KEY_CACHE[num_keys] = [f"k{i:07d}" for i in range(num_keys)]
    return table


def zipf_probabilities(num_keys: int, zipf_s: float) -> np.ndarray:
    """The (memoized, read-only) Zipf probability table ``ranks ** -s``."""
    cache_key = (num_keys, zipf_s)
    probs = _ZIPF_CACHE.get(cache_key)
    if probs is None:
        ranks = np.arange(1, num_keys + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        probs = weights / weights.sum()
        probs.setflags(write=False)
        _ZIPF_CACHE[cache_key] = probs
    return probs


class WorkloadGenerator:
    """Yields :class:`TxSpec`s for one client."""

    def __init__(self, config: WorkloadConfig,
                 rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._value_counter = 0
        if config.zipf_s > 0.0:
            self._probs = zipf_probabilities(config.num_keys, config.zipf_s)
            self._cdf = _zipf_cdf(config.num_keys, config.zipf_s)
        else:
            self._probs = None
            self._cdf = None
        self._keys = _key_table(config.num_keys)

    def _pick_key(self) -> str:
        if self._cdf is None:
            idx = int(self._rng.integers(self.config.num_keys))
        else:
            # Stream-identical unrolling of rng.choice(n, p=self._probs):
            # one uniform draw, right-bisected into the cached CDF.
            idx = int(self._cdf.searchsorted(self._rng.random(),
                                             side="right"))
        keys = self._keys
        if keys is not None:
            return keys[idx]
        return f"k{idx:07d}"  # 8-character keys, like the prototype

    def _pick_value(self) -> str:
        self._value_counter += 1
        return f"v{self._value_counter % 10**7:07d}"  # 8-character values

    def next_tx(self) -> TxSpec:
        cfg = self.config
        # Short-circuit keeps the stream draw count identical to older
        # seeds when the feature is off (determinism across versions).
        critical = (cfg.critical_fraction > 0.0
                    and float(self._rng.random()) < cfg.critical_fraction)
        ops = []
        for _ in range(cfg.tx_size):
            key = self._pick_key()
            if self._rng.random() < cfg.write_fraction:
                ops.append(Op(True, key, self._pick_value()))
            else:
                ops.append(Op(False, key))
        return TxSpec(tuple(ops), critical=critical)

    def __iter__(self) -> Iterator[TxSpec]:
        while True:
            yield self.next_tx()
