"""Multiversion history recording.

Every engine in this library (MVTL with any policy, the MVTO+ and 2PL
baselines, the distributed cluster) can be given a :class:`HistoryRecorder`;
it captures, per transaction, which versions were read, which keys were
written and the commit timestamp.  The recorded history is the input to the
MVSG serializability checker (:mod:`repro.verify.mvsg`) — Appendix A's
correctness argument turned into an executable oracle.

Thread-safe: engines call it from arbitrary worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable

from ..core.timestamp import Timestamp

__all__ = ["TxRecord", "HistoryRecorder"]


@dataclass(slots=True)
class TxRecord:
    """Everything the checker needs to know about one transaction."""

    tx_id: Hashable
    reads: list[tuple[Hashable, Timestamp]] = field(default_factory=list)
    writes: tuple[Hashable, ...] = ()
    commit_ts: Timestamp | None = None
    aborted: bool = False
    abort_reason: str | None = None

    @property
    def committed(self) -> bool:
        return self.commit_ts is not None and not self.aborted


class HistoryRecorder:
    """Collects the multiversion history of an execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[Hashable, TxRecord] = {}
        self._order: list[Hashable] = []

    # -- engine callbacks -----------------------------------------------------

    def record_begin(self, tx_id: Hashable) -> None:
        with self._lock:
            if tx_id not in self._records:
                self._records[tx_id] = TxRecord(tx_id)
                self._order.append(tx_id)

    def record_read(self, tx_id: Hashable, key: Hashable,
                    version_ts: Timestamp) -> None:
        with self._lock:
            self._ensure(tx_id).reads.append((key, version_ts))

    def record_commit(self, tx_id: Hashable, commit_ts: Timestamp,
                      written_keys: tuple[Hashable, ...]) -> None:
        with self._lock:
            rec = self._ensure(tx_id)
            rec.commit_ts = commit_ts
            rec.writes = tuple(written_keys)

    def record_commit_key(self, tx_id: Hashable, commit_ts: Timestamp,
                          key: Hashable) -> None:
        """Merge one server-applied write into tx's commit record.

        Storage servers call this as they install committed versions, so a
        commit whose coordinator crashed between the decision and its own
        :meth:`record_commit` still appears in the history — otherwise the
        MVSG checker would see readers of a version nobody committed.
        Idempotent and safe to interleave with the coordinator's record.
        """
        with self._lock:
            rec = self._ensure(tx_id)
            if rec.commit_ts is None:
                rec.commit_ts = commit_ts
            if key not in rec.writes:
                rec.writes = rec.writes + (key,)

    def record_abort(self, tx_id: Hashable, reason: str) -> None:
        with self._lock:
            rec = self._ensure(tx_id)
            rec.aborted = True
            rec.abort_reason = reason

    def _ensure(self, tx_id: Hashable) -> TxRecord:
        rec = self._records.get(tx_id)
        if rec is None:
            rec = self._records[tx_id] = TxRecord(tx_id)
            self._order.append(tx_id)
        return rec

    # -- queries ---------------------------------------------------------------

    def records(self) -> list[TxRecord]:
        """All transaction records, in begin order."""
        with self._lock:
            return [self._records[t] for t in self._order]

    def committed(self) -> list[TxRecord]:
        """The committed projection C(H) (Appendix A)."""
        return [r for r in self.records() if r.committed]

    def aborted(self) -> list[TxRecord]:
        return [r for r in self.records() if r.aborted]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
