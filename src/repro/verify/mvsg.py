"""Multiversion serialization graph (MVSG) checking — Appendix A as code.

Given the committed projection of a recorded history, build the MVSG of
Bernstein/Hadzilacos/Goodman: vertices are committed transactions (plus a
virtual initial transaction ``T0`` that wrote every key's BOTTOM version at
``TS_ZERO``); for the version order ``<<`` induced by commit timestamps,

1. ``Ti -> Tj``   if ``Tj`` reads a version written by ``Ti``;
2. for every read ``rk[xj]`` and write ``wi[xi]`` of the same key
   (``i != j``, ``i != k``):
   if ``xi << xj`` add ``Ti -> Tj``, else add ``Tk -> Ti``.

The history is one-copy (multiversion view) serializable iff the MVSG is
acyclic [5].  This module turns that theorem into the library's test oracle:
:func:`check_serializable` returns a report that either certifies the run or
exhibits a concrete cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from ..core.timestamp import TS_ZERO, Timestamp
from .history import HistoryRecorder, TxRecord

__all__ = ["SerializabilityReport", "build_mvsg", "check_serializable"]

#: Name of the virtual transaction that wrote every initial BOTTOM version.
T_INIT = "__init__tx__"


@dataclass(frozen=True)
class SerializabilityReport:
    """Outcome of an MVSG check."""

    serializable: bool
    num_committed: int
    num_edges: int
    cycle: tuple[Hashable, ...] | None = None
    error: str | None = None

    def __bool__(self) -> bool:
        return self.serializable


def build_mvsg(records: list[TxRecord]) -> nx.DiGraph:
    """Construct the MVSG of the committed transactions in ``records``.

    Raises ValueError on malformed histories (a read of a version nobody
    wrote, or duplicate commit timestamps for writers of the same key) —
    these indicate an engine bug more fundamental than a serializability
    violation.
    """
    committed = [r for r in records if r.committed]
    graph = nx.DiGraph()
    graph.add_node(T_INIT)
    for rec in committed:
        graph.add_node(rec.tx_id)

    # Writer index: (key, version_ts) -> tx_id, and per-key version lists.
    writer: dict[tuple[Hashable, Timestamp], Hashable] = {}
    versions_of: dict[Hashable, list[tuple[Timestamp, Hashable]]] = {}
    for rec in committed:
        assert rec.commit_ts is not None
        for key in rec.writes:
            slot = (key, rec.commit_ts)
            if slot in writer:
                raise ValueError(
                    f"two committed writers of {key!r} share commit "
                    f"timestamp {rec.commit_ts!r}")
            writer[slot] = rec.tx_id
            versions_of.setdefault(key, []).append((rec.commit_ts, rec.tx_id))
    # The virtual initial version of every key ever touched.
    all_keys: set[Hashable] = set(versions_of)
    for rec in committed:
        for key, _ts in rec.reads:
            all_keys.add(key)
    for key in all_keys:
        versions_of.setdefault(key, []).insert(0, (TS_ZERO, T_INIT))
        versions_of[key].sort(key=lambda vt: vt[0])
        writer[(key, TS_ZERO)] = T_INIT

    # Reads-from edges (type 1) and read-write precedence edges (type 2).
    for rec in committed:
        for key, version_ts in rec.reads:
            src = writer.get((key, version_ts))
            if src is None:
                raise ValueError(
                    f"{rec.tx_id!r} read {key!r}@{version_ts!r}, "
                    f"which no committed transaction wrote")
            if src != rec.tx_id:
                graph.add_edge(src, rec.tx_id, kind="reads-from", key=key)
            # Type 2: relate this read to every other committed write of key.
            for other_ts, other_tx in versions_of[key]:
                if other_tx in (src, rec.tx_id):
                    continue
                if other_ts < version_ts:
                    graph.add_edge(other_tx, src, kind="ww-order", key=key)
                else:
                    graph.add_edge(rec.tx_id, other_tx, kind="rw-order",
                                   key=key)
    return graph


def check_serializable(
        history: HistoryRecorder | list[TxRecord]) -> SerializabilityReport:
    """Check a recorded execution for one-copy serializability.

    Accepts a recorder or a raw record list.  Returns a report; when the
    history is not serializable the report carries one offending cycle.
    """
    records = (history.records() if isinstance(history, HistoryRecorder)
               else list(history))
    try:
        graph = build_mvsg(records)
    except ValueError as exc:
        return SerializabilityReport(False, 0, 0, error=str(exc))
    try:
        cycle_edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        committed = sum(1 for r in records if r.committed)
        return SerializabilityReport(True, committed,
                                     graph.number_of_edges())
    cycle_nodes = tuple(edge[0] for edge in cycle_edges)
    committed = sum(1 for r in records if r.committed)
    return SerializabilityReport(False, committed, graph.number_of_edges(),
                                 cycle=cycle_nodes)
