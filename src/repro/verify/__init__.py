"""Serializability verification: history recording + MVSG checking."""

from .history import HistoryRecorder, TxRecord
from .mvsg import SerializabilityReport, build_mvsg, check_serializable

__all__ = ["HistoryRecorder", "TxRecord", "SerializabilityReport",
           "build_mvsg", "check_serializable"]
