"""Tests for the figure reporting/persistence helpers."""

import json

import pytest

from repro.bench.reporting import (FigurePoint, FigureResult, format_figure,
                                   save_figure)


@pytest.fixture
def result():
    points = [
        FigurePoint(x=10, protocol="mvtil-early", throughput=100.0,
                    commit_rate=0.99),
        FigurePoint(x=10, protocol="2pl", throughput=80.0, commit_rate=0.9),
        FigurePoint(x=20, protocol="mvtil-early", throughput=150.0,
                    commit_rate=0.97),
        FigurePoint(x=20, protocol="2pl", throughput=90.0, commit_rate=0.8),
    ]
    return FigureResult(figure="figX", title="Test figure",
                        x_label="# clients", points=points, notes="note")


class TestFigureResult:
    def test_protocols_in_insertion_order(self, result):
        assert result.protocols() == ["mvtil-early", "2pl"]

    def test_xs_sorted(self, result):
        assert result.xs() == [10, 20]

    def test_series_sorted_by_x(self, result):
        series = result.series("2pl")
        assert [p.x for p in series] == [10, 20]

    def test_at(self, result):
        assert result.at(10, "2pl").throughput == 80.0
        assert result.at(99, "2pl") is None


class TestFormatting:
    def test_contains_all_cells(self, result):
        text = format_figure(result)
        assert "figX" in text and "note" in text
        assert "100.0" in text and "0.800" in text
        assert "# clients" in text

    def test_missing_cells_dashed(self, result):
        result.points.pop()  # drop (20, 2pl)
        text = format_figure(result)
        assert "-" in text

    def test_metric_selection(self, result):
        text = format_figure(result, metric="throughput")
        assert "0.990" not in text


class TestPersistence:
    def test_round_trip(self, result, tmp_path):
        path = save_figure(result, tmp_path)
        data = json.loads(path.read_text())
        assert data["figure"] == "figX"
        assert len(data["points"]) == 4
        assert data["points"][0]["protocol"] == "mvtil-early"
