"""Tests for the `python -m repro.bench` command-line interface."""

import json

import pytest

import repro.bench.__main__ as cli
from repro.bench.reporting import FigurePoint, FigureResult


@pytest.fixture
def stub_figures(monkeypatch):
    def make(name):
        def fn(seeds=(1,)):
            return FigureResult(
                figure=name, title=f"stub {name}", x_label="x",
                points=[FigurePoint(x=1, protocol="p", throughput=10.0,
                                    commit_rate=1.0)],
                notes=f"seeds={tuple(seeds)}")
        return fn

    monkeypatch.setattr(cli, "FIGURES",
                        {name: make(name) for name in cli.FIGURES})

    def fig67(seeds=(1,)):
        return make("fig6")(seeds), make("fig7")(seeds)

    monkeypatch.setattr(cli, "figure6_7_state_and_gc", fig67)


class TestCLI:
    def test_single_figure(self, stub_figures, tmp_path, capsys):
        assert cli.main(["fig1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stub fig1" in out
        data = json.loads((tmp_path / "fig1.json").read_text())
        assert data["figure"] == "fig1"

    def test_seeds_forwarded(self, stub_figures, tmp_path, capsys):
        cli.main(["fig3", "--seeds", "4", "5", "--out", str(tmp_path)])
        data = json.loads((tmp_path / "fig3.json").read_text())
        assert "seeds=(4, 5)" in data["notes"]

    def test_fig67_pair(self, stub_figures, tmp_path):
        cli.main(["fig6", "--out", str(tmp_path)])
        assert (tmp_path / "fig6.json").exists()
        assert (tmp_path / "fig7.json").exists()

    def test_all(self, stub_figures, tmp_path):
        cli.main(["all", "--out", str(tmp_path)])
        for name in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                     "fig7"):
            assert (tmp_path / f"{name}.json").exists()

    def test_unknown_figure_rejected(self, stub_figures):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])
