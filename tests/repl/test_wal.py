"""WAL codec, framing, torn-tail recovery and checkpoints (repro.repl).

The load-bearing property: truncating a WAL image at *any* byte offset
recovers a clean prefix of the record list — a logged commit (one record
covering all of the transaction's keys) is either fully recovered or fully
absent, never partially applied.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamp import BOTTOM, Timestamp
from repro.core.versions import VersionStore
from repro.repl.checkpoint import (DurableStore, decode_snapshot,
                                   encode_snapshot)
from repro.repl.wal import (WalCorruption, WriteAheadLog, decode_value,
                            encode_value, frame, replay_records)

ZOO = [
    None, True, False, 0, 1, -1, 2 ** 63 - 1, -(2 ** 63),
    2 ** 80, -(2 ** 100),                      # bigint escape
    0.0, -2.5, 1e308, float("inf"),
    "", "key-17", "naïve ünïcode",
    b"", b"\x00\xff raw",
    BOTTOM, Timestamp(1.5, 7), Timestamp(0.0, -(2 ** 31)),
    (), (1, "two", 3.0), [1, [2, [3]]],
    {"a": 1, "b": (2, None)},
    ("commit", ("client-0", 12), Timestamp(2.25, 3),
     (("k1", "v1"), ("k2", None)), "client-0", 45),
]


class TestCodec:
    def test_roundtrip_zoo(self):
        for value in ZOO:
            assert decode_value(encode_value(value)) == value

    def test_type_is_preserved(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(BOTTOM)) is BOTTOM

    def test_timestamp_roundtrip_is_exact(self):
        ts = Timestamp(0.30000000000000004, 2 ** 40)
        out = decode_value(encode_value(ts))
        assert out == ts and out.value == ts.value and out.pid == ts.pid

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError):
            encode_value({1, 2, 3})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WalCorruption):
            decode_value(encode_value(1) + b"x")

    def test_truncated_payload_rejected(self):
        blob = encode_value(("abc", 123))
        with pytest.raises(WalCorruption):
            decode_value(blob[:-1])


def _image(records):
    out = bytearray()
    for rec in records:
        out += frame(encode_value(rec))
    return bytes(out)


RECORDS = [
    ("commit", ("c0", 1), Timestamp(1.0, 1), (("x", "a"),), "c0", 10),
    ("purge", Timestamp(0.5, -(2 ** 31))),
    ("commit", ("c1", 2), Timestamp(1.5, 2), (("y", "b"), ("z", "c")),
     None, None),
    ("commit", ("c0", 3), Timestamp(2.0, 1), (("x", "d"),), "c0", 11),
    ("purge", Timestamp(1.75, -(2 ** 31))),
]


class TestTornTail:
    def test_full_image_replays_everything(self):
        assert replay_records(_image(RECORDS)) == RECORDS

    def test_truncation_at_every_offset_yields_a_prefix(self):
        img = _image(RECORDS)
        for cut in range(len(img) + 1):
            got = replay_records(img[:cut])
            assert got == RECORDS[:len(got)]

    def test_corrupt_byte_stops_at_last_good_record(self):
        img = bytearray(_image(RECORDS))
        # Flip a byte inside the third frame's payload: CRC catches it.
        two = len(_image(RECORDS[:2]))
        img[two + 12] ^= 0xFF
        got = replay_records(bytes(img))
        assert got == RECORDS[:2]

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_records_random_cut_is_a_prefix(self, data):
        """Satellite (c): hypothesis — torn tails recover a clean prefix."""
        scalar = st.one_of(
            st.none(), st.booleans(),
            st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
            st.floats(allow_nan=False),
            st.text(max_size=8), st.binary(max_size=8),
            st.builds(Timestamp,
                      st.floats(allow_nan=False, allow_infinity=False),
                      st.integers(min_value=-(2 ** 31),
                                  max_value=2 ** 31)))
        record = st.one_of(
            scalar,
            st.lists(scalar, max_size=4),
            st.lists(scalar, max_size=4).map(tuple),
            st.dictionaries(st.text(max_size=4), scalar, max_size=3))
        records = data.draw(st.lists(record, max_size=6))
        img = _image(records)
        cut = data.draw(st.integers(min_value=0, max_value=len(img)))
        got = replay_records(img[:cut])
        assert got == records[:len(got)]
        if cut == len(img):
            assert got == records


def _store_with(entries):
    store = VersionStore()
    for key, ts, value in entries:
        store.install(key, ts, value)
    return store


class TestCheckpoint:
    def test_snapshot_roundtrip(self):
        store = _store_with([("x", Timestamp(1.0, 1), "a"),
                             ("x", Timestamp(2.0, 2), "b"),
                             ("y", Timestamp(1.5, 1), None)])
        dedup = (("c0", 1), ("c1", 2))
        floor = Timestamp(0.5, -(2 ** 31))
        back, dedup2, floor2 = decode_snapshot(
            encode_snapshot(store, dedup, floor))
        assert list(dedup2) == list(dedup)
        assert floor2 == floor
        assert back.version_at("x", Timestamp(2.0, 2)).value == "b"
        assert [tuple(c[:1]) for c in back.snapshot()] \
            == [tuple(c[:1]) for c in store.snapshot()]

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            decode_snapshot(encode_value(("nope", 1, (), (), None)))


class TestDurableStore:
    def test_recover_replays_logged_commits(self):
        durable = DurableStore()
        durable.log_commit(("c0", 1), Timestamp(1.0, 1),
                           (("x", "a"), ("y", "b")), "c0", 10)
        durable.log_commit(("c1", 2), Timestamp(2.0, 2), (("x", "c"),),
                           None, None)
        rec = durable.recover()
        assert rec.replayed_installs == 3
        assert rec.store.version_at("x", Timestamp(2.0, 2)).value == "c"
        assert rec.store.version_at("y", Timestamp(1.0, 1)).value == "b"
        assert rec.dedup == [("c0", 10)]
        assert rec.stable_floor is None

    def test_purge_records_raise_the_floor(self):
        durable = DurableStore()
        durable.log_commit(("c0", 1), Timestamp(1.0, 1), (("x", "a"),))
        durable.log_commit(("c0", 2), Timestamp(3.0, 1), (("x", "b"),))
        durable.log_purge(Timestamp(2.0, -(2 ** 31)))
        rec = durable.recover()
        assert rec.stable_floor == Timestamp(2.0, -(2 ** 31))
        assert rec.store.version_at("x", Timestamp(3.0, 1)).value == "b"

    def test_checkpoint_truncates_and_recovery_still_complete(self):
        durable = DurableStore(checkpoint_every=2)
        store = VersionStore()
        applied = []
        for i in range(5):
            ts = Timestamp(float(i + 1), 1)
            store.install("k", ts, i)
            applied.append((ts, i))
            durable.log_commit(("c", i), ts, (("k", i),), "c", i)
            durable.maybe_checkpoint(store, tuple(("c", j) for j in
                                                  range(i + 1)), None)
        assert durable.checkpoints == 2
        assert len(durable.wal.replay()) < 5  # truncated at checkpoints
        assert durable.wal.records_appended == 5  # lifetime counter
        rec = durable.recover()
        for ts, value in applied:
            assert rec.store.version_at("k", ts).value == value
        assert rec.dedup == [("c", i) for i in range(5)]

    def test_aborted_callback_skips_decided_aborts(self):
        durable = DurableStore()
        durable.log_commit(("dead", 1), Timestamp(1.0, 1), (("x", "a"),))
        durable.log_commit(("live", 2), Timestamp(2.0, 2), (("x", "b"),))
        rec = durable.recover(aborted=lambda tx: tx == ("dead", 1))
        assert rec.store.version_at("x", Timestamp(1.0, 1)) is None
        assert rec.store.version_at("x", Timestamp(2.0, 2)).value == "b"

    def test_torn_tail_recovers_the_prefix(self):
        durable = DurableStore()
        for i in range(3):
            durable.log_commit(("c", i), Timestamp(float(i + 1), 1),
                               ((f"k{i}", i),), "c", i)
        durable.wal._buf = bytearray(
            durable.wal.image()[:durable.wal.size_bytes - 3])
        rec = durable.recover()
        assert rec.store.version_at("k0", Timestamp(1.0, 1)).value == 0
        assert rec.store.version_at("k1", Timestamp(2.0, 1)).value == 1
        assert rec.store.version_at("k2", Timestamp(3.0, 1)) is None
        assert rec.dedup == [("c", 0), ("c", 1)]

    def test_duplicate_records_are_idempotent(self):
        durable = DurableStore()
        for _ in range(2):  # timeout path + CommitReq path double-log
            durable.log_commit(("c", 1), Timestamp(1.0, 1), (("x", "a"),),
                               "c", 7)
        rec = durable.recover()
        assert rec.replayed_installs == 1
        assert rec.dedup == [("c", 7)]

    def test_sync_records_replay_like_commits(self):
        # Anti-entropy installs (DESIGN.md §5h) must survive a crash just
        # like CommitReq installs: a post-resync restart recovers them.
        durable = DurableStore()
        durable.log_sync((("x", Timestamp(1.0, 1), "a"),
                          ("y", Timestamp(2.0, 1), "b")))
        rec = durable.recover()
        assert rec.replayed_installs == 2
        assert rec.store.version_at("x", Timestamp(1.0, 1)).value == "a"
        assert rec.store.version_at("y", Timestamp(2.0, 1)).value == "b"
        assert rec.dedup == []  # sync records carry no request identity

    def test_sync_replay_is_guarded_against_commit_overlap(self):
        # The same version can arrive via a logged commit *and* a sync
        # batch (fan-out raced the session); replay installs it once.
        durable = DurableStore()
        durable.log_commit(("c", 1), Timestamp(1.0, 1), (("x", "a"),),
                           "c", 7)
        durable.log_sync((("x", Timestamp(1.0, 1), "a"),))
        rec = durable.recover()
        assert rec.replayed_installs == 1
        assert rec.store.version_at("x", Timestamp(1.0, 1)).value == "a"

    def test_records_by_kind_tracks_sync_appends(self):
        durable = DurableStore()
        durable.log_commit(("c", 1), Timestamp(1.0, 1), (("x", "a"),))
        durable.log_sync((("y", Timestamp(2.0, 1), "b"),))
        durable.log_sync((("z", Timestamp(3.0, 1), "c"),))
        assert durable.wal.records_by_kind["commit"] == 1
        assert durable.wal.records_by_kind["sync"] == 2
