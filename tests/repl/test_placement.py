"""ReplicatedPlacement: routing parity with Partition, quorums, failover."""

import pytest

from repro.dist.partition import Partition
from repro.repl.placement import ReplicatedPlacement
from repro.repl.replica import write_quorum

SERVERS = [f"server-{i}" for i in range(5)]


class TestRoutingParity:
    def test_replication_one_matches_partition_for_str_keys(self):
        old = Partition(SERVERS)
        new = ReplicatedPlacement(SERVERS, replication=1)
        for key in (f"k{i:04d}" for i in range(500)):
            assert new.server_of(key) == old.server_of(key)

    def test_replication_one_matches_partition_for_int_keys(self):
        old = Partition(SERVERS)
        new = ReplicatedPlacement(SERVERS, replication=1)
        for key in range(500):
            assert new.server_of(key) == old.server_of(key)

    def test_leader_unmoved_by_higher_replication(self):
        r1 = ReplicatedPlacement(SERVERS, replication=1)
        r3 = ReplicatedPlacement(SERVERS, replication=3)
        for key in range(100):
            assert r3.leader_of(key) == r1.leader_of(key)


class TestMembership:
    def test_members_are_distinct_ring_successors(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        for gid in placement.groups():
            members = placement.members(gid)
            assert len(members) == 3
            assert len(set(members)) == 3
            assert members[0] == placement.leader(gid)
            assert members == tuple(SERVERS[(gid + i) % 5]
                                    for i in range(3))

    def test_followers_exclude_the_leader(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        for key in range(20):
            followers = placement.followers_of(key)
            assert placement.leader_of(key) not in followers
            assert len(followers) == 2

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ReplicatedPlacement(SERVERS, replication=0)
        with pytest.raises(ValueError):
            ReplicatedPlacement(SERVERS, replication=6)
        with pytest.raises(ValueError):
            ReplicatedPlacement([], replication=1)


class TestFailover:
    def test_promote_moves_leadership_and_bumps_epoch(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        gid = 0
        follower = placement.members(gid)[1]
        assert placement.group_epoch(gid) == 0
        epoch = placement.promote(gid, follower)
        assert epoch == 1
        assert placement.leader(gid) == follower
        assert placement.group_epoch(gid) == 1
        # Other groups are untouched.
        assert all(placement.group_epoch(g) == 0
                   for g in placement.groups() if g != gid)
        # followers_of now excludes the new leader, includes the old.
        key = next(k for k in range(100) if placement.group_of(k) == gid)
        assert follower not in placement.followers_of(key)
        assert SERVERS[0] in placement.followers_of(key)

    def test_promote_rejects_non_members(self):
        placement = ReplicatedPlacement(SERVERS, replication=2)
        outsider = placement.members(0)[-1]
        for gid in placement.groups():
            if outsider not in placement.members(gid):
                with pytest.raises(ValueError):
                    placement.promote(gid, outsider)
                break
        else:  # pragma: no cover - ring of 5, r=2 always has a gap
            pytest.fail("no group without the outsider")


class TestReplaceMember:
    def test_replace_swaps_membership_and_bumps_epoch(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        gid = 0
        old = placement.members(gid)[1]
        outsider = next(s for s in SERVERS
                        if s not in placement.members(gid))
        epoch = placement.replace_member(gid, old, outsider, now=3.5)
        assert epoch == 1
        assert placement.group_epoch(gid) == 1
        members = placement.members(gid)
        assert outsider in members and old not in members
        assert len(members) == 3
        # Leadership is untouched; only the follower slot moved.
        assert placement.leader(gid) == SERVERS[0]
        assert placement.member_joined_at(gid, outsider) == 3.5
        assert placement.member_joined_at(gid, old) is None
        assert placement.member_joined_at(gid, SERVERS[0]) is None

    def test_replace_refuses_to_touch_the_leader(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        outsider = next(s for s in SERVERS
                        if s not in placement.members(0))
        with pytest.raises(ValueError, match="leader"):
            placement.replace_member(0, placement.leader(0), outsider)

    def test_replace_validates_old_and_new(self):
        placement = ReplicatedPlacement(SERVERS, replication=3)
        follower = placement.members(0)[1]
        with pytest.raises(ValueError):  # new already a member
            placement.replace_member(0, follower, placement.members(0)[2])
        outsider = next(s for s in SERVERS
                        if s not in placement.members(0))
        with pytest.raises(ValueError):  # old not a member
            placement.replace_member(0, outsider, outsider)
        with pytest.raises(ValueError):  # new not a known server
            placement.replace_member(0, follower, "nobody")


class TestWriteQuorum:
    def test_majorities(self):
        assert write_quorum(1) == 1
        assert write_quorum(2) == 2
        assert write_quorum(3) == 2
        assert write_quorum(4) == 3
        assert write_quorum(5) == 3
