"""Unit tests for repro.obs.metrics: primitives and trace folding."""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               fold_trace, merge_conflict_counts)
from repro.obs.trace import Tracer


class TestCounter:
    def test_labelled_increments(self):
        c = Counter()
        c.inc("a")
        c.inc("a", 2)
        c.inc("b")
        assert c.get("a") == 3
        assert c.get("b") == 1
        assert c.total == 4

    def test_top_sorts_descending(self):
        c = Counter()
        for label, n in (("x", 1), ("y", 5), ("z", 3)):
            c.inc(label, n)
        assert c.top(2) == [("y", 5), ("z", 3)]

    def test_as_dict_stringifies_labels(self):
        c = Counter()
        c.inc(("client-1", 7))
        assert list(c.as_dict()) == ["('client-1', 7)"]


class TestGauge:
    def test_tracks_min_max(self):
        g = Gauge()
        for v in (3.0, 1.0, 2.0):
            g.set(v)
        assert g.value == 2.0
        assert g.min == 1.0
        assert g.max == 3.0
        assert g.samples == 3


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert 50.0 <= h.percentile(50) <= 51.0
        assert 99.0 <= h.percentile(99) <= 100.0
        assert h.count == 100
        assert h.mean == 50.5

    def test_empty(self):
        h = Histogram()
        assert h.percentile(95) == 0.0
        assert h.as_dict() == {"count": 0}

    def test_as_dict_has_percentile_keys(self):
        h = Histogram()
        h.observe(1.0)
        d = h.as_dict()
        assert {"count", "sum", "mean", "min", "max",
                "p50", "p95", "p99"} <= set(d)


class TestFoldTrace:
    def _trace(self):
        t = Tracer(now_fn=lambda: 0.0)
        t.begin("a")
        t.wait("a", "hot", dur=0.2)
        t.commit("a")
        t.begin("b")
        t.wait("b", "hot", dur=0.3)
        t.abort("b", reason="deadlock")
        t.begin("c")
        t.abort("c", reason="interval-empty")
        return t.events

    def test_counts_commits_aborts_reasons(self):
        reg = fold_trace(self._trace())
        assert reg.counter("tx.commits").total == 1
        assert reg.counter("tx.aborts").total == 2
        assert reg.counter("abort.reasons").get("deadlock") == 1
        assert reg.counter("abort.reasons").get("interval-empty") == 1

    def test_wait_time_and_key_attribution(self):
        reg = fold_trace(self._trace())
        h = reg.histogram("lock.wait_time")
        assert h.count == 2
        assert abs(h.sum - 0.5) < 1e-12
        assert abs(reg.counter("key.wait_time").get("hot") - 0.5) < 1e-12
        assert reg.counter("key.conflicts").get("hot") == 2

    def test_shrink_histogram(self):
        t = Tracer(now_fn=lambda: 0.0)
        t.emit("lock-acquire", "a", key="k", mode="write", shrink=0.4)
        t.emit("lock-acquire", "a", key="k", mode="write", shrink=0.0)
        reg = fold_trace(t.events)
        assert reg.histogram("interval.shrink").count == 2
        # Only the lossy acquisition counts as a conflict.
        assert reg.counter("key.conflicts").get("k") == 1

    def test_merge_conflict_counts(self):
        reg = MetricsRegistry()
        merge_conflict_counts(reg, {"k1": 3, "k2": 1})
        merge_conflict_counts(reg, {"k1": 2})
        assert reg.counter("key.conflicts").get("k1") == 5
        assert reg.counter("key.conflicts").get("k2") == 1

    def test_registry_as_dict_shape(self):
        reg = fold_trace(self._trace())
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert "abort.reasons" in d["counters"]
