"""JSONL/JSON round trips and the ``python -m repro.obs`` CLI."""

import json

from repro.core.timestamp import Timestamp
from repro.obs.__main__ import main as obs_main
from repro.obs.export import (event_from_dict, event_to_dict,
                              metrics_sidecar_path, read_metrics_json,
                              read_trace_jsonl, trace_sidecar_path,
                              write_metrics_json, write_trace_jsonl)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer


def sample_events():
    t = Tracer(now_fn=iter([0.1, 0.2, 0.3, 0.4]).__next__)
    t.begin(("client-1", 7), pid=3)
    t.read(("client-1", 7), "k", ts=Timestamp(1.5, 2))
    t.wait(("client-1", 7), "k", dur=0.05)
    t.commit(("client-1", 7), ts=Timestamp(2.0, 3))
    return t.events


class TestEventRoundTrip:
    def test_tuple_tx_survives(self):
        ev = sample_events()[0]
        back = event_from_dict(json.loads(json.dumps(event_to_dict(ev))))
        assert back.tx == ("client-1", 7)
        assert back.kind == "begin"
        assert back.data["pid"] == 3

    def test_timestamp_becomes_value_pid_tuple(self):
        ev = sample_events()[1]
        payload = event_to_dict(ev)
        assert payload["ts"] == {"ts": [1.5, 2]}
        back = event_from_dict(json.loads(json.dumps(payload)))
        assert back.ts == (1.5, 2)

    def test_none_fields_omitted(self):
        payload = event_to_dict(TraceEvent(0.0, 1, "begin", "tx"))
        assert set(payload) == {"t", "seq", "kind", "tx"}

    def test_extra_keys_fold_into_data(self):
        ev = sample_events()[0]
        payload = event_to_dict(ev, run="run0:mvtil-early/seed=1")
        back = event_from_dict(json.loads(json.dumps(payload)))
        assert back.data["run"] == "run0:mvtil-early/seed=1"


class TestFileRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        events = sample_events()
        path = write_trace_jsonl(events, tmp_path / "t.trace.jsonl")
        back = read_trace_jsonl(path)
        assert len(back) == len(events)
        assert [e.kind for e in back] == [e.kind for e in events]
        assert [e.seq for e in back] == [e.seq for e in events]
        assert back[2].dur == 0.05

    def test_append_mode(self, tmp_path):
        events = sample_events()
        path = tmp_path / "t.trace.jsonl"
        write_trace_jsonl(events[:2], path)
        write_trace_jsonl(events[2:], path, append=True)
        assert len(read_trace_jsonl(path)) == len(events)

    def test_metrics_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("abort.reasons").inc("deadlock", 4)
        reg.gauge("queue").set(7.0)
        path = write_metrics_json(reg, tmp_path / "m.metrics.json")
        back = read_metrics_json(path)
        assert back["counters"]["abort.reasons"]["deadlock"] == 4
        assert back["gauges"]["queue"]["value"] == 7.0

    def test_sidecar_paths(self):
        assert str(metrics_sidecar_path("out/fig1.json")).endswith(
            "out/fig1.metrics.json")
        assert str(trace_sidecar_path("out/fig1.json")).endswith(
            "out/fig1.trace.jsonl")


class TestCli:
    def test_report_prints_tables(self, tmp_path, capsys):
        t = Tracer(now_fn=iter(float(i) for i in range(20)).__next__)
        t.begin("a")
        t.wait("a", "hot", dur=0.4)
        t.abort("a", reason="deadlock")
        t.begin("b")
        t.read("b", "hot", ts=1)
        t.commit("b")
        path = write_trace_jsonl(t.events, tmp_path / "x.trace.jsonl")
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "abort reasons" in out
        assert "deadlock" in out
        assert "hot" in out
        assert "time in phase" in out

    def test_metrics_pretty_print(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.counter("tx.commits").inc(n=2)
        path = write_metrics_json(reg, tmp_path / "m.metrics.json")
        assert obs_main(["metrics", str(path)]) == 0
        assert "tx.commits" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert obs_main(["report", "/no/such/file.jsonl"]) == 2
        assert obs_main(["metrics", "/no/such/file.json"]) == 2
        capsys.readouterr()
