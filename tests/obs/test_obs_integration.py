"""Integration of repro.obs with both substrates.

Covers the ISSUE's acceptance properties:

* trace invariants — every traced transaction has at most one terminal
  event (commit xor abort), terminals follow a begin, DES timestamps are
  monotone per transaction and globally by emission order;
* determinism — same seed => identical trace; tracing itself never
  perturbs the simulation (traced and untraced runs agree bit-for-bit on
  the counted outcomes);
* threaded-engine tracing — the MVTLEngine emits the same event
  vocabulary stamped by wall-clock time;
* overhead — the disabled (NULL_TRACER) hook path stays cheap.
"""

import time

import pytest

from repro.core.engine import MVTLEngine
from repro.core.exceptions import AbortReason, TransactionAborted
from repro.dist import ClusterConfig, run_cluster
from repro.obs.profile import ContentionProfile
from repro.obs.trace import TERMINAL_KINDS, EventKind, Tracer
from repro.policies import MVTLTimestampOrdering
from repro.sim.testbed import LOCAL_TESTBED
from repro.workload import WorkloadConfig

CONTENDED = WorkloadConfig(num_keys=60, tx_size=6, write_fraction=0.5)


def traced_config(protocol, **kwargs):
    defaults = dict(
        protocol=protocol, profile=LOCAL_TESTBED, workload=CONTENDED,
        num_clients=10, warmup=0.2, measure=0.6, seed=11, trace=True)
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def check_invariants(events):
    """Assert the trace well-formedness invariants on an event stream."""
    begins: dict = {}
    terminals: dict = {}
    last_t_per_tx: dict = {}
    prev_seq = 0
    for ev in events:
        assert ev.kind in EventKind.ALL
        assert ev.seq > prev_seq, "seq must be strictly increasing"
        prev_seq = ev.seq
        if ev.kind == EventKind.BEGIN:
            begins[ev.tx] = begins.get(ev.tx, 0) + 1
        elif ev.kind in TERMINAL_KINDS:
            terminals[ev.tx] = terminals.get(ev.tx, 0) + 1
        # Per-transaction time monotonicity (DES now never goes back).
        last = last_t_per_tx.get(ev.tx)
        if last is not None:
            assert ev.t >= last, (ev.tx, last, ev.t)
        last_t_per_tx[ev.tx] = ev.t
    for tx, n in terminals.items():
        assert n == 1, f"{tx} has {n} terminal events"
        assert begins.get(tx, 0) == 1, f"{tx} terminal without begin"
    return begins, terminals


class TestTraceInvariants:
    @pytest.mark.parametrize("protocol",
                             ["mvtil-early", "mvtil-late", "mvto", "2pl"])
    def test_cluster_trace_well_formed(self, protocol):
        res = run_cluster(traced_config(protocol))
        assert res.trace, "traced run must record events"
        begins, terminals = check_invariants(res.trace)
        assert terminals, "some transactions must finish"

    def test_global_time_monotone_in_des(self):
        res = run_cluster(traced_config("mvtil-early"))
        ts = [e.t for e in res.trace]
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_abort_reasons_are_taxonomy_members(self):
        res = run_cluster(traced_config("mvtil-early"))
        reasons = {e.reason for e in res.trace
                   if e.kind == EventKind.ABORT}
        for reason in reasons:
            assert isinstance(AbortReason.of(reason), AbortReason), reason

    def test_interval_acquisitions_carry_requested_vs_granted(self):
        res = run_cluster(traced_config("mvtil-early"))
        acquires = [e for e in res.trace
                    if e.kind == EventKind.LOCK_ACQUIRE]
        assert acquires
        for ev in acquires:
            assert ev.data.get("requested") is not None
            assert "shrink" in ev.data
            assert ev.data["shrink"] >= 0.0


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        a = run_cluster(traced_config("mvtil-early"))
        b = run_cluster(traced_config("mvtil-early"))
        assert len(a.trace) == len(b.trace)
        assert [(e.t, e.seq, e.kind, e.tx, e.key) for e in a.trace] == \
               [(e.t, e.seq, e.kind, e.tx, e.key) for e in b.trace]

    @pytest.mark.parametrize("protocol", ["mvtil-early", "mvto", "2pl"])
    def test_tracing_does_not_perturb_the_run(self, protocol):
        traced = run_cluster(traced_config(protocol))
        plain = run_cluster(traced_config(protocol, trace=False))
        assert traced.committed == plain.committed
        assert traced.aborted == plain.aborted
        assert traced.messages_sent == plain.messages_sent
        assert plain.trace is None
        assert plain.metrics is None

    def test_metrics_agree_with_counters(self):
        res = run_cluster(traced_config("mvtil-early"))
        m = res.metrics
        # Trace counts cover the whole run (incl. warmup), so they bound
        # the in-window RunStats counts.
        assert sum(m["counters"]["tx.commits"].values()) >= res.committed
        assert m["run"]["committed"] == res.committed
        assert m["run"]["aborted"] == res.aborted
        assert m["run"]["commit_rate"] == pytest.approx(res.commit_rate)
        assert set(m["run"]["latency"]) == {"committed", "aborted"}
        for side in m["run"]["latency"].values():
            assert {"count", "mean", "p50", "p95", "p99"} <= set(side)

    def test_contention_profile_folds_cluster_trace(self):
        res = run_cluster(traced_config("mvtil-early"))
        profile = ContentionProfile.from_events(res.trace)
        assert profile.commits + profile.aborts > 0
        report = profile.format_report()
        assert "contention report" in report
        assert "abort reasons" in report


class TestThreadedEngineTracing:
    def test_engine_emits_spans(self):
        tracer = Tracer()
        engine = MVTLEngine(MVTLTimestampOrdering(), tracer=tracer)
        t1 = engine.begin(pid=1)
        engine.write(t1, "k", 1)
        assert engine.commit(t1)
        t2 = engine.begin(pid=2)
        assert engine.read(t2, "k") == 1
        assert engine.commit(t2)
        kinds = [e.kind for e in tracer.events]
        assert kinds.count(EventKind.BEGIN) == 2
        assert kinds.count(EventKind.COMMIT) == 2
        assert EventKind.WRITE in kinds
        assert EventKind.READ in kinds
        assert EventKind.LOCK_ACQUIRE in kinds
        check_invariants(tracer.events)

    def test_engine_abort_reason_traced(self):
        tracer = Tracer()
        engine = MVTLEngine(MVTLTimestampOrdering(), tracer=tracer)
        tx = engine.begin(pid=1)
        engine.abort(tx)
        aborts = [e for e in tracer.events if e.kind == EventKind.ABORT]
        assert len(aborts) == 1
        assert aborts[0].reason == "user-abort"
        assert tx.abort_reason is AbortReason.USER_ABORT

    def test_wall_clock_timestamps(self):
        tracer = Tracer()
        engine = MVTLEngine(MVTLTimestampOrdering(), tracer=tracer)
        before = time.perf_counter()
        tx = engine.begin(pid=1)
        engine.commit(tx)
        after = time.perf_counter()
        for ev in tracer.events:
            assert before <= ev.t <= after


class TestAbortReasonCompat:
    def test_enum_equals_legacy_string(self):
        assert AbortReason.DEADLOCK == "deadlock"
        assert AbortReason.of("deadlock") is AbortReason.DEADLOCK
        assert AbortReason.of("custom-reason") == "custom-reason"
        assert str(AbortReason.INTERVAL_EMPTY) == "interval-empty"
        assert f"{AbortReason.LOCK_TIMEOUT}" == "lock-timeout"

    def test_exception_coerces_reason(self):
        exc = TransactionAborted(("c", 1), "rpc-timeout")
        assert exc.reason is AbortReason.RPC_TIMEOUT


class TestDisabledOverhead:
    def test_null_tracer_engine_ops_stay_fast(self):
        """The disabled hook path is one attribute check: a begin/write/
        commit loop with no tracer attached must stay within an order of
        magnitude of pure dict work (generous bound: CI noise)."""
        engine = MVTLEngine(MVTLTimestampOrdering())
        n = 300
        start = time.perf_counter()
        for i in range(n):
            tx = engine.begin(pid=1)
            engine.write(tx, i % 7, i)
            engine.commit(tx)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"{n} txs took {elapsed:.3f}s untraced"

    def test_untraced_cluster_records_nothing(self):
        res = run_cluster(traced_config("mvtil-early", trace=False))
        assert res.trace is None
        assert res.metrics is None
        # The lightweight always-on aggregates still exist.
        assert isinstance(res.abort_reasons, dict)
        assert set(res.latency_summary) == {"committed", "aborted"}
