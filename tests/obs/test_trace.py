"""Unit tests for repro.obs.trace: tracer mechanics and span_width."""

from repro.core.intervals import IntervalSet, TsInterval
from repro.core.timestamp import Timestamp
from repro.obs.trace import (NULL_TRACER, TERMINAL_KINDS, EventKind,
                             NullTracer, TraceEvent, Tracer, span_width)


def iv(lo, hi):
    return TsInterval.closed(Timestamp(lo, 0), Timestamp(hi, 0))


class TestSpanWidth:
    def test_none(self):
        assert span_width(None) is None

    def test_single_interval(self):
        assert span_width(iv(1.0, 3.5)) == 2.5

    def test_interval_set_sums_pieces(self):
        s = (IntervalSet.from_interval(iv(0.0, 1.0))
             .union(IntervalSet.from_interval(iv(5.0, 7.0))))
        assert span_width(s) == 3.0

    def test_empty_set(self):
        assert span_width(IntervalSet.empty()) == 0.0

    def test_unknown_object(self):
        assert span_width(object()) is None


class TestNullTracer:
    def test_disabled_flag_is_class_attribute(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False

    def test_all_hooks_are_noops(self):
        t = NULL_TRACER
        assert t.begin("tx") is None
        assert t.read("tx", "k", ts=1) is None
        assert t.write("tx", "k") is None
        assert t.lock_acquire("tx", "k", "read") is None
        assert t.wait("tx", "k", dur=0.5) is None
        assert t.freeze("tx", "k", "write") is None
        assert t.commit("tx") is None
        assert t.abort("tx", reason="deadlock") is None


class TestTracer:
    def test_records_in_order_with_monotone_seq(self):
        clock = iter([1.0, 2.0, 3.0]).__next__
        t = Tracer(now_fn=clock)
        t.begin("a")
        t.read("a", "k", ts=7)
        t.commit("a", ts=7)
        kinds = [e.kind for e in t.events]
        assert kinds == [EventKind.BEGIN, EventKind.READ, EventKind.COMMIT]
        assert [e.seq for e in t.events] == [1, 2, 3]
        assert [e.t for e in t.events] == [1.0, 2.0, 3.0]

    def test_lock_acquire_computes_shrink(self):
        t = Tracer(now_fn=lambda: 0.0)
        t.lock_acquire("a", "k", "write", requested=iv(0.0, 1.0),
                       granted=iv(0.0, 0.25))
        ev = t.events[0]
        assert ev.kind == EventKind.LOCK_ACQUIRE
        assert ev.mode == "write"
        assert abs(ev.data["shrink"] - 0.75) < 1e-12
        assert ev.data["requested"] == 1.0
        assert ev.data["granted"] == 0.25

    def test_lock_acquire_without_intervals_has_no_shrink(self):
        t = Tracer(now_fn=lambda: 0.0)
        t.lock_acquire("a", "k", "read")
        assert "shrink" not in t.events[0].data

    def test_abort_reason_stringified(self):
        from repro.core.exceptions import AbortReason
        t = Tracer(now_fn=lambda: 0.0)
        t.abort("a", reason=AbortReason.DEADLOCK)
        assert t.events[0].reason == "deadlock"

    def test_sink_receives_events(self):
        seen = []
        t = Tracer(now_fn=lambda: 0.0, sink=seen.append, keep=False)
        t.begin("a")
        t.commit("a")
        assert [e.kind for e in seen] == ["begin", "commit"]
        assert t.events == []  # keep=False drops in-memory retention

    def test_terminal_kinds(self):
        assert TERMINAL_KINDS == {EventKind.COMMIT, EventKind.ABORT}

    def test_default_clock_is_wall_time(self):
        t = Tracer()
        t.begin("a")
        t.begin("b")
        assert t.events[1].t >= t.events[0].t


class TestTraceEvent:
    def test_frozen(self):
        ev = TraceEvent(0.0, 1, "begin", "tx")
        try:
            ev.kind = "other"
            raised = False
        except AttributeError:
            raised = True
        assert raised
