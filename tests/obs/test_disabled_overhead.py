"""The disabled observability path must be a true no-op.

Two angles:

* **Zero-call invariant** — with tracing off, not a single tracer hook is
  invoked anywhere in a full cluster run.  Every call site must sit behind
  an ``if tracer.enabled:`` guard; a counting tracer substituted for
  ``NULL_TRACER`` catches any unguarded site.
* **Overhead bound** — the only residual cost with tracing off is the
  guard itself (one attribute load + branch per would-be event).  We
  measure that guard's unit cost and show that even a generous estimate of
  guard executions costs under 2% of an untraced run's wall time.
"""

from __future__ import annotations

import time

from repro.dist.cluster import ClusterConfig, run_cluster
from repro.obs.trace import NULL_TRACER, NullTracer
from repro.sim.testbed import LOCAL_TESTBED
from repro.workload.generator import WorkloadConfig


def _config(trace: bool = False) -> ClusterConfig:
    return ClusterConfig(
        protocol="mvtil-early", num_servers=2, num_clients=6, seed=7,
        warmup=0.2, measure=0.8, trace=trace, profile=LOCAL_TESTBED,
        workload=WorkloadConfig(num_keys=500, tx_size=6,
                                write_fraction=0.25))


class CountingDisabledTracer(NullTracer):
    """Reports ``enabled = False`` but records any hook call — each one is
    an unguarded call site leaking work into the disabled path."""

    enabled = False

    def __init__(self) -> None:
        self.calls: list[str] = []
        for name in dir(NullTracer):
            if name.startswith("_") or name == "enabled":
                continue
            if callable(getattr(NullTracer, name)):
                setattr(self, name, self._make_hook(name))

    def _make_hook(self, name):
        def hook(*args, **kwargs):
            self.calls.append(name)
        return hook


def test_untraced_run_makes_zero_tracer_calls(monkeypatch):
    counting = CountingDisabledTracer()
    # Every component picks up NULL_TRACER from its own module global at
    # construction time; substitute the counting impostor at each site.
    monkeypatch.setattr("repro.core.engine.NULL_TRACER", counting)
    monkeypatch.setattr("repro.dist.server.NULL_TRACER", counting)
    monkeypatch.setattr("repro.dist.client.NULL_TRACER", counting)

    result = run_cluster(_config(trace=False))
    assert result.committed > 0  # the run actually did work
    assert counting.calls == [], (
        f"disabled-path tracer hooks were invoked: {counting.calls[:10]}")


def test_disabled_guard_overhead_under_2_percent():
    untraced = run_cluster(_config(trace=False))
    assert untraced.wall_s > 0

    # How many guards could a traced run possibly execute?  Bound it by the
    # recorded trace events times a generous guards-per-event factor, plus
    # one guard per simulator event.
    traced = run_cluster(_config(trace=True))
    n_guards = 5 * len(traced.trace) + traced.sim_events

    # Unit cost of the guard: attribute load + falsy branch on NullTracer.
    tracer = NULL_TRACER
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        if tracer.enabled:
            raise AssertionError("NULL_TRACER must be disabled")
    guard_cost = (time.perf_counter() - t0) / n

    est_overhead = guard_cost * n_guards
    budget = 0.02 * untraced.wall_s
    assert est_overhead < budget, (
        f"estimated disabled-path overhead {est_overhead * 1e3:.2f} ms "
        f"exceeds 2% of untraced wall time ({budget * 1e3:.2f} ms; "
        f"{n_guards} guards @ {guard_cost * 1e9:.1f} ns)")
