"""Concurrency stress tests for the striped engine (real threads, not DES).

Two regimes:

* disjoint per-thread keysets — must run conflict-free whatever stripes the
  keys hash to, every transaction commits, and the per-stripe contention
  counters stay zero;
* a shared hot keyset — transactions conflict, wait, and abort, and the
  recorded history must still be one-copy serializable.
"""

import threading

from repro.core.engine import DEFAULT_STRIPES, MVTLEngine
from repro.core.exceptions import TransactionAborted
from repro.policies import MVTIL, MVTLPessimistic
from repro.verify.history import HistoryRecorder
from repro.verify.mvsg import check_serializable

THREADS = 8
TXS_PER_THREAD = 25


def _run_threads(worker, threads=THREADS):
    """Run ``worker(i)`` on ``threads`` threads after a common barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            worker(i)
        except Exception as exc:  # noqa: BLE001 - surfaced via assert below
            errors.append(exc)

    ts = [threading.Thread(target=wrapped, args=(i,))
          for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert not errors, errors


class TestDisjointKeysets:
    def test_disjoint_threads_commit_conflict_free(self):
        history = HistoryRecorder()
        engine = MVTLEngine(MVTIL(), default_timeout=10.0, history=history)
        committed = [0] * THREADS

        def worker(i):
            keys = [f"w{i}-{j}" for j in range(8)]
            for n in range(TXS_PER_THREAD):
                tx = engine.begin(pid=i)
                for key in {keys[n % 8], keys[(n + 1) % 8]}:
                    engine.read(tx, key)
                    engine.write(tx, key, (i, n))
                assert engine.commit(tx)
                committed[i] += 1

        _run_threads(worker)
        assert sum(committed) == THREADS * TXS_PER_THREAD
        report = check_serializable(history)
        assert report.serializable, report
        # Disjoint keysets never conflict, whatever stripe each key hashes
        # to — stripes serialize bookkeeping, they don't create conflicts.
        contention = engine.stripe_contention()
        assert sum(contention["conflicts"]) == 0
        assert sum(contention["waits"]) == 0

    def test_single_stripe_still_correct(self):
        # stripes=1 recovers the old single-condition engine; the same
        # disjoint workload must behave identically (slower, not wronger).
        engine = MVTLEngine(MVTIL(), default_timeout=10.0, stripes=1)
        committed = [0] * THREADS

        def worker(i):
            for n in range(TXS_PER_THREAD):
                tx = engine.begin(pid=i)
                engine.read(tx, f"s{i}")
                engine.write(tx, f"s{i}", n)
                assert engine.commit(tx)
                committed[i] += 1

        _run_threads(worker)
        assert sum(committed) == THREADS * TXS_PER_THREAD
        assert engine.num_stripes == 1


class TestHotKeyset:
    def test_contended_history_serializable(self):
        history = HistoryRecorder()
        engine = MVTLEngine(MVTLPessimistic(), default_timeout=10.0,
                            history=history)
        hot = [f"h{j}" for j in range(4)]
        committed = [0] * THREADS

        def worker(i):
            for n in range(TXS_PER_THREAD):
                tx = engine.begin(pid=i)
                try:
                    key = hot[(i + n) % len(hot)]
                    engine.read(tx, key)
                    engine.write(tx, key, (i, n))
                    if engine.commit(tx):
                        committed[i] += 1
                except TransactionAborted:
                    pass

        _run_threads(worker)
        assert sum(committed) > 0
        report = check_serializable(history)
        assert report.serializable, report

    def test_contended_mvtil_serializable(self):
        history = HistoryRecorder()
        engine = MVTLEngine(MVTIL(delta=0.002), default_timeout=10.0,
                            history=history)
        committed = [0] * THREADS

        def worker(i):
            for n in range(TXS_PER_THREAD):
                tx = engine.begin(pid=i)
                try:
                    engine.read(tx, "hot")
                    engine.write(tx, "hot", (i, n))
                    if engine.commit(tx):
                        committed[i] += 1
                except TransactionAborted:
                    pass

        _run_threads(worker)
        report = check_serializable(history)
        assert report.serializable, report
        assert engine.num_stripes == DEFAULT_STRIPES
